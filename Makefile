GO ?= go

.PHONY: all build test vet fmt-check fmt

all: build vet fmt-check test

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

fmt:
	gofmt -w .
