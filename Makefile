GO ?= go

# Benchmark knobs. BENCHTIME=100x keeps CI fast; use the default
# (wall-clock) locally for numbers worth comparing. BENCHCPU pins
# GOMAXPROCS because the contention benchmarks are meaningless with a
# single scheduler thread (nothing ever contends).
BENCHTIME ?= 300ms
BENCHCPU ?= 8

# Pinned staticcheck release; `go run` fetches exactly this version so
# CI and developers lint with identical rules. Bump deliberately.
STATICCHECK_VERSION ?= 2025.1

.PHONY: all build test vet fmt-check fmt bench bench-e2e staticcheck

all: build vet fmt-check test

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Needs module-proxy network access on first run (the binary is cached
# afterwards); offline sandboxes should rely on the CI step instead.
staticcheck:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...

bench:
	$(GO) test -bench=. -benchtime=$(BENCHTIME) -cpu=$(BENCHCPU) -run '^$$' ./internal/engine/

# End-to-end API benchmarks: router -> engine -> store -> envelope per
# request. Pair with `make bench` to tell an API-layer regression from
# a store-layer one. See docs/performance.md.
bench-e2e:
	$(GO) test -bench=. -benchtime=$(BENCHTIME) -cpu=$(BENCHCPU) -run '^$$' ./internal/api/

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

fmt:
	gofmt -w .
