GO ?= go

# Benchmark knobs. BENCHTIME=100x keeps CI fast; use the default
# (wall-clock) locally for numbers worth comparing. BENCHCPU pins
# GOMAXPROCS because the contention benchmarks are meaningless with a
# single scheduler thread (nothing ever contends).
BENCHTIME ?= 300ms
BENCHCPU ?= 8

# Pinned staticcheck release; `go run` fetches exactly this version so
# CI and developers lint with identical rules. Bump deliberately.
STATICCHECK_VERSION ?= 2025.1

# Pinned govulncheck release, same reproducibility rationale.
GOVULNCHECK_VERSION ?= v1.1.4

# fuzz-smoke budget per target; raise locally for real fuzzing
# campaigns (e.g. make fuzz-smoke FUZZTIME=5m).
FUZZTIME ?= 10s

.PHONY: all build test lint vet fmt-check fmt bench bench-e2e bench-wal staticcheck opdaemonlint vuln fuzz-smoke

all: build lint fmt-check test

build:
	$(GO) build ./...

# -shuffle=on randomizes test order every run so inter-test state
# dependencies surface in CI instead of on a refactor years later; the
# failure log prints the seed for reproduction.
test:
	$(GO) test -race -shuffle=on ./...

# lint is the single aggregate gate: vet for the compiler-adjacent
# checks, staticcheck for general Go correctness, opdaemonlint for the
# project's own concurrency and immutability contracts.
lint: vet staticcheck opdaemonlint

vet:
	$(GO) vet ./...

# Needs module-proxy network access on first run (the binary is cached
# afterwards); offline sandboxes should rely on the CI step instead.
staticcheck:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...

# The project's custom analyzers (opmutate, lockscope, ctxdiscipline,
# statustransition). Built from this repo, so it runs offline; see
# docs/static-analysis.md for what each analyzer enforces and how to
# suppress an intentional violation.
opdaemonlint:
	$(GO) run ./cmd/opdaemonlint ./...

# Known-vulnerability scan over the module graph and reachable calls.
# Needs network access for the vuln DB and the pinned tool download.
vuln:
	$(GO) run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./...

bench:
	$(GO) test -bench=. -benchtime=$(BENCHTIME) -cpu=$(BENCHCPU) -run '^$$' ./internal/engine/

# End-to-end API benchmarks: router -> engine -> store -> envelope per
# request. Pair with `make bench` to tell an API-layer regression from
# a store-layer one. See docs/performance.md.
bench-e2e:
	$(GO) test -bench=. -benchtime=$(BENCHTIME) -cpu=$(BENCHCPU) -run '^$$' ./internal/api/

# Durability-focused slice of the engine benchmarks: WAL store write
# paths plus cold recovery, with allocation counts — the codec and
# group-commit work lives or dies on bytes/op and allocs/op, so
# -benchmem is always on here. See docs/performance.md.
bench-wal:
	$(GO) test -bench 'WAL' -benchmem -benchtime=$(BENCHTIME) -cpu=$(BENCHCPU) -run '^$$' ./internal/engine/

# Short coverage-guided fuzz runs over the untrusted-input parsers:
# the cursor values clients control, and the WAL replay path that
# must survive arbitrary on-disk bytes after a crash. One `go test
# -fuzz` invocation accepts a single target, hence one line per
# fuzzer; seed corpora alone also run as normal tests under `make
# test`.
fuzz-smoke:
	$(GO) test -fuzz '^FuzzNoticesCursor$$' -fuzztime=$(FUZZTIME) -run '^Fuzz' ./internal/api/
	$(GO) test -fuzz '^FuzzListQueryCursor$$' -fuzztime=$(FUZZTIME) -run '^Fuzz' ./internal/api/
	$(GO) test -fuzz '^FuzzWALReplay$$' -fuzztime=$(FUZZTIME) -run '^Fuzz' ./internal/engine/
	$(GO) test -fuzz '^FuzzWALCodecBinary$$' -fuzztime=$(FUZZTIME) -run '^Fuzz' ./internal/engine/

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

fmt:
	gofmt -w .
