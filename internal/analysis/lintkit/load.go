package lintkit

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one loaded, type-checked target for the analyzers.
type Package struct {
	// ImportPath is the package's import path. For a test variant
	// ("pkg [pkg.test]") this is the underlying package's path.
	ImportPath string
	// Dir is the directory holding the package's sources.
	Dir string
	// GoFiles are the compiled file names, relative to Dir. In test
	// mode the package-under-test variant also includes its _test.go
	// files.
	GoFiles []string
	// Fset, Files, Types, TypesInfo mirror the fields of
	// lintkit.Pass; see there.
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// LoadConfig tunes Load.
type LoadConfig struct {
	// Dir is the working directory for the `go list` invocation; empty
	// means the current directory.
	Dir string
	// Env entries are appended to the current environment (so fixture
	// loads can force GOPATH mode).
	Env []string
	// Tests loads each matched package's test variant as well, so
	// _test.go files are analyzed too.
	Tests bool
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	Dir        string
	ImportPath string
	ForTest    string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	ImportMap  map[string]string
	DepOnly    bool
	Standard   bool
}

// Load resolves patterns to packages and type-checks each from source.
//
// It shells out to `go list -export -deps`, which compiles export data
// for every dependency, then parses and type-checks only the matched
// packages using the gc importer over that export data — the same
// split a `go vet` unitchecker uses, with `go list` standing in for
// the vet driver. The scheme needs no module downloads, so it works in
// offline sandboxes as long as the packages themselves build.
func Load(cfg LoadConfig, patterns ...string) ([]*Package, error) {
	args := []string{
		"list",
		"-json=Dir,ImportPath,ForTest,Export,GoFiles,CgoFiles,ImportMap,DepOnly,Standard",
		"-export", "-deps",
	}
	if cfg.Tests {
		args = append(args, "-test")
	}
	args = append(args, "--")
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = cfg.Dir
	cmd.Env = append(os.Environ(), cfg.Env...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string)
	var listed []listPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listPackage
		if err := dec.Decode(&p); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		listed = append(listed, p)
	}

	// In test mode a matched package appears twice: plain, and as the
	// "pkg [pkg.test]" variant whose file set is a superset (sources
	// plus _test.go files). Analyze only the variant so diagnostics on
	// shared files are not reported twice.
	hasTestVariant := make(map[string]bool)
	for _, p := range listed {
		if p.ForTest != "" && !p.DepOnly {
			hasTestVariant[p.ForTest] = true
		}
	}

	var pkgs []*Package
	fset := token.NewFileSet()
	for _, p := range listed {
		switch {
		case p.DepOnly, p.Standard:
			continue
		case strings.HasSuffix(p.ImportPath, ".test"):
			// The synthesized test-main package; generated code, not ours.
			continue
		case hasTestVariant[p.ImportPath]:
			continue
		case len(p.GoFiles) == 0 || len(p.CgoFiles) > 0:
			continue
		}
		pkg, err := typeCheck(fset, p, exports)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// typeCheck parses one listed package and type-checks it against the
// export data of its dependencies.
func typeCheck(fset *token.FileSet, p listPackage, exports map[string]string) (*Package, error) {
	files := make([]*ast.File, 0, len(p.GoFiles))
	for _, name := range p.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(p.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", path, err)
		}
		files = append(files, f)
	}

	// The importer resolves each import path through the package's
	// ImportMap first (test variants import the "pkg [pkg.test]"
	// build of the package under test), then to the export file go
	// list produced. A fresh importer per package keeps one variant's
	// resolution from leaking into another's through the cache.
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := p.ImportMap[path]; ok {
			path = mapped
		}
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	}

	importPath := p.ImportPath
	if p.ForTest != "" {
		importPath = p.ForTest
	} else if i := strings.Index(importPath, " ["); i >= 0 {
		// External test package ("pkg_test [pkg.test]").
		importPath = importPath[:i]
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        p.Dir,
		GoFiles:    p.GoFiles,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}
