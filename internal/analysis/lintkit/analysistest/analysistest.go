// Package analysistest runs a lintkit analyzer over GOPATH-layout
// fixture packages and checks its diagnostics against // want
// comments, mirroring golang.org/x/tools/go/analysis/analysistest.
//
// A fixture tree lives under an analyzer's testdata directory in
// classic GOPATH shape — testdata/src/<importpath>/*.go — and is
// loaded with GO111MODULE=off so the fixture packages resolve by
// directory, never touching the network or the surrounding module.
//
// Expectations are trailing comments on the line the diagnostic must
// land on:
//
//	op.Status = done // want `direct write to Operation\.Status`
//
// Each quoted string is a regular expression matched against the
// diagnostic message; every diagnostic must be matched by a want on
// its line and every want must match a diagnostic. Suppression
// directives are honoured before matching, so a fixture line carrying
// //lint:allow and no want asserts the suppression works.
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"opdaemon/internal/analysis/lintkit"
)

// want is one expectation: a compiled message pattern at a file line.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads the fixture packages named by patterns from
// testdata/src/<pattern>, applies the analyzer, and reports any
// mismatch between diagnostics and // want comments through t.
func Run(t *testing.T, testdata string, a *lintkit.Analyzer, patterns ...string) {
	t.Helper()
	abs, err := filepath.Abs(testdata)
	if err != nil {
		t.Fatalf("resolving testdata dir: %v", err)
	}
	pkgs, err := lintkit.Load(lintkit.LoadConfig{
		Dir: abs,
		Env: []string{
			"GO111MODULE=off",
			"GOPATH=" + abs,
			"GOFLAGS=",
			"GOWORK=off",
			"GOPROXY=off",
		},
		Tests: true,
	}, patterns...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	diags, err := lintkit.Run(pkgs, []*lintkit.Analyzer{a})
	if err != nil {
		t.Fatalf("running analyzer: %v", err)
	}

	var wants []*want
	for _, pkg := range pkgs {
		ws, err := parseWants(pkg.Fset, pkg)
		if err != nil {
			t.Fatal(err)
		}
		wants = append(wants, ws...)
	}

	for _, d := range diags {
		if w := matchWant(wants, d); w != nil {
			w.matched = true
			continue
		}
		t.Errorf("unexpected diagnostic: %s", d)
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.raw)
		}
	}
}

func matchWant(wants []*want, d lintkit.Diagnostic) *want {
	for _, w := range wants {
		if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			return w
		}
	}
	return nil
}

// parseWants extracts the // want expectations from a fixture
// package's comments.
func parseWants(fset *token.FileSet, pkg *lintkit.Package) ([]*want, error) {
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				patterns, err := parsePatterns(strings.TrimSpace(text))
				if err != nil {
					return nil, fmt.Errorf("%s: malformed want comment: %v", pos, err)
				}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						return nil, fmt.Errorf("%s: want pattern %q: %v", pos, p, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: p})
				}
			}
		}
	}
	return wants, nil
}

// parsePatterns splits a want payload into its quoted (or backquoted)
// regular expressions.
func parsePatterns(s string) ([]string, error) {
	var out []string
	for s != "" {
		q, err := strconv.QuotedPrefix(s)
		if err != nil {
			return nil, fmt.Errorf("expected quoted pattern at %q", s)
		}
		p, err := strconv.Unquote(q)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
		s = strings.TrimSpace(s[len(q):])
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty want comment")
	}
	return out, nil
}
