// Package lintkit is the project's miniature analysis framework: the
// subset of golang.org/x/tools/go/analysis that the opdaemonlint
// analyzers need, implemented on the standard library alone so the
// suite builds in offline sandboxes where x/tools cannot be fetched.
// The Analyzer/Pass/Diagnostic surface deliberately mirrors the
// upstream API, so if the dependency ever becomes available the
// analyzers port by changing one import.
//
// On top of the upstream subset it bakes in the project's suppression
// convention: a comment of the form
//
//	//lint:allow opdaemon/<analyzer> <justification>
//
// silences that analyzer's diagnostics on the comment's own line and on
// the line immediately below it (so the directive works both as a
// trailing comment and on its own line above the flagged statement).
// The justification text is mandatory — a bare directive is itself
// reported — because every exemption from a machine-checked invariant
// must say why it is safe.
package lintkit

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker: a name (used in
// diagnostics and suppression directives), human-readable
// documentation, and the function that inspects one package.
type Analyzer struct {
	// Name identifies the analyzer; diagnostics print it as
	// opdaemon/<Name> and suppression directives reference it the same
	// way.
	Name string
	// Doc describes the invariant the analyzer enforces.
	Doc string
	// Run inspects one type-checked package, reporting findings
	// through the pass. The returned error aborts the whole lint run
	// (an analyzer bug), not just this package.
	Run func(*Pass) error
}

// A Pass provides one analyzer run with one package's syntax and type
// information, mirroring analysis.Pass.
type Pass struct {
	// Analyzer is the checker this pass belongs to.
	Analyzer *Analyzer
	// Fset maps token positions for every file in the package.
	Fset *token.FileSet
	// Files is the package's parsed syntax, including test files when
	// the loader ran in test mode.
	Files []*ast.File
	// Pkg is the package's type information.
	Pkg *types.Package
	// TypesInfo holds the type-checker's maps for the package syntax.
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	// Analyzer names the checker that produced the finding.
	Analyzer string
	// Pos locates the offending syntax.
	Pos token.Position
	// Message states the violation.
	Message string
}

// String renders the diagnostic in the conventional
// file:line:col: message (tool/analyzer) shape.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (opdaemon/%s)", d.Pos, d.Message, d.Analyzer)
}

// suppressDirective matches the project's suppression comment. The
// justification group is what makes a directive legal; see the package
// comment.
var suppressDirective = regexp.MustCompile(`^//lint:allow opdaemon/([A-Za-z0-9_-]+)(.*)$`)

// suppressions indexes one package's directives: file name → line →
// set of suppressed analyzer names.
type suppressions map[string]map[int]map[string]bool

func (s suppressions) add(file string, line int, name string) {
	byLine, ok := s[file]
	if !ok {
		byLine = make(map[int]map[string]bool)
		s[file] = byLine
	}
	for _, l := range []int{line, line + 1} {
		if byLine[l] == nil {
			byLine[l] = make(map[string]bool)
		}
		byLine[l][name] = true
	}
}

func (s suppressions) covers(d Diagnostic) bool {
	return s[d.Pos.Filename][d.Pos.Line][d.Analyzer]
}

// collectSuppressions scans a package's comments for directives,
// reporting malformed ones (missing justification) through report.
func collectSuppressions(fset *token.FileSet, files []*ast.File, report func(Diagnostic)) suppressions {
	sup := make(suppressions)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := suppressDirective.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				if strings.TrimSpace(m[2]) == "" {
					report(Diagnostic{
						Analyzer: "lintkit",
						Pos:      pos,
						Message:  fmt.Sprintf("suppression of opdaemon/%s has no justification; say why the site is exempt", m[1]),
					})
					continue
				}
				sup.add(pos.Filename, pos.Line, m[1])
			}
		}
	}
	return sup
}

// Run executes every analyzer over every package, applies suppression
// directives, and returns the surviving diagnostics sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		report := func(d Diagnostic) { diags = append(diags, d) }
		sup := collectSuppressions(pkg.Fset, pkg.Files, report)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				report: func(d Diagnostic) {
					if !sup.covers(d) {
						diags = append(diags, d)
					}
				},
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// TypeName returns the name of the named (or pointer-to-named) type, or
// "" when t is neither. Analyzers use it to recognise project types
// structurally without importing the packages they police.
func TypeName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name()
}

// TypePkgPath returns the import path of the package that defines the
// named (or pointer-to-named) type, or "".
func TypePkgPath(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	if p := named.Obj().Pkg(); p != nil {
		return p.Path()
	}
	return ""
}
