// Package statustransition enforces that operation lifecycle state
// only advances through the guarded path: core.Operation.Status may be
// written directly only inside package core, whose
// Operation.Transition method is the single site that checks
// core.CanTransition before every write. Anywhere else a direct write
// can skip the legality check and resurrect a terminal operation, so
// the analyzer flags both assignments to the field and taking its
// address (which would let a write hide behind a pointer).
//
// Test files are exempt: tests fabricate operations in specific
// lifecycle states, and those fixtures are owned values guarded by the
// opmutate analyzer rather than the transition rules.
package statustransition

import (
	"go/ast"
	"strings"

	"opdaemon/internal/analysis/lintkit"
)

// Analyzer is the statustransition checker.
var Analyzer = &lintkit.Analyzer{
	Name: "statustransition",
	Doc:  "Operation.Status writes only in core, via CanTransition-guarded Transition",
	Run:  run,
}

func run(pass *lintkit.Pass) error {
	if isCorePackage(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.FileStart).Filename, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if sel := statusSelector(pass, lhs); sel != nil {
						pass.Reportf(sel.Pos(),
							"direct write to Operation.Status outside core: route the transition through Operation.Transition so core.CanTransition guards it")
					}
				}
			case *ast.UnaryExpr:
				if n.Op.String() == "&" {
					if sel := statusSelector(pass, n.X); sel != nil {
						pass.Reportf(sel.Pos(),
							"taking the address of Operation.Status outside core: an aliased write would bypass core.CanTransition")
					}
				}
			}
			return true
		})
	}
	return nil
}

// isCorePackage reports whether path is the core domain package (or a
// fixture standing in for it).
func isCorePackage(path string) bool {
	return path == "core" || strings.HasSuffix(path, "internal/core")
}

// statusSelector returns the selector expression if expr selects the
// Status field of a core.Operation, unwrapping parens and derefs.
func statusSelector(pass *lintkit.Pass, expr ast.Expr) *ast.SelectorExpr {
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
			continue
		case *ast.StarExpr:
			expr = e.X
			continue
		}
		break
	}
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Status" {
		return nil
	}
	base := pass.TypesInfo.TypeOf(sel.X)
	if base == nil {
		return nil
	}
	if lintkit.TypeName(base) != "Operation" || !isCorePackage(lintkit.TypePkgPath(base)) {
		return nil
	}
	return sel
}
