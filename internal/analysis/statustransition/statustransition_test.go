package statustransition_test

import (
	"testing"

	"opdaemon/internal/analysis/lintkit/analysistest"
	"opdaemon/internal/analysis/statustransition"
)

func TestStatusTransition(t *testing.T) {
	// The core fixture is loaded as a target too: its own Transition
	// method writes Status directly and must stay silent.
	analysistest.Run(t, "testdata", statustransition.Analyzer, "opdaemon/a", "opdaemon/internal/core")
}
