// Package a exercises the statustransition diagnostics and the clean
// shapes around them.
package a

import (
	"time"

	"opdaemon/internal/core"
)

func directWrite(op *core.Operation) {
	op.Status = core.StatusDone // want `direct write to Operation\.Status outside core`
}

func writeThroughDeref(p *core.Operation) {
	(*p).Status = core.StatusFailed // want `direct write to Operation\.Status outside core`
}

func writeOnValue(op core.Operation) {
	op.Status = core.StatusRunning // want `direct write to Operation\.Status outside core`
}

func aliasedWrite(op *core.Operation) *core.Status {
	return &op.Status // want `taking the address of Operation\.Status outside core`
}

// guarded uses the sanctioned path.
func guarded(op *core.Operation, now time.Time) bool {
	return op.Transition(core.StatusRunning, now)
}

// construction reads and builds freely: composite literals set the
// initial state, they do not transition an existing operation.
func construction() *core.Operation {
	op := &core.Operation{Status: core.StatusQueued}
	if op.Status.CanTransition(core.StatusRunning) {
		return op
	}
	return nil
}

// suppressed documents an intentional exemption.
func suppressed(op *core.Operation) {
	//lint:allow opdaemon/statustransition fixture proves suppression works
	op.Status = core.StatusDone
}

// otherField writes are this analyzer's concern only for Status;
// opmutate owns general immutability.
func otherField(op *core.Operation) {
	op.Error = "boom"
}
