package a

import "opdaemon/internal/core"

// Test files fabricate lifecycle states directly; the exemption keeps
// store fixtures writable.
func fabricate(status core.Status) *core.Operation {
	op := &core.Operation{ID: "x"}
	op.Status = status
	return op
}
