// Package a exercises the lockscope diagnostics against a miniature
// replica of the engine's shard shapes.
package a

import (
	"encoding/json"
	"os"
	"sync"
)

// storeShard mirrors the engine's shard: its name is what makes the
// mu critical sections policed.
type storeShard struct {
	mu  sync.RWMutex
	ops map[string]int
}

// Store mirrors the engine's pluggable storage interface.
type Store interface {
	Get(id string) (int, bool)
	Put(id string, v int)
}

// sendUnderLock blocks the shard on a channel send.
func sendUnderLock(sh *storeShard, ch chan int) {
	sh.mu.Lock()
	ch <- 1 // want `channel send inside the sh\.mu critical section`
	sh.mu.Unlock()
}

// receiveUnderDeferredLock holds the lock to function end via defer.
func receiveUnderDeferredLock(sh *storeShard, ch chan int) int {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return <-ch // want `channel receive inside the sh\.mu critical section`
}

// selectUnderLock blocks in a select with no default.
func selectUnderLock(sh *storeShard, a, b chan int) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	select { // want `select with no default inside the sh\.mu critical section`
	case <-a:
	case <-b:
	}
}

// callbackUnderLock runs arbitrary code inside the critical section.
func callbackUnderLock(sh *storeShard, fn func()) {
	sh.mu.Lock()
	fn() // want `call through function value fn inside a shard critical section`
	sh.mu.Unlock()
}

// storeCallUnderLock re-enters the pluggable store under the lock.
func storeCallUnderLock(sh *storeShard, s Store) {
	sh.mu.Lock()
	s.Put("x", 1) // want `call to Store\.Put inside a shard critical section`
	sh.mu.Unlock()
}

// lockedGet is a same-package acquirer.
func lockedGet(sh *storeShard, id string) int {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.ops[id]
}

// viaHelper acquires transitively, through lockedGet.
func viaHelper(sh *storeShard, id string) int {
	return lockedGet(sh, id)
}

// reentrantCall would deadlock on the same shard mutex.
func reentrantCall(sh *storeShard, id string) int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return viaHelper(sh, id) // want `call to viaHelper inside a shard critical section re-acquires a shard lock`
}

// doubleLock acquires the same mutex twice.
func doubleLock(sh *storeShard) {
	sh.mu.Lock()
	sh.mu.Lock() // want `acquiring sh\.mu while it is already held: self-deadlock`
	sh.mu.Unlock()
	sh.mu.Unlock()
}

// unorderedPair takes two specific shards ad hoc instead of ranging
// over the shard slice in canonical order.
func unorderedPair(a, b *storeShard) {
	a.mu.Lock()
	b.mu.Lock() // want `acquiring b\.mu while a\.mu is held: multi-shard acquisition must range over the shard slice`
	b.mu.Unlock()
	a.mu.Unlock()
}

// canonicalSweep is the sanctioned all-shards pattern: acquisition
// ranges over the slice, so ordering is fixed by index.
func canonicalSweep(shards []*storeShard) int {
	n := 0
	for _, sh := range shards {
		sh.mu.RLock()
	}
	defer func() {
		for _, sh := range shards {
			sh.mu.RUnlock()
		}
	}()
	for _, sh := range shards {
		n += len(sh.ops)
	}
	return n
}

// trySendUnderLock cannot block: the select has a default.
func trySendUnderLock(sh *storeShard, ch chan int) bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	select {
	case ch <- 1:
		return true
	default:
		return false
	}
}

// sendAfterUnlock is clean: the critical section ended.
func sendAfterUnlock(sh *storeShard, ch chan int) {
	sh.mu.Lock()
	sh.ops["x"] = 1
	sh.mu.Unlock()
	ch <- 1
}

// goUnderLock launches work under the lock but the goroutine body runs
// elsewhere; the send is not part of this critical section.
func goUnderLock(sh *storeShard, ch chan int) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	go func() {
		ch <- 1
	}()
}

// suppressedCallback documents the one sanctioned callback site.
func suppressedCallback(sh *storeShard, fn func()) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	//lint:allow opdaemon/lockscope fixture mirror of Update's clone-mutation contract
	fn()
}

// watchShard mirrors the broadcast hub's shard: waiter lists keyed by
// operation ID, woken by channel sends.
type watchShard struct {
	mu sync.Mutex
	m  map[string][]chan int
}

// wakeUnderLock is the deadlock-shaped hub bug: waking waiters while
// the shard lock is held means a slow (or buggy, unbuffered) receiver
// stalls every subscribe/notify on the shard.
func wakeUnderLock(sh *watchShard, id string) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for _, ch := range sh.m[id] {
		ch <- 1 // want `channel send inside the sh\.mu critical section`
	}
}

// collectThenWake is the sanctioned wake protocol: detach the waiter
// list under the lock, send after unlock.
func collectThenWake(sh *watchShard, id string) {
	sh.mu.Lock()
	ws := sh.m[id]
	delete(sh.m, id)
	sh.mu.Unlock()
	for _, ch := range ws {
		ch <- 1
	}
}

// noticeRing mirrors the feed ring: a closed-channel broadcast swapped
// under the lock.
type noticeRing struct {
	mu      sync.Mutex
	changed chan struct{}
}

// waitUnderRingLock blocks on the broadcast channel while holding the
// ring lock the appender needs — a deadlock, not a wait.
func waitUnderRingLock(r *noticeRing) {
	r.mu.Lock()
	defer r.mu.Unlock()
	<-r.changed // want `channel receive inside the r\.mu critical section`
}

// swapThenBroadcast is the sanctioned feed wake: swap the channel
// under the lock, close the old one after unlock.
func swapThenBroadcast(r *noticeRing) {
	r.mu.Lock()
	old := r.changed
	r.changed = make(chan struct{})
	r.mu.Unlock()
	close(old)
}

// schedQueue mirrors the engine's dispatch scheduler: per-client
// queues drained under one short-critical-section mutex, with time
// sampled by callers because the clock is a function value.
type schedQueue struct {
	mu    sync.Mutex
	items []string
	clock func() int64
}

// clockUnderSchedLock calls the clock function value inside the
// dispatch critical section — arbitrary (test-injected) code under the
// hottest lock in the engine.
func clockUnderSchedLock(q *schedQueue) int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.clock() // want `call through function value clock inside a shard critical section`
}

// tokenSendUnderSchedLock hands a dispatch token over while holding
// the queue lock; a full token channel stalls every submitter.
func tokenSendUnderSchedLock(q *schedQueue, tokens chan struct{}) {
	q.mu.Lock()
	defer q.mu.Unlock()
	tokens <- struct{}{} // want `channel send inside the q\.mu critical section`
}

// sampleThenAdd is the sanctioned scheduler pattern: sample the clock
// and send the token outside the lock, touch only slices within it.
func sampleThenAdd(q *schedQueue, tokens chan struct{}, id string) {
	now := q.clock()
	_ = now
	q.mu.Lock()
	q.items = append(q.items, id)
	q.mu.Unlock()
	tokens <- struct{}{}
}

// walBatch mirrors the WAL's group-commit staging buffer: the
// nested-acquisition class. Taking it under a shard lock is the one
// sanctioned nesting; blocking and file I/O under it are still flagged,
// and it must be innermost.
type walBatch struct {
	mu  sync.Mutex
	buf []byte
}

// fsyncUnderShardLock performs the fsync inside the shard critical
// section — the stall the WAL's group commit exists to avoid.
func fsyncUnderShardLock(sh *storeShard, f *os.File) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	f.Sync() // want `\(\*os\.File\)\.Sync inside the sh\.mu critical section: file I/O under a policed lock`
}

// renameUnderBatchLock mutates the filesystem while holding the
// staging lock every writer needs to board the batch.
func renameUnderBatchLock(b *walBatch) {
	b.mu.Lock()
	defer b.mu.Unlock()
	os.Rename("a", "b") // want `os\.Rename inside the b\.mu critical section: file I/O under a policed lock`
}

// stage mirrors wal.enqueue: append to the staging buffer under the
// batch lock, no file I/O. Calling it under a shard lock is the
// sanctioned nesting.
func stage(b *walBatch, rec []byte) {
	b.mu.Lock()
	b.buf = append(b.buf, rec...)
	b.mu.Unlock()
}

// applyAndStage is the WALStore mutation shape: publish to the index
// and stage the record inside the same shard critical section. Clean —
// stage acquires only the nested-class lock.
func applyAndStage(sh *storeShard, b *walBatch, rec []byte) {
	sh.mu.Lock()
	sh.ops["x"] = 1
	stage(b, rec)
	sh.mu.Unlock()
}

// inlineNestedStage takes the batch lock directly under the shard
// lock — the same sanctioned nesting, spelled inline.
func inlineNestedStage(sh *storeShard, b *walBatch, rec []byte) {
	sh.mu.Lock()
	sh.ops["x"] = 1
	b.mu.Lock()
	b.buf = append(b.buf, rec...)
	b.mu.Unlock()
	sh.mu.Unlock()
}

// shardLockUnderBatch inverts the sanctioned order: the staging lock
// must be innermost, or boarding writers (who hold shard locks) and
// this path deadlock against each other.
func shardLockUnderBatch(sh *storeShard, b *walBatch) {
	b.mu.Lock()
	defer b.mu.Unlock()
	sh.mu.Lock() // want `acquiring sh\.mu while the staging lock b\.mu is held: the staging lock must be innermost`
	sh.mu.Unlock()
}

// stageUnderBatchLock re-enters the staging lock it already holds.
func stageUnderBatchLock(b *walBatch, rec []byte) {
	b.mu.Lock()
	defer b.mu.Unlock()
	stage(b, rec) // want `call to stage while the staging lock b\.mu is held re-acquires it: self-deadlock`
}

// spill writes the buffer to disk — fine on the committer goroutine
// with no locks held, flagged transitively when called under one.
func spill(path string, buf []byte) error {
	return os.WriteFile(path, buf, 0o644)
}

// spillUnderShardLock reaches the filesystem through a same-package
// helper while holding the shard lock.
func spillUnderShardLock(sh *storeShard, buf []byte) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	spill("x", buf) // want `call to spill inside the sh\.mu critical section performs file I/O`
}

// detachThenSpill is the committer's sanctioned shape: detach the
// buffer under the staging lock, perform the write+fsync after unlock.
func detachThenSpill(b *walBatch, f *os.File) {
	b.mu.Lock()
	buf := b.buf
	b.buf = nil
	b.mu.Unlock()
	f.Write(buf)
	f.Sync()
}

// marshalUnderShardLock serialises a record inside the shard critical
// section — the encode-outside-the-lock contract violation the codec
// rule exists for.
func marshalUnderShardLock(sh *storeShard) []byte {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	rec, _ := json.Marshal(sh.ops) // want `encoding/json\.Marshal inside the sh\.mu critical section encodes a record under a policed lock`
	return rec
}

// encodeOpRecordV2 mirrors the engine's record encoder; its name is
// what makes calls to it codec calls.
func encodeOpRecordV2(dst []byte, v int) []byte {
	return append(dst, byte(v))
}

// encodeUnderBatchLock reaches the codec through a same-package helper
// while holding the staging lock.
func encodeUnderBatchLock(b *walBatch, v int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.buf = encodeRecord(b.buf, v) // want `call to encodeRecord inside the b\.mu critical section encodes a record`
}

// encodeRecord is a transitive codec caller: flagged only when invoked
// under a policed lock.
func encodeRecord(dst []byte, v int) []byte {
	return encodeOpRecordV2(dst, v)
}

// encodeThenStage is the sanctioned WAL mutation shape: encode the
// record into a buffer first, then let the critical section cover only
// apply + staging of the prepared bytes.
func encodeThenStage(sh *storeShard, b *walBatch, v int) {
	rec := encodeRecord(nil, v)
	sh.mu.Lock()
	sh.ops["x"] = v
	stage(b, rec)
	sh.mu.Unlock()
}

// unpolicedMutex guards a type outside the policed set; lockscope does
// not constrain it.
type unpoliced struct {
	mu sync.Mutex
}

func otherLock(u *unpoliced, ch chan int) {
	u.mu.Lock()
	ch <- 1
	u.mu.Unlock()
}
