package lockscope_test

import (
	"testing"

	"opdaemon/internal/analysis/lintkit/analysistest"
	"opdaemon/internal/analysis/lockscope"
)

func TestLockScope(t *testing.T) {
	analysistest.Run(t, "testdata", lockscope.Analyzer, "a")
}
