// Package lockscope polices the engine's shard critical sections. A
// storeShard, cancelShard, or watchShard mutex (and the noticeRing's
// and the scheduler schedQueue's) guards a few map and slice
// operations and nothing else; anything that can block or re-enter the
// store while the shard lock is held turns a nanosecond critical
// section into a stall or a self-deadlock. For the scheduler the rule
// additionally forces time to be sampled outside the lock: the
// engine's clock is a function value, and calling it under schedQueue.mu
// would run arbitrary test clocks inside the dispatch hot path.
// For the watch hub specifically, the rule forces the wake protocol:
// notify must detach the waiter list under the lock and perform the
// channel sends after unlock — a send under the shard lock is exactly
// the deadlock-shaped bug the flagged fixture pins. Between a
// `<shard>.mu.Lock` (or RLock) and its release the analyzer forbids:
//
//   - blocking channel operations (sends, receives, selects with no
//     default, ranging over a channel);
//   - calls through function values — handler or callback invocation
//     runs arbitrary user code under the lock;
//   - calls to methods of the Store interface — a pluggable backend
//     may block, and the in-memory ones re-acquire shard locks;
//   - calls to same-package functions that themselves acquire a shard
//     lock (re-entrant acquisition, an instant deadlock on the same
//     shard with sync.Mutex);
//   - acquiring a second shard lock while one is held, unless the
//     acquisition ranges over the shard slice — the canonical
//     all-shards pattern whose index order makes the ordering safe —
//     and acquiring the same lock twice;
//   - file I/O — os.File write methods and mutating os package
//     functions, directly or through same-package callees — a disk
//     write (worse, an fsync) under a policed lock serialises every
//     operation on the shard behind a millisecond-scale syscall;
//   - record encoding — json.Marshal/Unmarshal and the WAL codec
//     entry points (frame builders, the operation binary codec),
//     directly or through same-package callees. The WAL write path's
//     contract is encode-outside-the-lock: records are serialised
//     into a prepared buffer before acquisition, and the critical
//     section covers only apply + staging of ready bytes, so a
//     marshal's allocations and reflection never extend a shard hold.
//
// The WAL's group-commit staging buffer (walBatch) is policed as a
// nested-acquisition class: taking walBatch.mu while a storeShard lock
// is held is the one sanctioned nesting (it is what keeps log order
// equal to publish order), so the second-lock rule exempts it — but
// the blocking and file-I/O rules apply under it unchanged, and it
// must be innermost: acquiring any full-class lock while walBatch.mu
// is held is flagged. The committer's contract is the same
// detach-then-act shape as the watch hub's: detach the buffer under
// walBatch.mu, perform the write+fsync after release.
//
// The analysis is function-local and approximates control flow by
// source order: a lock is considered held from the acquisition site to
// its textual release (or function end for deferred releases).
// Goroutine bodies launched under the lock are skipped (they run
// elsewhere); function literals that may execute inline are scanned.
package lockscope

import (
	"go/ast"
	"go/token"
	"go/types"

	"opdaemon/internal/analysis/lintkit"
)

// Analyzer is the lockscope checker.
var Analyzer = &lintkit.Analyzer{
	Name: "lockscope",
	Doc:  "no blocking or re-entrant calls inside storeShard critical sections",
	Run:  run,
}

// policedTypes names the struct types whose mu field delimits a
// policed critical section.
var policedTypes = map[string]bool{
	"storeShard":  true,
	"cancelShard": true,
	"watchShard":  true,
	"noticeRing":  true,
	"schedQueue":  true,
}

// nestedOKTypes names the struct types whose mu is policed (blocking
// and file-I/O rules apply) but whose acquisition under a full-class
// lock is sanctioned. They must be innermost: acquiring a full-class
// lock while one of these is held is still flagged.
var nestedOKTypes = map[string]bool{
	"walBatch": true,
}

// storeInterface names the interface whose methods must not be called
// under a shard lock.
const storeInterface = "Store"

// osWriteNames are the os package functions and os.File methods that
// hit the filesystem with a mutation; calling any of them (directly or
// transitively) under a policed lock is flagged. Reads are deliberately
// absent — the policed sections never read files, and a page-cache read
// is not the stall an fsync is.
var osWriteNames = map[string]bool{
	// *os.File methods.
	"Write": true, "WriteString": true, "WriteAt": true,
	"Sync": true, "ReadFrom": true,
	// Package-level functions ("Truncate" is both).
	"Truncate": true, "Create": true, "OpenFile": true,
	"Rename": true, "Remove": true, "RemoveAll": true,
	"WriteFile": true, "MkdirAll": true, "Mkdir": true,
}

// isOSWrite reports whether fn is one of the os package's mutating
// filesystem entry points.
func isOSWrite(fn *types.Func) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "os" && osWriteNames[fn.Name()]
}

// jsonCodecNames are the encoding/json entry points the codec rule
// recognises.
var jsonCodecNames = map[string]bool{
	"Marshal": true, "MarshalIndent": true, "Unmarshal": true,
}

// codecFuncNames are the WAL codec entry points — the engine's frame
// builders/record encoders and core's operation binary codec. Matched
// by name across the module's own packages (stdlib and vendored code
// excluded by the json/os checks having their own lists), so the rule
// survives the codec living in either package.
var codecFuncNames = map[string]bool{
	// engine frame builders and record encoders.
	"appendWALFrame": true, "reserveWALFrame": true, "finishWALFrame": true,
	"encodeOpRecord": true, "encodeOpRecordV2": true, "encodeDeltaRecordV2": true,
	"encodeDeleteRecord": true, "appendDeleteRecord": true,
	"decodeWALRecord": true,
	// core.Operation binary codec.
	"AppendBinary": true, "AppendBinaryDelta": true,
	"DecodeBinaryOperation": true, "DecodeBinaryDelta": true,
}

// codecPkgNames are the packages whose functions the codec name list
// applies to: the engine (frame builders), core (operation binary
// codec), and the analyzer's fixture package. Pinning the packages
// keeps stdlib lookalikes — time.Time also has an AppendBinary — from
// tripping the rule.
var codecPkgNames = map[string]bool{"engine": true, "core": true, "a": true}

// isCodecCall reports whether fn serialises or deserialises a record:
// an encoding/json entry point or one of the WAL codec functions.
func isCodecCall(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() == "encoding/json" {
		return jsonCodecNames[fn.Name()]
	}
	return codecPkgNames[fn.Pkg().Name()] && codecFuncNames[fn.Name()]
}

func run(pass *lintkit.Pass) error {
	acq := newAcquirerIndex(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				s := &scanner{pass: pass, acq: acq, held: make(map[string]*heldLock), rangeVars: make(map[types.Object]bool)}
				s.scan(fn.Body)
			}
		}
	}
	return nil
}

// lockOp classifies a call as a policed mutex operation.
type lockOp struct {
	// path is the lock's textual identity, e.g. "sh.mu".
	path string
	// acquire is true for Lock/RLock, false for Unlock/RUnlock.
	acquire bool
	// nested marks a nested-acquisition class lock (walBatch), exempt
	// from the second-lock rule when taken under a full-class lock.
	nested bool
	// base is the root identifier of the path, used to recognise
	// range-variable (all-shards) acquisitions.
	base *ast.Ident
}

// classifyLockOp returns the lock operation described by call, or nil.
func classifyLockOp(pass *lintkit.Pass, call *ast.CallExpr) *lockOp {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	var acquire bool
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
		acquire = false
	default:
		return nil
	}
	// The receiver must be a mu field of a policed struct type.
	muSel, ok := sel.X.(*ast.SelectorExpr)
	if !ok || muSel.Sel.Name != "mu" {
		return nil
	}
	owner := pass.TypesInfo.TypeOf(muSel.X)
	if owner == nil {
		return nil
	}
	name := lintkit.TypeName(owner)
	if !policedTypes[name] && !nestedOKTypes[name] {
		return nil
	}
	return &lockOp{
		path:    types.ExprString(sel.X),
		acquire: acquire,
		nested:  nestedOKTypes[name],
		base:    rootIdent(muSel.X),
	}
}

func rootIdent(expr ast.Expr) *ast.Ident {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return e
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// heldLock is one acquired lock in the scanner's state.
type heldLock struct {
	// group marks an all-shards acquisition through a range variable.
	group bool
	// nested marks a nested-acquisition class lock (walBatch).
	nested bool
}

// scanner walks one function body in source order, tracking held
// policed locks and reporting violations inside critical sections.
type scanner struct {
	pass      *lintkit.Pass
	acq       *acquirerIndex
	held      map[string]*heldLock
	rangeVars map[types.Object]bool
}

func (s *scanner) scan(root ast.Node) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			// Runs on another goroutine; not under this section.
			return false
		case *ast.DeferStmt:
			// Deferred releases keep the lock held to function end (so
			// nothing to do); other deferred work runs during unwind,
			// after the body this scan models.
			return false
		case *ast.RangeStmt:
			if t := s.pass.TypesInfo.TypeOf(n.X); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Array:
					if id, ok := n.Value.(*ast.Ident); ok {
						if obj := s.pass.TypesInfo.Defs[id]; obj != nil {
							s.rangeVars[obj] = true
						}
					}
				case *types.Chan:
					s.reportHeld(n.Pos(), "range over a channel")
				}
			}
			return true
		case *ast.SelectStmt:
			if !selectHasDefault(n) {
				// One report for the select itself; the comm clauses
				// are part of that single blocking point.
				s.reportHeld(n.Pos(), "select with no default")
			}
			// Either way the comm operations themselves are not
			// separate blocking sites; scan only the clause bodies.
			for _, clause := range n.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok {
					for _, stmt := range cc.Body {
						s.scan(stmt)
					}
				}
			}
			return false
		case *ast.SendStmt:
			s.reportHeld(n.Pos(), "channel send")
			return true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				s.reportHeld(n.Pos(), "channel receive")
			}
			return true
		case *ast.CallExpr:
			if op := classifyLockOp(s.pass, n); op != nil {
				s.applyLockOp(n, op)
				return false
			}
			s.checkCall(n)
			return true
		}
		return true
	})
}

// applyLockOp updates the held set for a Lock/Unlock call, flagging
// double acquisitions, unordered shard pairs, and full-class
// acquisitions under the innermost-only staging lock. Nested-class
// acquisitions under a full lock are the sanctioned nesting and pass.
func (s *scanner) applyLockOp(call *ast.CallExpr, op *lockOp) {
	if !op.acquire {
		delete(s.held, op.path)
		return
	}
	group := op.base != nil && s.rangeVars[s.pass.TypesInfo.Uses[op.base]]
	if prev, ok := s.held[op.path]; ok {
		if !prev.group && !group {
			s.pass.Reportf(call.Pos(), "acquiring %s while it is already held: self-deadlock", op.path)
		}
		return
	}
	if op.nested {
		// Sanctioned nesting: the staging lock may be taken under any
		// full-class lock (log order must equal publish order); the
		// blocking and file-I/O rules still police the section.
		s.held[op.path] = &heldLock{nested: true}
		return
	}
	if len(s.held) > 0 && !group {
		for other, h := range s.held {
			if h.nested {
				s.pass.Reportf(call.Pos(),
					"acquiring %s while the staging lock %s is held: the staging lock must be innermost", op.path, other)
			} else {
				s.pass.Reportf(call.Pos(),
					"acquiring %s while %s is held: multi-shard acquisition must range over the shard slice in canonical index order", op.path, other)
			}
			break
		}
	}
	s.held[op.path] = &heldLock{group: group}
}

// checkCall flags calls that may block, re-enter the store, or hit the
// filesystem while a policed lock is held.
func (s *scanner) checkCall(call *ast.CallExpr) {
	if len(s.held) == 0 {
		return
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj := s.pass.TypesInfo.Uses[fun]
		if v, ok := obj.(*types.Var); ok && isFuncValue(v) {
			s.pass.Reportf(call.Pos(),
				"call through function value %s inside a shard critical section: callbacks run arbitrary code under the lock", fun.Name)
			return
		}
		if fn, ok := obj.(*types.Func); ok {
			s.checkCallee(call, fn, fun.Name)
		}
	case *ast.SelectorExpr:
		if selection, ok := s.pass.TypesInfo.Selections[fun]; ok {
			recv := selection.Recv()
			if types.IsInterface(recv.Underlying()) && lintkit.TypeName(recv) == storeInterface {
				s.pass.Reportf(call.Pos(),
					"call to Store.%s inside a shard critical section: a pluggable backend may block or re-enter the shard", fun.Sel.Name)
				return
			}
			if v, ok := selection.Obj().(*types.Var); ok && isFuncValue(v) {
				s.pass.Reportf(call.Pos(),
					"call through function value %s inside a shard critical section: callbacks run arbitrary code under the lock", fun.Sel.Name)
				return
			}
		}
		if fn, ok := s.pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			s.checkCallee(call, fn, fun.Sel.Name)
		}
	}
}

// checkCallee applies the resolved-function rules at a call site under
// a held lock: direct os writes, transitive lock re-acquisition, and
// transitive file I/O.
func (s *scanner) checkCallee(call *ast.CallExpr, fn *types.Func, name string) {
	if isOSWrite(fn) {
		for path := range s.held {
			s.pass.Reportf(call.Pos(),
				"%s inside the %s critical section: file I/O under a policed lock stalls every operation behind it; stage bytes under the lock, write after unlock", fn.FullName(), path)
			return
		}
	}
	if isCodecCall(fn) {
		for path := range s.held {
			s.pass.Reportf(call.Pos(),
				"%s inside the %s critical section encodes a record under a policed lock: encode into a buffer before acquiring the lock, stage the prepared bytes inside it", fn.FullName(), path)
			return
		}
	}
	fl := s.acq.flags(fn)
	switch {
	case fl&acqFull != 0:
		s.pass.Reportf(call.Pos(),
			"call to %s inside a shard critical section re-acquires a shard lock", name)
	case fl&acqNested != 0 && s.heldNestedPath() != "":
		s.pass.Reportf(call.Pos(),
			"call to %s while the staging lock %s is held re-acquires it: self-deadlock", name, s.heldNestedPath())
	}
	if fl&acqIO != 0 {
		for path := range s.held {
			s.pass.Reportf(call.Pos(),
				"call to %s inside the %s critical section performs file I/O: stage bytes under the lock, write after unlock", name, path)
			return
		}
	}
	if fl&acqCodec != 0 {
		for path := range s.held {
			s.pass.Reportf(call.Pos(),
				"call to %s inside the %s critical section encodes a record: encode into a buffer before acquiring the lock, stage the prepared bytes inside it", name, path)
			return
		}
	}
}

// heldNestedPath returns the path of a held nested-class lock, or "".
func (s *scanner) heldNestedPath() string {
	for path, h := range s.held {
		if h.nested {
			return path
		}
	}
	return ""
}

// reportHeld reports a blocking operation if any policed lock is held.
func (s *scanner) reportHeld(pos token.Pos, what string) {
	for path := range s.held {
		s.pass.Reportf(pos, "%s inside the %s critical section can stall every operation on the shard", what, path)
		return
	}
}

// isFuncValue reports whether v is a variable (parameter, local,
// field) of function type — a callback, as opposed to a declared
// function.
func isFuncValue(v *types.Var) bool {
	_, ok := v.Type().Underlying().(*types.Signature)
	return ok
}

func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// acqFlags describes what calling a function does, transitively
// through same-package callees.
type acqFlags uint8

const (
	// acqFull: acquires a full-class policed lock (storeShard and
	// friends) — calling it under any policed lock risks re-entrant
	// deadlock.
	acqFull acqFlags = 1 << iota
	// acqNested: acquires a nested-class lock (walBatch) — dangerous
	// only when that same class is already held, since taking it under
	// a full-class lock is the sanctioned nesting.
	acqNested
	// acqIO: performs a mutating os filesystem call — never allowed
	// under a policed lock.
	acqIO
	// acqCodec: encodes or decodes a record (json or the WAL binary
	// codec) — never allowed under a policed lock; encode first, stage
	// the prepared bytes inside the critical section.
	acqCodec
)

// acquirerIndex answers "what does calling this package-level function
// do?" — policed lock acquisitions and file I/O, transitively through
// same-package calls.
type acquirerIndex struct {
	pass  *lintkit.Pass
	decls map[*types.Func]*ast.FuncDecl
	memo  map[*types.Func]acqFlags
}

func newAcquirerIndex(pass *lintkit.Pass) *acquirerIndex {
	idx := &acquirerIndex{
		pass:  pass,
		decls: make(map[*types.Func]*ast.FuncDecl),
		memo:  make(map[*types.Func]acqFlags),
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				if obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
					idx.decls[obj] = fn
				}
			}
		}
	}
	return idx
}

// flags reports what fn (directly or through same-package callees)
// acquires and whether it touches the filesystem. Unknown functions —
// other packages, interface methods — report nothing; the
// Store-interface rule covers the pluggable path and isOSWrite the
// direct os calls.
func (idx *acquirerIndex) flags(fn *types.Func) acqFlags {
	if got, ok := idx.memo[fn]; ok {
		return got
	}
	decl, ok := idx.decls[fn]
	if !ok {
		return 0
	}
	// Break recursion cycles pessimistically: a cycle that locks is
	// caught at the member that locks directly.
	idx.memo[fn] = 0
	var result acqFlags
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if op := classifyLockOp(idx.pass, call); op != nil {
			if op.acquire {
				if op.nested {
					result |= acqNested
				} else {
					result |= acqFull
				}
			}
			return true
		}
		var callee types.Object
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			callee = idx.pass.TypesInfo.Uses[fun]
		case *ast.SelectorExpr:
			callee = idx.pass.TypesInfo.Uses[fun.Sel]
		}
		if cf, ok := callee.(*types.Func); ok {
			switch {
			case isOSWrite(cf):
				result |= acqIO
			case isCodecCall(cf):
				result |= acqCodec
			case cf != fn:
				result |= idx.flags(cf)
			}
		}
		return true
	})
	idx.memo[fn] = result
	return result
}
