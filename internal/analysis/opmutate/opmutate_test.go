package opmutate_test

import (
	"testing"

	"opdaemon/internal/analysis/lintkit/analysistest"
	"opdaemon/internal/analysis/opmutate"
)

func TestOpMutate(t *testing.T) {
	analysistest.Run(t, "testdata", opmutate.Analyzer, "opdaemon/a")
}
