// Package opmutate enforces the copy-on-write immutability contract on
// core.Operation: once a pointer is published — stored via Put, or
// handed out by Get/List/Submit — the snapshot it refers to must never
// be written again. A single stray field write after a Get is a silent
// data race that -race only catches under the right interleaving; this
// analyzer catches it at lint time.
//
// The analysis is a function-local ownership dataflow. A
// *core.Operation value is "owned" (legal to mutate) only while it is
// provably private to the function:
//
//   - freshly constructed (&core.Operation{...}, new, a dereferenced
//     copy);
//   - returned by Clone, or by a same-package helper all of whose
//     returns are themselves owned (so test factories like mkOp keep
//     working);
//   - the parameter of a function literal passed to a Store.Update
//     call — the store hands that callback a private clone;
//   - an alias, range element, slice element, or append of the above.
//
// Everything else — function parameters, results of Get/List/Submit,
// package-level state — is presumed published, and any write to a
// field through it is flagged. Passing an owned value to Put or
// PutBatch transfers ownership: writes after that call are flagged
// too, even on a value the function built itself.
//
// Package core is exempt (it owns the type and its guarded Transition
// site); everything else, including test files, is policed — tests
// were exactly where in-place mutation of fetched snapshots used to
// hide.
package opmutate

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"opdaemon/internal/analysis/lintkit"
)

// Analyzer is the opmutate checker.
var Analyzer = &lintkit.Analyzer{
	Name: "opmutate",
	Doc:  "no field writes to published *core.Operation snapshots",
	Run:  run,
}

// publishFuncs name the calls that take ownership of their operation
// arguments: mutating after one of these is flagged.
var publishFuncs = map[string]bool{
	"Put":       true,
	"PutBatch":  true,
	"putLocked": true,
}

func run(pass *lintkit.Pass) error {
	if isCorePackage(pass.Pkg.Path()) {
		return nil
	}
	a := &analysis{
		pass:  pass,
		decls: make(map[*types.Func]*ast.FuncDecl),
		owned: make(map[*types.Func]ownedResult),
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				if obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
					a.decls[obj] = fn
				}
			}
		}
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				a.checkFunc(fn)
			}
		}
	}
	return nil
}

func isCorePackage(path string) bool {
	return path == "core" || strings.HasSuffix(path, "internal/core")
}

// Type predicates for the values the dataflow tracks.

func isOperation(t types.Type) bool {
	return lintkit.TypeName(t) == "Operation" && isCorePackage(lintkit.TypePkgPath(t))
}

func tracked(t types.Type) bool {
	if t == nil {
		return false
	}
	if isOperation(t) {
		return true
	}
	if s, ok := t.Underlying().(*types.Slice); ok {
		return isOperation(s.Elem())
	}
	return false
}

// ownedResult memoizes returnsOwned with an in-progress state so
// recursive helper cycles resolve pessimistically.
type ownedResult int

const (
	computing ownedResult = iota
	notOwned
	owned
)

// analysis is the per-package state.
type analysis struct {
	pass  *lintkit.Pass
	decls map[*types.Func]*ast.FuncDecl
	owned map[*types.Func]ownedResult
}

// funcState is the ownership dataflow for one top-level function
// (including its nested literals — captured variables share objects).
type funcState struct {
	a *analysis
	// fixed marks objects whose ownedness never changes: parameters
	// (false) and Update-callback clone parameters (true).
	fixed map[types.Object]bool
	// sources lists the right-hand sides flowing into each tracked
	// local; a local is owned iff every source is.
	sources map[types.Object][]ast.Expr
	// ownedVar is the fixpoint's current verdict per local.
	ownedVar map[types.Object]bool
	// published records where ownership of a local was transferred to
	// the store.
	published map[types.Object]token.Pos
}

// checkFunc runs the dataflow over fn and reports illegal writes.
func (a *analysis) checkFunc(fn *ast.FuncDecl) {
	st := a.analyzeFunc(fn)
	ast.Inspect(fn, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				st.checkWrite(lhs)
			}
		case *ast.IncDecStmt:
			st.checkWrite(n.X)
		}
		return true
	})
}

// analyzeFunc builds the ownership state for fn and runs the fixpoint.
func (a *analysis) analyzeFunc(fn *ast.FuncDecl) *funcState {
	st := &funcState{
		a:         a,
		fixed:     make(map[types.Object]bool),
		sources:   make(map[types.Object][]ast.Expr),
		ownedVar:  make(map[types.Object]bool),
		published: make(map[types.Object]token.Pos),
	}
	info := a.pass.TypesInfo

	// Parameters (and receivers) of the declaration and of nested
	// literals are unowned by default; a literal passed to an Update
	// call gets its clone parameter marked owned instead.
	markParams := func(ft *ast.FuncType, recv *ast.FieldList, ownedParams bool) {
		fields := []*ast.FieldList{ft.Params, recv}
		for _, fl := range fields {
			if fl == nil {
				continue
			}
			for _, f := range fl.List {
				for _, name := range f.Names {
					obj := info.Defs[name]
					if obj == nil || !tracked(obj.Type()) {
						continue
					}
					// First marking wins: an Update call marks its
					// callback's clone parameter owned before the
					// literal itself is visited.
					if _, ok := st.fixed[obj]; !ok {
						st.fixed[obj] = ownedParams
					}
				}
			}
		}
	}
	markParams(fn.Type, fn.Recv, false)

	ast.Inspect(fn, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			markParams(n.Type, nil, false)
		case *ast.CallExpr:
			if isUpdateCall(n) {
				for _, arg := range n.Args {
					if lit, ok := arg.(*ast.FuncLit); ok {
						markParams(lit.Type, nil, true)
					}
				}
			}
			st.recordPublish(n)
		case *ast.AssignStmt:
			st.recordAssign(n)
		case *ast.ValueSpec:
			for i, name := range n.Names {
				obj := info.Defs[name]
				if obj == nil || !tracked(obj.Type()) {
					continue
				}
				st.ensureLocal(obj)
				if i < len(n.Values) {
					st.sources[obj] = append(st.sources[obj], n.Values[i])
				} else if len(n.Values) == 1 {
					st.sources[obj] = append(st.sources[obj], n.Values[0])
				}
			}
		case *ast.RangeStmt:
			if id, ok := n.Value.(*ast.Ident); ok {
				if obj := info.Defs[id]; obj != nil && tracked(obj.Type()) {
					st.ensureLocal(obj)
					// A range element inherits the slice's ownedness.
					st.sources[obj] = append(st.sources[obj], n.X)
				}
			}
		}
		return true
	})

	// Fixpoint: start optimistic, demote any local with an unowned
	// source until nothing changes. Monotone (owned only ever flips to
	// unowned), so it terminates.
	for obj := range st.sources {
		if _, isFixed := st.fixed[obj]; !isFixed {
			st.ownedVar[obj] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for obj, srcs := range st.sources {
			if _, isFixed := st.fixed[obj]; isFixed || !st.ownedVar[obj] {
				continue
			}
			for _, src := range srcs {
				if !st.ownedExpr(src) {
					st.ownedVar[obj] = false
					changed = true
					break
				}
			}
		}
	}
	return st
}

func (st *funcState) ensureLocal(obj types.Object) {
	if _, ok := st.sources[obj]; !ok {
		st.sources[obj] = nil
	}
}

// recordAssign registers assignment edges into tracked locals, and
// element demotions for stores into tracked slices.
func (st *funcState) recordAssign(n *ast.AssignStmt) {
	info := st.a.pass.TypesInfo
	for i, lhs := range n.Lhs {
		var rhs ast.Expr
		if len(n.Rhs) == len(n.Lhs) {
			rhs = n.Rhs[i]
		} else if len(n.Rhs) == 1 {
			rhs = n.Rhs[0] // multi-value call: judge the whole call
		}
		if rhs == nil {
			continue
		}
		switch l := lhs.(type) {
		case *ast.Ident:
			obj := info.Defs[l]
			if obj == nil {
				obj = info.Uses[l]
			}
			if obj != nil && tracked(obj.Type()) {
				st.ensureLocal(obj)
				st.sources[obj] = append(st.sources[obj], rhs)
			}
		case *ast.IndexExpr:
			// s[i] = x: an unowned element poisons the whole slice.
			if id, ok := l.X.(*ast.Ident); ok {
				obj := info.Uses[id]
				if obj != nil && tracked(obj.Type()) {
					st.ensureLocal(obj)
					st.sources[obj] = append(st.sources[obj], rhs)
				}
			}
		}
	}
}

// recordPublish marks operation arguments of Put/PutBatch calls: their
// ownership transfers to the store at that call.
func (st *funcState) recordPublish(call *ast.CallExpr) {
	name := ""
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	}
	if !publishFuncs[name] {
		return
	}
	info := st.a.pass.TypesInfo
	for _, arg := range call.Args {
		if id, ok := arg.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && tracked(obj.Type()) {
				if _, ok := st.published[obj]; !ok {
					st.published[obj] = call.Pos()
				}
			}
		}
	}
}

// isUpdateCall reports whether call invokes a method named Update —
// the store's clone-and-publish path, whose callback owns its
// argument.
func isUpdateCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Update"
}

// ownedExpr judges whether the value of e is privately owned.
func (st *funcState) ownedExpr(e ast.Expr) bool {
	info := st.a.pass.TypesInfo
	switch e := e.(type) {
	case *ast.ParenExpr:
		return st.ownedExpr(e.X)
	case *ast.StarExpr:
		// Dereferencing copies the value; the copy is private.
		return true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return st.ownedExpr(e.X)
		}
	case *ast.CompositeLit:
		if isOperation(info.TypeOf(e)) {
			return true
		}
		// A slice literal is owned iff its elements are.
		for _, elt := range e.Elts {
			if !st.ownedExpr(elt) {
				return false
			}
		}
		return true
	case *ast.Ident:
		if e.Name == "nil" {
			return true
		}
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		if obj == nil {
			return false
		}
		if fixed, ok := st.fixed[obj]; ok {
			return fixed
		}
		if _, ok := st.sources[obj]; ok {
			return st.ownedVar[obj]
		}
		return false
	case *ast.IndexExpr:
		return st.ownedExpr(e.X)
	case *ast.SliceExpr:
		return st.ownedExpr(e.X)
	case *ast.CallExpr:
		return st.ownedCall(e)
	}
	return false
}

// ownedCall judges call results: builtins that allocate, Clone, and
// same-package helpers whose every return is owned.
func (st *funcState) ownedCall(call *ast.CallExpr) bool {
	info := st.a.pass.TypesInfo
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		switch obj := info.Uses[fun].(type) {
		case *types.Builtin:
			switch obj.Name() {
			case "new", "make":
				return true
			case "append":
				for _, arg := range call.Args {
					if !st.ownedExpr(arg) {
						return false
					}
				}
				return true
			}
		case *types.Func:
			return st.a.returnsOwned(obj)
		}
	case *ast.SelectorExpr:
		obj, ok := info.Uses[fun.Sel].(*types.Func)
		if !ok {
			return false
		}
		if obj.Name() == "Clone" {
			if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil && isOperation(sig.Recv().Type()) {
				return true
			}
		}
		return st.a.returnsOwned(obj)
	}
	return false
}

// returnsOwned reports whether every tracked value fn returns is owned
// inside fn — the property that lets factory helpers construct
// operations for their callers.
func (a *analysis) returnsOwned(fn *types.Func) bool {
	if got, ok := a.owned[fn]; ok {
		return got == owned
	}
	decl, ok := a.decls[fn]
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	anyTracked := false
	for i := 0; i < sig.Results().Len(); i++ {
		if tracked(sig.Results().At(i).Type()) {
			anyTracked = true
		}
	}
	if !anyTracked {
		return false
	}
	a.owned[fn] = computing
	st := a.analyzeFunc(decl)
	verdict := owned
	// Examine only returns belonging to the declaration itself, not to
	// nested literals.
	var depth int
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			if len(n.Results) == 0 {
				// Bare return: judge the named result variables.
				for i := 0; i < sig.Results().Len(); i++ {
					res := sig.Results().At(i)
					if tracked(res.Type()) && !st.ownedVar[res] {
						verdict = notOwned
					}
				}
				return true
			}
			for i, res := range n.Results {
				if i < sig.Results().Len() && tracked(sig.Results().At(i).Type()) && !st.ownedExpr(res) {
					verdict = notOwned
				}
			}
		}
		return true
	}
	_ = depth
	ast.Inspect(decl.Body, visit)
	a.owned[fn] = verdict
	return verdict == owned
}

// checkWrite flags a field write through an unowned operation value.
func (st *funcState) checkWrite(lhs ast.Expr) {
	info := st.a.pass.TypesInfo
	sel, ok := lhs.(*ast.SelectorExpr)
	if !ok {
		return
	}
	base := sel.X
	for {
		if p, ok := base.(*ast.ParenExpr); ok {
			base = p.X
			continue
		}
		if s, ok := base.(*ast.StarExpr); ok {
			base = s.X
			continue
		}
		break
	}
	if !isOperation(info.TypeOf(base)) {
		return
	}
	if !st.ownedExpr(base) {
		st.a.pass.Reportf(sel.Pos(),
			"write to field %s of a published *core.Operation: snapshots from Get/List/Submit are shared and immutable; mutate the clone inside Store.Update or an owned copy", sel.Sel.Name)
		return
	}
	if id, ok := base.(*ast.Ident); ok {
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		if obj != nil {
			if pos, ok := st.published[obj]; ok && pos < sel.Pos() {
				st.a.pass.Reportf(sel.Pos(),
					"write to field %s of %s after Put transferred ownership to the store: published snapshots are immutable", sel.Sel.Name, id.Name)
			}
		}
	}
}
