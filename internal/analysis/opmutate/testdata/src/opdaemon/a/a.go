// Package a exercises the opmutate ownership dataflow against a
// miniature replica of the engine's store shapes.
package a

import (
	"time"

	"opdaemon/internal/core"
)

// Store mirrors the engine's storage API: Get/List hand out shared
// snapshots, Update runs a callback on a private clone, Put takes
// ownership.
type Store struct {
	m    map[string]*core.Operation
	page []*core.Operation
}

// Get returns the shared snapshot for id.
func (s *Store) Get(id string) (*core.Operation, bool) {
	op, ok := s.m[id]
	return op, ok
}

// List returns a page of shared snapshots.
func (s *Store) List() []*core.Operation {
	return s.page
}

// Update clones, hands the clone to fn, and publishes it.
func (s *Store) Update(id string, fn func(*core.Operation)) {
	if op, ok := s.m[id]; ok {
		c := op.Clone()
		fn(c)
		s.m[id] = c
	}
}

// Put publishes op; the caller must not touch it afterwards.
func (s *Store) Put(op *core.Operation) {
	s.m[op.ID] = op
}

// mutateFetched writes a snapshot straight out of Get.
func mutateFetched(s *Store, id string) {
	op, ok := s.Get(id)
	if !ok {
		return
	}
	op.Status = core.StatusRunning // want `write to field Status of a published \*core\.Operation`
}

// mutateListed writes through a range element of a listed page.
func mutateListed(s *Store) {
	for _, op := range s.List() {
		op.Error = "poisoned" // want `write to field Error of a published \*core\.Operation`
	}
}

// mutateIndexed writes through an index into a listed page.
func mutateIndexed(s *Store) {
	page := s.List()
	if len(page) > 0 {
		page[0].Attempts++ // want `write to field Attempts of a published \*core\.Operation`
	}
}

// mutateParam writes a parameter: the caller may have handed us a
// shared snapshot.
func mutateParam(op *core.Operation) {
	op.Error += "retry" // want `write to field Error of a published \*core\.Operation`
}

// mutateAliased writes through an alias of a fetched snapshot: the
// taint follows the assignment.
func mutateAliased(s *Store, id string) {
	fresh := &core.Operation{ID: id}
	got, _ := s.Get(id)
	fresh = got
	fresh.Status = core.StatusDone // want `write to field Status of a published \*core\.Operation`
}

// mutateAfterPut keeps writing after ownership transferred.
func mutateAfterPut(s *Store, id string, now time.Time) {
	op := &core.Operation{ID: id, Status: core.StatusQueued, CreatedAt: now}
	s.Put(op)
	op.UpdatedAt = now // want `write to field UpdatedAt of op after Put transferred ownership`
}

// buildAndPublish is the sanctioned construction path: mutate freely
// before Put, never after.
func buildAndPublish(s *Store, id string, now time.Time) {
	op := &core.Operation{ID: id}
	op.Status = core.StatusQueued
	op.CreatedAt = now
	s.Put(op)
}

// updateViaCallback is the sanctioned mutation path: the callback's
// argument is a private clone.
func updateViaCallback(s *Store, id string, now time.Time) {
	s.Update(id, func(op *core.Operation) {
		op.Status = core.StatusRunning
		op.UpdatedAt = now
	})
}

// mutateClone is legal: Clone returns a private copy.
func mutateClone(s *Store, id string) *core.Operation {
	got, ok := s.Get(id)
	if !ok {
		return nil
	}
	c := got.Clone()
	c.Error = "annotated"
	return c
}

// mutateDerefCopy is legal: dereferencing copies the value.
func mutateDerefCopy(s *Store, id string) core.Operation {
	got, _ := s.Get(id)
	cp := *got
	cp.Error = "local"
	return cp
}

// mkOp is a factory: every return is freshly constructed, so callers
// own what it hands back.
func mkOp(id string, now time.Time) *core.Operation {
	op := &core.Operation{ID: id, Status: core.StatusQueued}
	op.CreatedAt = now
	return op
}

// mutateFactoryResult is legal: mkOp returns owned values.
func mutateFactoryResult(now time.Time) *core.Operation {
	op := mkOp("op-1", now)
	op.Kind = "noop"
	return op
}

// mutateLocalSlice is legal: the slice and its elements are built here.
func mutateLocalSlice(now time.Time) []*core.Operation {
	ops := []*core.Operation{mkOp("a", now)}
	ops = append(ops, mkOp("b", now))
	ops[0].Kind = "batch"
	for _, op := range ops {
		op.UpdatedAt = now
	}
	return ops
}

// poisonedSlice loses ownership when a fetched snapshot lands in it.
func poisonedSlice(s *Store, id string, now time.Time) {
	ops := []*core.Operation{mkOp("a", now)}
	got, _ := s.Get(id)
	ops = append(ops, got)
	ops[0].Error = "x" // want `write to field Error of a published \*core\.Operation`
}

// suppressedMutation documents an intentional exception.
func suppressedMutation(s *Store, id string) {
	got, _ := s.Get(id)
	//lint:allow opdaemon/opmutate fixture: documented intentional write
	got.Error = "sanctioned"
}
