package a

import (
	"testing"
	"time"

	"opdaemon/internal/core"
)

// TestFactoryMutation shows the conformance-suite idiom: helpers
// return owned operations that the test shapes freely before Put.
func TestFactoryMutation(t *testing.T) {
	now := time.Unix(0, 0)
	op := mkOp("t-1", now)
	op.Status = core.StatusRunning
	op.Error = "shaped by the test"
	if op.ID != "t-1" {
		t.Fatal("unexpected id")
	}
}

// TestFetchedMutation shows that tests are policed too: writing a
// snapshot out of Get races with the store.
func TestFetchedMutation(t *testing.T) {
	s := &Store{m: map[string]*core.Operation{"t-2": {ID: "t-2"}}}
	got, _ := s.Get("t-2")
	got.Status = core.StatusDone // want `write to field Status of a published \*core\.Operation`
	_ = got
}
