// Package core is a fixture mirror of the real domain package: just
// enough of Operation and its lifecycle for the analyzers to resolve
// the types they police. Direct Status writes in here must never be
// flagged — core owns the invariant.
package core

import "time"

// Status is the lifecycle state of an Operation.
type Status string

// The lifecycle states.
const (
	StatusQueued    Status = "queued"
	StatusRunning   Status = "running"
	StatusDone      Status = "done"
	StatusFailed    Status = "failed"
	StatusCancelled Status = "cancelled"
)

// CanTransition reports whether a move from s to next is legal.
func (s Status) CanTransition(next Status) bool {
	switch s {
	case StatusQueued:
		return next == StatusRunning || next == StatusFailed || next == StatusCancelled
	case StatusRunning:
		return next == StatusDone || next == StatusFailed || next == StatusCancelled
	}
	return false
}

// Operation is the fixture unit of work.
type Operation struct {
	ID          string
	Kind        string
	Status      Status
	Error       string
	Attempts    int
	CreatedAt   time.Time
	UpdatedAt   time.Time
	CancelledAt time.Time
}

// Clone returns a shallow copy.
func (op *Operation) Clone() *Operation {
	c := *op
	return &c
}

// Transition advances op to next if legal, stamping timestamps, and
// reports whether the step applied. The direct writes below are the
// sanctioned single site.
func (op *Operation) Transition(next Status, now time.Time) bool {
	if !op.Status.CanTransition(next) {
		return false
	}
	op.Status = next
	op.UpdatedAt = now
	if next == StatusCancelled && op.CancelledAt.IsZero() {
		op.CancelledAt = now
	}
	return true
}
