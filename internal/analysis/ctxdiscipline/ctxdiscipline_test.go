package ctxdiscipline_test

import (
	"testing"

	"opdaemon/internal/analysis/ctxdiscipline"
	"opdaemon/internal/analysis/lintkit/analysistest"
)

func TestCtxDiscipline(t *testing.T) {
	analysistest.Run(t, "testdata", ctxdiscipline.Analyzer, "a", "cmd/tool")
}
