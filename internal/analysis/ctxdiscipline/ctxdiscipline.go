// Package ctxdiscipline enforces the daemon's context-threading
// contract:
//
//  1. context.Background and context.TODO are reserved for binaries
//     (cmd/ packages) and tests. Library code must thread the caller's
//     context so cancellation and deadlines propagate; a fresh root in
//     the middle of the stack silently detaches everything below it.
//  2. An exported library function whose body can block — a channel
//     send or receive, a select with no default, ranging over a
//     channel, time.Sleep, or a sync.WaitGroup/sync.Cond Wait — must
//     take a context.Context as its first parameter, so callers can
//     always bound the wait.
//
// Blocking detection is deliberately syntactic and local: it inspects
// the function's own body (not transitive callees, and not nested
// function literals, which typically run on other goroutines).
// Operations that cannot block are exempt — a send or receive inside a
// select that has a default case is a try-operation, and close(ch)
// never blocks.
package ctxdiscipline

import (
	"go/ast"
	"go/types"
	"strings"

	"opdaemon/internal/analysis/lintkit"
)

// Analyzer is the ctxdiscipline checker.
var Analyzer = &lintkit.Analyzer{
	Name: "ctxdiscipline",
	Doc:  "context roots only in cmd/ and tests; exported blocking functions take ctx first",
	Run:  run,
}

func run(pass *lintkit.Pass) error {
	if isCommandPackage(pass.Pkg) {
		return nil
	}
	for _, file := range pass.Files {
		// Tests are entry points, like main: they own their lifetime,
		// fabricate contexts freely, and block on the code under test.
		if strings.HasSuffix(pass.Fset.Position(file.FileStart).Filename, "_test.go") {
			continue
		}
		checkContextRoots(pass, file)
		checkExportedBlockers(pass, file)
	}
	return nil
}

// isCommandPackage reports whether the package is a binary, where
// creating root contexts is the whole point.
func isCommandPackage(pkg *types.Package) bool {
	if pkg.Name() == "main" {
		return true
	}
	path := pkg.Path()
	return strings.HasPrefix(path, "cmd/") || strings.Contains(path, "/cmd/")
}

// checkContextRoots flags context.Background and context.TODO calls.
func checkContextRoots(pass *lintkit.Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj, ok := pass.TypesInfo.Uses[sel.Sel]
		if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "context" {
			return true
		}
		if name := obj.Name(); name == "Background" || name == "TODO" {
			pass.Reportf(call.Pos(),
				"context.%s outside cmd/ and tests: thread the caller's context instead of detaching a new root", name)
		}
		return true
	})
}

// checkExportedBlockers flags exported functions that block without
// taking a leading context.Context.
func checkExportedBlockers(pass *lintkit.Pass, file *ast.File) {
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil || !fn.Name.IsExported() {
			continue
		}
		if takesContextFirst(pass, fn) {
			continue
		}
		if why := firstBlockingOp(pass, fn.Body); why != "" {
			pass.Reportf(fn.Name.Pos(),
				"exported %s blocks (%s) but does not take a context.Context as its first parameter", fn.Name.Name, why)
		}
	}
}

// takesContextFirst reports whether the function's first parameter is a
// context.Context.
func takesContextFirst(pass *lintkit.Pass, fn *ast.FuncDecl) bool {
	params := fn.Type.Params
	if params == nil || len(params.List) == 0 {
		return false
	}
	t := pass.TypesInfo.TypeOf(params.List[0].Type)
	return t != nil && t.String() == "context.Context"
}

// firstBlockingOp returns a description of the first potentially
// blocking operation directly inside body, or "" if there is none.
// Nested function literals are skipped: their bodies run when (and on
// whichever goroutine) the literal is invoked.
func firstBlockingOp(pass *lintkit.Pass, body *ast.BlockStmt) string {
	found := ""
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		if found != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt:
			if selectHasDefault(n) {
				// Try-send/try-receive: the comm clauses cannot block.
				// Still walk the clause bodies.
				for _, clause := range n.Body.List {
					if cc, ok := clause.(*ast.CommClause); ok {
						for _, s := range cc.Body {
							ast.Inspect(s, visit)
						}
					}
				}
				return false
			}
			found = "select with no default"
			return false
		case *ast.SendStmt:
			found = "channel send"
			return false
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				found = "channel receive"
				return false
			}
		case *ast.RangeStmt:
			if t := pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = "range over channel"
					return false
				}
			}
		case *ast.CallExpr:
			if why := blockingCall(pass, n); why != "" {
				found = why
				return false
			}
		}
		return true
	}
	ast.Inspect(body, visit)
	return found
}

func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// blockingCall recognises the standard library's well-known blockers.
func blockingCall(pass *lintkit.Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel]
	if !ok || obj.Pkg() == nil {
		return ""
	}
	switch obj.Pkg().Path() {
	case "time":
		if obj.Name() == "Sleep" {
			return "time.Sleep"
		}
	case "sync":
		if obj.Name() == "Wait" {
			recv := pass.TypesInfo.TypeOf(sel.X)
			switch lintkit.TypeName(recv) {
			case "WaitGroup":
				return "sync.WaitGroup.Wait"
			case "Cond":
				return "sync.Cond.Wait"
			}
		}
	}
	return ""
}
