// Package a exercises every ctxdiscipline diagnostic plus the clean
// shapes that must not be flagged.
package a

import (
	"context"
	"sync"
	"time"
)

// Root creation in library code is forbidden.
func detachedRoot() context.Context {
	return context.Background() // want `context\.Background outside cmd/ and tests`
}

func todoRoot() context.Context {
	return context.TODO() // want `context\.TODO outside cmd/ and tests`
}

// Threading the caller's context is the sanctioned shape.
func threaded(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithCancel(ctx)
}

// A suppressed root with a justification stays silent.
func suppressedRoot() context.Context {
	//lint:allow opdaemon/ctxdiscipline this is the process root for the fixture
	return context.Background()
}

// Drain blocks on a bare receive without taking a context.
func Drain(ch chan int) int { // want `exported Drain blocks \(channel receive\) but does not take a context\.Context`
	return <-ch
}

// Send blocks on a bare send without taking a context.
func Send(ch chan int) { // want `exported Send blocks \(channel send\)`
	ch <- 1
}

// WaitAll blocks on a WaitGroup without taking a context.
func WaitAll(wg *sync.WaitGroup) { // want `exported WaitAll blocks \(sync\.WaitGroup\.Wait\)`
	wg.Wait()
}

// Nap blocks in time.Sleep without taking a context.
func Nap() { // want `exported Nap blocks \(time\.Sleep\)`
	time.Sleep(time.Second)
}

// Gather blocks in a select with no default.
func Gather(a, b chan int) int { // want `exported Gather blocks \(select with no default\)`
	select {
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// Consume blocks ranging over a channel.
func Consume(ch chan int) (n int) { // want `exported Consume blocks \(range over channel\)`
	for range ch {
		n++
	}
	return n
}

// DrainCtx is the compliant version: context first.
func DrainCtx(ctx context.Context, ch chan int) int {
	select {
	case v := <-ch:
		return v
	case <-ctx.Done():
		return 0
	}
}

// TrySend cannot block: the select has a default.
func TrySend(ch chan int) bool {
	select {
	case ch <- 1:
		return true
	default:
		return false
	}
}

// Spawn only blocks inside a goroutine body, which runs elsewhere.
func Spawn(ch chan int) {
	go func() {
		ch <- 1
	}()
}

// drainUnexported blocks but is not exported; internal helpers may
// rely on their exported callers' contexts.
func drainUnexported(ch chan int) int {
	return <-ch
}

// Closer never blocks: close is not a send.
func Closer(ch chan int) {
	close(ch)
}
