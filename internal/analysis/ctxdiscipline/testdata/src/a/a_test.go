package a

import (
	"context"
	"testing"
)

// Tests are exempt from both rules: they fabricate roots and block on
// the code under test.
func TestRootsAllowed(t *testing.T) {
	ctx := context.Background()
	_ = ctx
	_ = context.TODO()
}

// BlockForever would violate the blocking rule anywhere but a test
// file.
func BlockForever(ch chan int) int {
	return <-ch
}
