// Command tool shows that binaries own their context roots.
package main

import "context"

func main() {
	ctx := context.Background()
	_ = ctx
}

// Run blocks without a context, which is fine in a binary: main owns
// the process lifetime.
func Run(ch chan int) int {
	return <-ch
}
