package core

// Binary wire codec for Operation: the WAL's v2 record bodies. The JSON
// tags on Operation define the API wire format; this file defines the
// compact durable format — varint-framed fields, no field names, no
// quoting — so a log record costs bytes proportional to the data it
// actually carries instead of to the schema.
//
// Two shapes exist:
//
//   - the full record (AppendBinary / DecodeBinaryOperation): every
//     field, self-contained, replayable with no prior state;
//   - the delta record (AppendBinaryDelta / DecodeBinaryDelta): the ID
//     plus only the fields a lifecycle transition may change — status,
//     timestamps, error, result. A delta always carries the complete
//     mutable set, so applying the newest delta for an ID onto any full
//     base yields the final mutable state regardless of the
//     intermediate deltas.
//
// Layout conventions: strings and byte blobs are uvarint length +
// bytes; times are zigzag-varint unix seconds + uvarint nanoseconds,
// elided entirely (a flag bit) when zero; enums are one byte. Decoders
// bounds-check every read and return an error — never panic — on
// arbitrary input, which is what lets the WAL treat "undecodable" as
// just another corrupt-frame shape.

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"time"
)

// ErrBinaryCorrupt is the sentinel wrapped by every binary decode
// failure, so callers can classify without string matching.
var ErrBinaryCorrupt = errors.New("corrupt binary operation record")

// Full-record flag bits: presence markers for the elidable fields.
const (
	binHasParams = 1 << iota
	binHasResult
	binHasError
	binHasClient
	binHasDeadline
	binHasCreatedAt
	binHasUpdatedAt
	binHasCancelledAt
)

// Delta-record flag bits.
const (
	deltaHasResult = 1 << iota
	deltaHasError
	deltaHasUpdatedAt
	deltaHasCancelledAt
)

// statusToByte maps the closed Status set onto stable one-byte codes.
// 0 is deliberately unused so an all-zeroes body can never decode as a
// valid status.
func statusToByte(s Status) (byte, bool) {
	switch s {
	case StatusQueued:
		return 1, true
	case StatusRunning:
		return 2, true
	case StatusDone:
		return 3, true
	case StatusFailed:
		return 4, true
	case StatusCancelled:
		return 5, true
	}
	return 0, false
}

func statusFromByte(b byte) (Status, bool) {
	switch b {
	case 1:
		return StatusQueued, true
	case 2:
		return StatusRunning, true
	case 3:
		return StatusDone, true
	case 4:
		return StatusFailed, true
	case 5:
		return StatusCancelled, true
	}
	return "", false
}

// priorityToByte maps Priority onto one-byte codes; 0 is the unset
// (empty) priority, which pre-publication operations may carry.
func priorityToByte(p Priority) (byte, bool) {
	switch p {
	case "":
		return 0, true
	case PriorityLow:
		return 1, true
	case PriorityNormal:
		return 2, true
	case PriorityHigh:
		return 3, true
	}
	return 0, false
}

func priorityFromByte(b byte) (Priority, bool) {
	switch b {
	case 0:
		return "", true
	case 1:
		return PriorityLow, true
	case 2:
		return PriorityNormal, true
	case 3:
		return PriorityHigh, true
	}
	return "", false
}

func appendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

func appendBlob(dst []byte, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// appendTime encodes a non-zero time as zigzag seconds + nanoseconds.
// Callers elide zero times via a flag bit instead of calling this.
func appendTime(dst []byte, t time.Time) []byte {
	dst = binary.AppendVarint(dst, t.Unix())
	return binary.AppendUvarint(dst, uint64(t.Nanosecond()))
}

// binReader is a bounds-checked cursor over a record body. Every take
// method reports failure instead of panicking, so decoding arbitrary
// bytes is safe by construction.
type binReader struct {
	data []byte
	pos  int
	err  error
}

func (r *binReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s at offset %d", ErrBinaryCorrupt, what, r.pos)
	}
}

func (r *binReader) uvarint(what string) uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		r.fail(what)
		return 0
	}
	r.pos += n
	return v
}

func (r *binReader) varint(what string) int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.data[r.pos:])
	if n <= 0 {
		r.fail(what)
		return 0
	}
	r.pos += n
	return v
}

func (r *binReader) byte(what string) byte {
	if r.err != nil {
		return 0
	}
	if r.pos >= len(r.data) {
		r.fail(what)
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

// blob returns a sub-slice of the underlying data; callers that retain
// it must copy (see the Result handling in decode).
func (r *binReader) blob(what string) []byte {
	n := r.uvarint(what + " length")
	if r.err != nil {
		return nil
	}
	if uint64(len(r.data)-r.pos) < n {
		r.fail(what + " truncated")
		return nil
	}
	b := r.data[r.pos : r.pos+int(n)]
	r.pos += int(n)
	return b
}

func (r *binReader) string(what string) string {
	return string(r.blob(what))
}

func (r *binReader) time(what string) time.Time {
	sec := r.varint(what + " seconds")
	nsec := r.uvarint(what + " nanoseconds")
	if r.err != nil {
		return time.Time{}
	}
	if nsec >= 1e9 {
		r.fail(what + " nanoseconds out of range")
		return time.Time{}
	}
	return time.Unix(sec, int64(nsec))
}

// AppendBinary appends the operation's full binary record body to dst
// and returns the extended slice. It fails only if Params holds a
// value JSON cannot represent — the same failure mode the JSON codec
// has — and leaves dst untouched in that case.
func (op *Operation) AppendBinary(dst []byte) ([]byte, error) {
	sb, ok := statusToByte(op.Status)
	if !ok {
		return dst, fmt.Errorf("encoding operation %s: unknown status %q", op.ID, op.Status)
	}
	pb, ok := priorityToByte(op.Priority)
	if !ok {
		return dst, fmt.Errorf("encoding operation %s: unknown priority %q", op.ID, op.Priority)
	}
	var params []byte
	if op.Params != nil {
		var err error
		params, err = json.Marshal(op.Params)
		if err != nil {
			return dst, fmt.Errorf("encoding operation %s params: %w", op.ID, err)
		}
	}
	var flags uint64
	if params != nil {
		flags |= binHasParams
	}
	if op.Result != nil {
		flags |= binHasResult
	}
	if op.Error != "" {
		flags |= binHasError
	}
	if op.Client != "" {
		flags |= binHasClient
	}
	if op.Deadline != 0 {
		flags |= binHasDeadline
	}
	if !op.CreatedAt.IsZero() {
		flags |= binHasCreatedAt
	}
	if !op.UpdatedAt.IsZero() {
		flags |= binHasUpdatedAt
	}
	if !op.CancelledAt.IsZero() {
		flags |= binHasCancelledAt
	}
	dst = appendUvarint(dst, flags)
	dst = appendString(dst, op.ID)
	dst = appendString(dst, op.Kind)
	dst = append(dst, sb, pb)
	if flags&binHasParams != 0 {
		dst = appendBlob(dst, params)
	}
	if flags&binHasResult != 0 {
		dst = appendBlob(dst, op.Result)
	}
	if flags&binHasError != 0 {
		dst = appendString(dst, op.Error)
	}
	if flags&binHasClient != 0 {
		dst = appendString(dst, op.Client)
	}
	if flags&binHasDeadline != 0 {
		dst = appendUvarint(dst, uint64(op.Deadline))
	}
	if flags&binHasCreatedAt != 0 {
		dst = appendTime(dst, op.CreatedAt)
	}
	if flags&binHasUpdatedAt != 0 {
		dst = appendTime(dst, op.UpdatedAt)
	}
	if flags&binHasCancelledAt != 0 {
		dst = appendTime(dst, op.CancelledAt)
	}
	return dst, nil
}

// DecodeBinaryOperation decodes a full binary record body. The returned
// operation owns its memory — nothing aliases data, so the caller may
// reuse or discard the buffer.
func DecodeBinaryOperation(data []byte) (*Operation, error) {
	r := &binReader{data: data}
	flags := r.uvarint("flags")
	op := &Operation{
		ID:   r.string("id"),
		Kind: r.string("kind"),
	}
	sb, pb := r.byte("status"), r.byte("priority")
	if flags&binHasParams != 0 {
		blob := r.blob("params")
		if r.err == nil {
			if err := json.Unmarshal(blob, &op.Params); err != nil {
				return nil, fmt.Errorf("%w: params: %v", ErrBinaryCorrupt, err)
			}
		}
	}
	if flags&binHasResult != 0 {
		if blob := r.blob("result"); r.err == nil {
			op.Result = append(json.RawMessage(nil), blob...)
		}
	}
	if flags&binHasError != 0 {
		op.Error = r.string("error")
	}
	if flags&binHasClient != 0 {
		op.Client = r.string("client")
	}
	if flags&binHasDeadline != 0 {
		op.Deadline = time.Duration(r.uvarint("deadline"))
	}
	if flags&binHasCreatedAt != 0 {
		op.CreatedAt = r.time("created_at")
	}
	if flags&binHasUpdatedAt != 0 {
		op.UpdatedAt = r.time("updated_at")
	}
	if flags&binHasCancelledAt != 0 {
		op.CancelledAt = r.time("cancelled_at")
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.pos != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBinaryCorrupt, len(data)-r.pos)
	}
	var ok bool
	if op.Status, ok = statusFromByte(sb); !ok {
		return nil, fmt.Errorf("%w: unknown status code %d", ErrBinaryCorrupt, sb)
	}
	if op.Priority, ok = priorityFromByte(pb); !ok {
		return nil, fmt.Errorf("%w: unknown priority code %d", ErrBinaryCorrupt, pb)
	}
	if op.ID == "" {
		return nil, fmt.Errorf("%w: operation record without an id", ErrBinaryCorrupt)
	}
	return op, nil
}

// BinaryDelta is a decoded delta record: the complete mutable field
// set a lifecycle transition may change. Apply folds it onto a full
// base snapshot.
type BinaryDelta struct {
	ID          string
	Status      Status
	UpdatedAt   time.Time
	CancelledAt time.Time
	Error       string
	Result      json.RawMessage
}

// AppendBinaryDelta appends the operation's delta record body — ID
// plus the full mutable field set — to dst. Deltas carry no Params, so
// encoding cannot fail.
func (op *Operation) AppendBinaryDelta(dst []byte) []byte {
	// A delta is only encoded for statuses the lifecycle can produce,
	// so statusToByte cannot miss here; the eligibility check guards it.
	sb, _ := statusToByte(op.Status)
	var flags uint64
	if op.Result != nil {
		flags |= deltaHasResult
	}
	if op.Error != "" {
		flags |= deltaHasError
	}
	if !op.UpdatedAt.IsZero() {
		flags |= deltaHasUpdatedAt
	}
	if !op.CancelledAt.IsZero() {
		flags |= deltaHasCancelledAt
	}
	dst = appendUvarint(dst, flags)
	dst = appendString(dst, op.ID)
	dst = append(dst, sb)
	if flags&deltaHasResult != 0 {
		dst = appendBlob(dst, op.Result)
	}
	if flags&deltaHasError != 0 {
		dst = appendString(dst, op.Error)
	}
	if flags&deltaHasUpdatedAt != 0 {
		dst = appendTime(dst, op.UpdatedAt)
	}
	if flags&deltaHasCancelledAt != 0 {
		dst = appendTime(dst, op.CancelledAt)
	}
	return dst
}

// AppendBinary re-encodes a decoded delta, mirroring
// Operation.AppendBinaryDelta. Round-tripping through decode and back
// reaches a fixed point after one pass, which is what the codec fuzz
// target checks.
func (d *BinaryDelta) AppendBinary(dst []byte) []byte {
	op := Operation{
		ID:          d.ID,
		Status:      d.Status,
		UpdatedAt:   d.UpdatedAt,
		CancelledAt: d.CancelledAt,
		Error:       d.Error,
		Result:      d.Result,
	}
	return op.AppendBinaryDelta(dst)
}

// DecodeBinaryDelta decodes a delta record body. The returned delta
// owns its memory.
func DecodeBinaryDelta(data []byte) (*BinaryDelta, error) {
	r := &binReader{data: data}
	flags := r.uvarint("flags")
	d := &BinaryDelta{ID: r.string("id")}
	sb := r.byte("status")
	if flags&deltaHasResult != 0 {
		if blob := r.blob("result"); r.err == nil {
			d.Result = append(json.RawMessage(nil), blob...)
		}
	}
	if flags&deltaHasError != 0 {
		d.Error = r.string("error")
	}
	if flags&deltaHasUpdatedAt != 0 {
		d.UpdatedAt = r.time("updated_at")
	}
	if flags&deltaHasCancelledAt != 0 {
		d.CancelledAt = r.time("cancelled_at")
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.pos != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBinaryCorrupt, len(data)-r.pos)
	}
	var ok bool
	if d.Status, ok = statusFromByte(sb); !ok {
		return nil, fmt.Errorf("%w: unknown status code %d", ErrBinaryCorrupt, sb)
	}
	if d.ID == "" {
		return nil, fmt.Errorf("%w: delta record without an id", ErrBinaryCorrupt)
	}
	return d, nil
}

// Apply folds the delta onto a full base snapshot, returning a fresh
// operation (the base is never mutated — it may be a published
// snapshot). Every mutable field is overwritten from the delta, so the
// newest delta alone determines the final mutable state.
func (d *BinaryDelta) Apply(base *Operation) *Operation {
	c := base.Clone()
	c.Status = d.Status
	c.UpdatedAt = d.UpdatedAt
	c.CancelledAt = d.CancelledAt
	c.Error = d.Error
	c.Result = d.Result
	return c
}

// DeltaEligible reports whether the transition old → new touched only
// the mutable field set a delta record carries. Updates that changed
// an immutable-by-convention field (identity, kind, params, scheduling
// attributes, creation time) must log a full record instead. Params is
// compared by reference: lifecycle transitions share the params map
// with the base snapshot, and a replaced map — even a deep-equal one —
// disqualifies the delta rather than risking a lossy replay.
func DeltaEligible(old, new *Operation) bool {
	if old.ID != new.ID || old.Kind != new.Kind ||
		old.Priority != new.Priority || old.Client != new.Client ||
		old.Deadline != new.Deadline || !old.CreatedAt.Equal(new.CreatedAt) {
		return false
	}
	if _, ok := statusToByte(new.Status); !ok {
		return false
	}
	return sameMapRef(old.Params, new.Params)
}

// sameMapRef reports whether two maps are the same reference (or both
// nil). Maps are not comparable with ==; the reflect pointer identity
// is the cheapest honest check.
func sameMapRef(a, b map[string]any) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return reflect.ValueOf(a).Pointer() == reflect.ValueOf(b).Pointer()
}
