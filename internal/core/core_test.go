package core

import (
	"errors"
	"testing"
	"time"
)

func TestStatusTerminal(t *testing.T) {
	for _, tc := range []struct {
		status   Status
		terminal bool
	}{
		{StatusQueued, false},
		{StatusRunning, false},
		{StatusDone, true},
		{StatusFailed, true},
		{StatusCancelled, true},
	} {
		if got := tc.status.Terminal(); got != tc.terminal {
			t.Errorf("%s.Terminal() = %v, want %v", tc.status, got, tc.terminal)
		}
	}
}

func TestStatusValid(t *testing.T) {
	for _, s := range []Status{StatusQueued, StatusRunning, StatusDone, StatusFailed, StatusCancelled} {
		if !s.Valid() {
			t.Errorf("%s.Valid() = false, want true", s)
		}
	}
	if Status("bogus").Valid() {
		t.Error(`Status("bogus").Valid() = true, want false`)
	}
}

func TestStatusCanTransition(t *testing.T) {
	allowed := map[[2]Status]bool{
		{StatusQueued, StatusRunning}:    true,
		{StatusQueued, StatusFailed}:     true,
		{StatusQueued, StatusCancelled}:  true,
		{StatusRunning, StatusDone}:      true,
		{StatusRunning, StatusFailed}:    true,
		{StatusRunning, StatusCancelled}: true,
	}
	all := []Status{StatusQueued, StatusRunning, StatusDone, StatusFailed, StatusCancelled}
	for _, from := range all {
		for _, to := range all {
			want := allowed[[2]Status{from, to}]
			if got := from.CanTransition(to); got != want {
				t.Errorf("%s.CanTransition(%s) = %v, want %v", from, to, got, want)
			}
		}
	}
}

func TestOperationTransition(t *testing.T) {
	t0 := time.Unix(100, 0)
	t1 := time.Unix(200, 0)

	op := &Operation{ID: "x", Status: StatusQueued, UpdatedAt: t0}
	if !op.Transition(StatusRunning, t1) {
		t.Fatal("queued→running refused")
	}
	if op.Status != StatusRunning || !op.UpdatedAt.Equal(t1) {
		t.Fatalf("after transition: status=%s updated=%v", op.Status, op.UpdatedAt)
	}
	if !op.CancelledAt.IsZero() {
		t.Error("non-cancel transition stamped CancelledAt")
	}

	// An illegal step must leave the operation untouched.
	t2 := time.Unix(300, 0)
	if op.Transition(StatusQueued, t2) {
		t.Fatal("running→queued applied")
	}
	if op.Status != StatusRunning || !op.UpdatedAt.Equal(t1) {
		t.Fatalf("refused transition mutated op: status=%s updated=%v", op.Status, op.UpdatedAt)
	}

	// A cancel backfills CancelledAt only when it was never recorded.
	if !op.Transition(StatusCancelled, t2) {
		t.Fatal("running→cancelled refused")
	}
	if !op.CancelledAt.Equal(t2) {
		t.Errorf("CancelledAt = %v, want backfilled %v", op.CancelledAt, t2)
	}

	pre := &Operation{Status: StatusRunning, CancelledAt: t0}
	if !pre.Transition(StatusCancelled, t2) {
		t.Fatal("running→cancelled refused")
	}
	if !pre.CancelledAt.Equal(t0) {
		t.Errorf("CancelledAt = %v, want preserved request-time stamp %v", pre.CancelledAt, t0)
	}

	// Terminal states never move again.
	for _, next := range []Status{StatusQueued, StatusRunning, StatusDone, StatusFailed, StatusCancelled} {
		done := &Operation{Status: StatusDone, UpdatedAt: t0}
		if done.Transition(next, t1) {
			t.Errorf("done→%s applied", next)
		}
	}
}

func TestNewIDUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewID()
		if len(id) != 32 {
			t.Fatalf("NewID() length = %d, want 32", len(id))
		}
		if seen[id] {
			t.Fatalf("NewID() returned duplicate %q", id)
		}
		seen[id] = true
	}
}

func TestValidID(t *testing.T) {
	if id := NewID(); !ValidID(id) {
		t.Errorf("ValidID rejected NewID output %q", id)
	}
	for _, bad := range []string{
		"",
		"deadbeef",                          // right alphabet, wrong length
		"DEADBEEFDEADBEEFDEADBEEFDEADBEEF",  // uppercase
		"gggggggggggggggggggggggggggggggg",  // right length, not hex
		"0123456789abcdef0123456789abcde",   // 31 chars
		"0123456789abcdef0123456789abcdef0", // 33 chars
	} {
		if ValidID(bad) {
			t.Errorf("ValidID accepted %q", bad)
		}
	}
}

func TestOperationClone(t *testing.T) {
	op := &Operation{ID: "x", Status: StatusQueued}
	c := op.Clone()
	c.Status = StatusDone
	if op.Status != StatusQueued {
		t.Error("mutating clone changed original")
	}
}

func TestInvalidError(t *testing.T) {
	err := error(&InvalidError{Field: "kind", Reason: "must not be empty"})
	if got, want := err.Error(), "invalid kind: must not be empty"; got != want {
		t.Errorf("Error() = %q, want %q", got, want)
	}
	var inv *InvalidError
	if !errors.As(err, &inv) {
		t.Error("errors.As failed to match *InvalidError")
	}
}
