package core

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
	"time"
)

func sampleOps() []*Operation {
	now := time.Unix(1700000000, 123456789)
	return []*Operation{
		{
			ID:        "0123456789abcdef0123456789abcdef",
			Kind:      "noop",
			Status:    StatusQueued,
			Priority:  PriorityNormal,
			CreatedAt: now,
			UpdatedAt: now,
		},
		{
			ID:       "ffffffffffffffffffffffffffffffff",
			Kind:     "sleep",
			Params:   map[string]any{"ms": float64(25), "label": "x"},
			Status:   StatusRunning,
			Priority: PriorityHigh,
			Client:   "client-a",
			Deadline: 5 * time.Second,
			// Sub-second-only and pre-epoch times exercise the zigzag
			// seconds encoding.
			CreatedAt: time.Unix(-5, 999999999),
			UpdatedAt: now.Add(time.Minute),
		},
		{
			ID:          "00000000000000000000000000000001",
			Kind:        "job",
			Status:      StatusCancelled,
			Priority:    PriorityLow,
			Error:       "cancelled by client",
			Result:      json.RawMessage(`{"partial":true}`),
			CreatedAt:   now,
			UpdatedAt:   now.Add(2 * time.Second),
			CancelledAt: now.Add(time.Second),
		},
		{
			// Pre-publication shape: empty priority, zero times.
			ID:     "00000000000000000000000000000002",
			Kind:   "draft",
			Status: StatusFailed,
			Error:  "boom",
		},
	}
}

func opsEquivalent(t *testing.T, want, got *Operation) {
	t.Helper()
	a, err := json.Marshal(want)
	if err != nil {
		t.Fatalf("marshal want: %v", err)
	}
	b, err := json.Marshal(got)
	if err != nil {
		t.Fatalf("marshal got: %v", err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("round-trip mismatch:\n want %s\n  got %s", a, b)
	}
	if !want.CreatedAt.Equal(got.CreatedAt) || !want.UpdatedAt.Equal(got.UpdatedAt) ||
		!want.CancelledAt.Equal(got.CancelledAt) {
		t.Fatalf("timestamp mismatch: want %+v got %+v", want, got)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	for _, op := range sampleOps() {
		enc, err := op.AppendBinary(nil)
		if err != nil {
			t.Fatalf("AppendBinary(%s): %v", op.ID, err)
		}
		got, err := DecodeBinaryOperation(enc)
		if err != nil {
			t.Fatalf("DecodeBinaryOperation(%s): %v", op.ID, err)
		}
		opsEquivalent(t, op, got)
	}
}

func TestBinarySmallerThanJSON(t *testing.T) {
	for _, op := range sampleOps() {
		enc, err := op.AppendBinary(nil)
		if err != nil {
			t.Fatal(err)
		}
		j, err := json.Marshal(op)
		if err != nil {
			t.Fatal(err)
		}
		if len(enc) >= len(j) {
			t.Errorf("op %s: binary %dB not smaller than JSON %dB", op.ID, len(enc), len(j))
		}
	}
}

func TestBinaryAppendPreservesPrefix(t *testing.T) {
	op := sampleOps()[1]
	prefix := []byte("prefix")
	enc, err := op.AppendBinary(append([]byte(nil), prefix...))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(enc, prefix) {
		t.Fatal("AppendBinary clobbered the destination prefix")
	}
	if _, err := DecodeBinaryOperation(enc[len(prefix):]); err != nil {
		t.Fatalf("decode after prefix: %v", err)
	}
}

func TestBinaryDecodeRejectsGarbage(t *testing.T) {
	op := sampleOps()[1]
	enc, err := op.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Every truncation of a valid record must fail cleanly, not panic.
	for i := 0; i < len(enc); i++ {
		if _, err := DecodeBinaryOperation(enc[:i]); err == nil {
			t.Fatalf("truncated record of %d/%d bytes decoded cleanly", i, len(enc))
		}
	}
	// Trailing garbage must be rejected too.
	if _, err := DecodeBinaryOperation(append(append([]byte(nil), enc...), 0xff)); err == nil {
		t.Fatal("record with trailing bytes decoded cleanly")
	}
	for _, bad := range [][]byte{
		nil,
		{0x00},
		{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01},
		[]byte("not a record at all"),
	} {
		if _, err := DecodeBinaryOperation(bad); err == nil {
			t.Fatalf("garbage %q decoded cleanly", bad)
		}
	}
}

func TestBinaryDeltaRoundTrip(t *testing.T) {
	base := sampleOps()[1]
	next := base.Clone()
	if !next.Transition(StatusDone, time.Unix(1700000100, 42)) {
		t.Fatal("transition refused")
	}
	next.Result = json.RawMessage(`"ok"`)

	enc := next.AppendBinaryDelta(nil)
	d, err := DecodeBinaryDelta(enc)
	if err != nil {
		t.Fatalf("DecodeBinaryDelta: %v", err)
	}
	got := d.Apply(base)
	opsEquivalent(t, next, got)

	// The delta must be dramatically smaller than the full record.
	full, err := next.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) >= len(full) {
		t.Errorf("delta %dB not smaller than full record %dB", len(enc), len(full))
	}
}

func TestBinaryDeltaOverwritesAllMutableFields(t *testing.T) {
	// Applying a delta onto a base that is NEWER than the delta's
	// origin must still yield exactly the delta's mutable state —
	// fields the delta lacks are cleared, not inherited.
	base := sampleOps()[2] // has Error, Result, CancelledAt
	next := base.Clone()
	next.Status = StatusDone
	next.Error = ""
	next.Result = nil
	next.CancelledAt = time.Time{}
	next.UpdatedAt = time.Unix(1700000200, 0)

	d, err := DecodeBinaryDelta(next.AppendBinaryDelta(nil))
	if err != nil {
		t.Fatal(err)
	}
	got := d.Apply(base)
	if got.Error != "" || got.Result != nil || !got.CancelledAt.IsZero() {
		t.Fatalf("delta apply inherited stale mutable fields: %+v", got)
	}
	if got.Status != StatusDone || !got.UpdatedAt.Equal(next.UpdatedAt) {
		t.Fatalf("delta apply lost its own fields: %+v", got)
	}
	if base.Status != StatusCancelled {
		t.Fatal("Apply mutated the base snapshot")
	}
}

func TestBinaryDeltaDecodeRejectsGarbage(t *testing.T) {
	op := sampleOps()[2]
	enc := op.AppendBinaryDelta(nil)
	for i := 0; i < len(enc); i++ {
		if _, err := DecodeBinaryDelta(enc[:i]); err == nil {
			t.Fatalf("truncated delta of %d/%d bytes decoded cleanly", i, len(enc))
		}
	}
	if _, err := DecodeBinaryDelta(append(append([]byte(nil), enc...), 0x00)); err == nil {
		t.Fatal("delta with trailing bytes decoded cleanly")
	}
}

func TestDeltaEligible(t *testing.T) {
	base := sampleOps()[1]

	transition := base.Clone()
	transition.Transition(StatusDone, time.Unix(1700000100, 0))
	transition.Result = json.RawMessage(`"ok"`)
	if !DeltaEligible(base, transition) {
		t.Fatal("pure lifecycle transition should be delta-eligible")
	}

	for name, mutate := range map[string]func(*Operation){
		"id":       func(c *Operation) { c.ID = "11111111111111111111111111111111" },
		"kind":     func(c *Operation) { c.Kind = "other" },
		"priority": func(c *Operation) { c.Priority = PriorityLow },
		"client":   func(c *Operation) { c.Client = "client-b" },
		"deadline": func(c *Operation) { c.Deadline = time.Minute },
		"created":  func(c *Operation) { c.CreatedAt = c.CreatedAt.Add(time.Second) },
		"params":   func(c *Operation) { c.Params = map[string]any{"ms": float64(25), "label": "x"} },
	} {
		c := base.Clone()
		mutate(c)
		if DeltaEligible(base, c) {
			t.Errorf("change to %s should disqualify the delta", name)
		}
	}

	// Shared params map (the lifecycle-transition shape) stays eligible.
	shared := base.Clone()
	shared.Status = StatusDone
	if !DeltaEligible(base, shared) {
		t.Fatal("shared params map should be delta-eligible")
	}

	// nil→nil params stays eligible.
	a, b := sampleOps()[0], sampleOps()[0].Clone()
	b.Status = StatusRunning
	if !DeltaEligible(a, b) {
		t.Fatal("nil params on both sides should be delta-eligible")
	}

	// An unknown status can't be encoded in a delta.
	weird := base.Clone()
	weird.Status = Status("limbo")
	if DeltaEligible(base, weird) {
		t.Fatal("unknown status must disqualify the delta")
	}
}

func TestBinaryDecodeOwnsMemory(t *testing.T) {
	op := sampleOps()[2]
	enc, err := op.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBinaryOperation(enc)
	if err != nil {
		t.Fatal(err)
	}
	want := append(json.RawMessage(nil), got.Result...)
	for i := range enc {
		enc[i] = 0xee
	}
	if !reflect.DeepEqual(got.Result, want) {
		t.Fatal("decoded operation aliases the input buffer")
	}
}
