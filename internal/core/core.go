package core
