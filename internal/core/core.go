// Package core defines the domain model shared by every layer of the
// daemon: operations, their status lifecycle, and the typed errors that
// cross subsystem boundaries.
//
// An Operation moves through the lifecycle
//
//	queued → running → done | failed | cancelled
//	queued → failed | cancelled
//
// and never transitions out of a terminal state. The engine owns the
// transitions; the API layer only reads snapshots.
package core

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"time"
)

// Status is the lifecycle state of an Operation.
type Status string

const (
	// StatusQueued means the operation is accepted but not yet picked
	// up by a worker.
	StatusQueued Status = "queued"
	// StatusRunning means a worker is executing the operation.
	StatusRunning Status = "running"
	// StatusDone means the operation finished successfully.
	StatusDone Status = "done"
	// StatusFailed means the operation finished with an error.
	StatusFailed Status = "failed"
	// StatusCancelled means the operation was aborted on request:
	// either before it ever ran (cancelled while queued) or by
	// cancelling its context while running.
	StatusCancelled Status = "cancelled"
)

// Priority is the scheduling class of an Operation. The engine drains
// higher bands first (strict policy) or in weighted proportion
// (weighted policy); within a band, clients share the worker pool
// fairly. The empty string means "unset" and resolves at submission to
// the kind's registered default, then to PriorityNormal.
type Priority string

const (
	// PriorityLow marks background work that may wait behind everything
	// else; the scheduler's aging valve still guarantees it eventually
	// runs.
	PriorityLow Priority = "low"
	// PriorityNormal is the default scheduling class.
	PriorityNormal Priority = "normal"
	// PriorityHigh marks latency-sensitive work drained ahead of the
	// other bands.
	PriorityHigh Priority = "high"
)

// Valid reports whether p is one of the known priorities. The empty
// string is not valid on the wire — it means "unset" and is resolved
// before an operation is published.
func (p Priority) Valid() bool {
	switch p {
	case PriorityLow, PriorityNormal, PriorityHigh:
		return true
	}
	return false
}

// Terminal reports whether the status is a final state.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCancelled
}

// Valid reports whether s is one of the known lifecycle states.
func (s Status) Valid() bool {
	switch s {
	case StatusQueued, StatusRunning, StatusDone, StatusFailed, StatusCancelled:
		return true
	}
	return false
}

// CanTransition reports whether a move from s to next is a legal
// lifecycle step.
func (s Status) CanTransition(next Status) bool {
	switch s {
	case StatusQueued:
		return next == StatusRunning || next == StatusFailed || next == StatusCancelled
	case StatusRunning:
		return next == StatusDone || next == StatusFailed || next == StatusCancelled
	}
	return false
}

// Operation is a unit of background work tracked by the engine.
//
// Operations are immutable once published: every pointer handed to or
// returned by a store refers to a snapshot that never changes again.
// State advances by installing a fresh copy (see engine.Store.Update),
// so readers share pointers freely without locks or clones. Code that
// builds an Operation may mutate it only until it hands the pointer to
// a store or another goroutine.
//
// Result holds the handler's return value pre-marshalled to JSON: the
// engine serializes it when the operation completes, so a handler
// returning an unrepresentable value fails that one operation instead
// of poisoning every API response that would embed it.
type Operation struct {
	ID     string          `json:"id"`
	Kind   string          `json:"kind"`
	Params map[string]any  `json:"params,omitempty"`
	Status Status          `json:"status"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
	// Priority is the scheduling class resolved at submission (request
	// value, else the kind's registered default, else normal); it is
	// always set on a published operation.
	Priority Priority `json:"priority,omitempty"`
	// Client is the submitting client's attribution key (the API's
	// X-Client-Id header, falling back to the remote address); the
	// scheduler's fair queueing keys on it. Empty for anonymous
	// submissions, which all share one queue.
	Client string `json:"client,omitempty"`
	// Deadline is the execution time budget fixed at submission (the
	// kind's registered deadline, or the engine default). Zero means
	// the handler runs unbounded. The suffix names the JSON unit.
	Deadline  time.Duration `json:"deadline_ns,omitempty"`
	CreatedAt time.Time     `json:"created_at"`
	UpdatedAt time.Time     `json:"updated_at"`
	// CancelledAt is when cancellation was requested, set only on
	// operations that end up cancelled.
	CancelledAt time.Time `json:"cancelled_at,omitzero"`
}

// Clone returns a shallow copy of the operation: the write half of the
// copy-on-write scheme. A store's Update clones the published snapshot,
// mutates the private copy, and installs it; read paths never clone.
// Params and Result are shared; all published snapshots treat them as
// read-only.
func (op *Operation) Clone() *Operation {
	c := *op
	return &c
}

// Transition advances the operation to next if the lifecycle permits
// it, stamping UpdatedAt (and backfilling CancelledAt on a cancel whose
// request time was never recorded) with now. It reports whether the
// step applied; an illegal step leaves the operation untouched, so
// terminal states are never overwritten.
//
// This is the single sanctioned write-site for Status: callers outside
// this package must route every status change through it (the
// opdaemonlint statustransition analyzer enforces this), and must call
// it only on a privately owned copy — a clone inside a store Update
// callback, or an operation not yet published.
func (op *Operation) Transition(next Status, now time.Time) bool {
	if !op.Status.CanTransition(next) {
		return false
	}
	op.Status = next
	op.UpdatedAt = now
	if next == StatusCancelled && op.CancelledAt.IsZero() {
		op.CancelledAt = now
	}
	return true
}

// Sentinel errors surfaced across subsystem boundaries. The API layer
// maps these onto HTTP status codes with errors.Is.
var (
	// ErrNotFound means no operation with the requested ID exists.
	ErrNotFound = errors.New("operation not found")
	// ErrUnknownKind means no handler is registered for the kind.
	ErrUnknownKind = errors.New("unknown operation kind")
	// ErrShuttingDown means the engine no longer accepts work.
	ErrShuttingDown = errors.New("engine is shutting down")
	// ErrQueueFull means the submission queue is at capacity.
	ErrQueueFull = errors.New("operation queue is full")
	// ErrSaturated means admission control refused the submission: the
	// queue has reached the configured shed threshold and the engine is
	// shedding load before it hard-fills. The API maps it to 429 with a
	// Retry-After computed from queue depth and the observed drain
	// rate.
	ErrSaturated = errors.New("engine saturated, shedding load")
	// ErrAlreadyTerminal means the operation has already reached a
	// terminal state and can no longer be cancelled.
	ErrAlreadyTerminal = errors.New("operation already in a terminal state")
	// ErrCancelled is the cancellation cause attached to an
	// operation's context when a client aborts it; handlers and the
	// engine use it to tell a requested cancel from a shutdown or
	// deadline.
	ErrCancelled = errors.New("operation cancelled")
	// ErrInterrupted is the failure cause recovery records on
	// operations that were running when the previous daemon process
	// exited: their handlers' in-memory progress is gone, so after a
	// restart the durable store replays them as running and the engine
	// settles them as failed with this cause instead of silently
	// re-executing half-done work.
	ErrInterrupted = errors.New("operation interrupted by daemon restart")
)

// InvalidError describes a request that is malformed before it ever
// reaches a handler (bad kind, bad params).
type InvalidError struct {
	// Field names what was invalid ("kind", "batch", ...).
	Field string
	// Reason says why, in a client-safe sentence fragment.
	Reason string
}

// Error implements the error interface.
func (e *InvalidError) Error() string {
	return fmt.Sprintf("invalid %s: %s", e.Field, e.Reason)
}

// BatchItemError ties one validation failure to its zero-based
// position in a batch submission.
type BatchItemError struct {
	// Index is the item's position in the submitted batch.
	Index int
	// Err is the item's validation failure.
	Err error
}

// BatchError reports that a batch submission was rejected. Batches are
// validated atomically — when any item is invalid nothing is enqueued —
// and Items lists every failing item so a client can repair the whole
// request in one round trip.
type BatchError struct {
	// Total is the number of items in the rejected batch.
	Total int
	// Items holds the per-item failures, in batch order.
	Items []BatchItemError
}

// Error summarises the rejection; the per-item details are in Items.
func (e *BatchError) Error() string {
	return fmt.Sprintf("batch rejected: %d of %d items invalid", len(e.Items), e.Total)
}

// ValidID reports whether id has the shape NewID produces: exactly 32
// lowercase hex digits. The API layer uses it to reject malformed
// cursors before they reach the store.
func ValidID(id string) bool {
	if len(id) != 32 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// NewID returns a 128-bit random hex identifier for an operation.
func NewID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failure means the platform RNG is broken;
		// nothing sensible can continue.
		panic("core: reading random id: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}
