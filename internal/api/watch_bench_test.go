package api

// E2E benchmarks for the push read path, run by `make bench-e2e`
// alongside the poll-path benches in api_bench_test.go. The pairing to
// read: BenchmarkAPIGet is the cost of one poll that learned nothing;
// BenchmarkAPIWatchSubmitToTerminal is the cost of learning the
// outcome with long-polls instead of a poll loop — the per-request
// cost is higher (a blocked handler, a wake), but it replaces the
// entire poll loop, which is the trade BENCH_7.json quantifies at the
// daemon level.

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"opdaemon/internal/core"
)

// benchOpID pulls the operation ID out of a submit response.
func benchOpID(b *testing.B, body []byte) string {
	b.Helper()
	var resp Response
	if err := json.Unmarshal(body, &resp); err != nil {
		b.Fatalf("decoding submit response %q: %v", body, err)
	}
	op, ok := resp.Result.(map[string]any)
	if !ok {
		b.Fatalf("submit result = %T, want object", resp.Result)
	}
	id, _ := op["id"].(string)
	if id == "" {
		b.Fatal("submit result has no id")
	}
	return id
}

// benchOpStatus pulls the status out of a get response.
func benchOpStatus(b *testing.B, body []byte) core.Status {
	b.Helper()
	var resp Response
	if err := json.Unmarshal(body, &resp); err != nil {
		b.Fatalf("decoding get response %q: %v", body, err)
	}
	op, ok := resp.Result.(map[string]any)
	if !ok {
		b.Fatalf("get result = %T, want object", resp.Result)
	}
	st, _ := op["status"].(string)
	return core.Status(st)
}

// BenchmarkAPIGetWaitTerminal measures ?wait=true against an
// already-terminal operation: the immediate-return arm, i.e. the
// plumbing overhead wait adds on top of a plain Get.
func BenchmarkAPIGetWaitTerminal(b *testing.B) {
	for _, bs := range benchStores() {
		b.Run(bs.name, func(b *testing.B) {
			st := bs.mk()
			ops := seedStore(st, 10_000)
			s, _ := newBenchServer(b, st)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w := serve(s, "GET", "/v1/operations/"+ops[i%len(ops)].ID+"?wait=true&timeout=5s", "")
				if w.Code != http.StatusOK {
					b.Fatalf("wait get returned %d", w.Code)
				}
			}
		})
	}
}

// BenchmarkAPIWatchSubmitToTerminal measures one full watched
// lifecycle: submit, then long-poll until the terminal state arrives.
// Each iteration issues the submit plus however many waits the
// lifecycle needs (typically two: queued→running, running→done) —
// compare with the dozens of GETs a poll loop at any fixed interval
// spends on the same outcome.
func BenchmarkAPIWatchSubmitToTerminal(b *testing.B) {
	for _, bs := range benchStores() {
		b.Run(bs.name, func(b *testing.B) {
			s, _ := newBenchServer(b, bs.mk())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w := serve(s, "POST", "/v1/operations", `{"kind":"noop"}`)
				if w.Code != http.StatusAccepted {
					b.Fatalf("submit returned %d", w.Code)
				}
				id := benchOpID(b, w.Body.Bytes())
				for {
					w = serve(s, "GET", "/v1/operations/"+id+"?wait=true&timeout=5s", "")
					if w.Code != http.StatusOK {
						b.Fatalf("wait get returned %d", w.Code)
					}
					if benchOpStatus(b, w.Body.Bytes()).Terminal() {
						break
					}
				}
			}
		})
	}
}

// BenchmarkAPINotices measures a limit=50 feed page over a populated
// ring — the recurring request of a caught-up notices watcher that
// fell briefly behind.
func BenchmarkAPINotices(b *testing.B) {
	for _, bs := range benchStores() {
		b.Run(bs.name, func(b *testing.B) {
			s, e := newBenchServer(b, bs.mk())
			// Populate the feed with real lifecycles (3 notices each).
			for i := 0; i < 200; i++ {
				w := serve(s, "POST", "/v1/operations", `{"kind":"noop"}`)
				if w.Code != http.StatusAccepted {
					b.Fatalf("seed submit returned %d", w.Code)
				}
			}
			// All 200 lifecycles (3 notices each) settle before
			// measuring.
			for e.Stats().LastNotice < 600 {
				time.Sleep(time.Millisecond)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w := serve(s, "GET", "/v1/notices?limit=50", "")
				if w.Code != http.StatusOK {
					b.Fatalf("notices returned %d", w.Code)
				}
			}
		})
	}
}
