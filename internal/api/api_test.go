package api

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"opdaemon/internal/core"
	"opdaemon/internal/engine"
)

func newTestServer(t *testing.T) (*Server, *engine.Engine) {
	t.Helper()
	e := engine.New(engine.Config{Workers: 2})
	t.Cleanup(func() { e.Shutdown(context.Background()) })
	e.Register("echo", func(_ context.Context, op *core.Operation) (any, error) {
		return op.Params, nil
	})
	return New(e), e
}

// waitTerminal polls the engine until the operation settles; tests
// that exercise the HTTP poll loop itself (TestSubmitThenPollReachesDone)
// poll over HTTP instead.
func waitTerminal(t *testing.T, e *engine.Engine, id string) *core.Operation {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		op, err := e.Get(id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		if op.Status.Terminal() {
			return op
		}
		if time.Now().After(deadline) {
			t.Fatalf("op %s never finished (status %s)", id, op.Status)
		}
		time.Sleep(time.Millisecond)
	}
}

func doJSON(t *testing.T, s *Server, method, path, body string) (*httptest.ResponseRecorder, Response) {
	t.Helper()
	var r *http.Request
	if body == "" {
		r = httptest.NewRequest(method, path, nil)
	} else {
		r = httptest.NewRequest(method, path, strings.NewReader(body))
	}
	w := httptest.NewRecorder()
	s.ServeHTTP(w, r)
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("%s %s: Content-Type = %q, want application/json", method, path, ct)
	}
	var resp Response
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("%s %s: decoding body %q: %v", method, path, w.Body.String(), err)
	}
	return w, resp
}

// checkEnvelope asserts the invariants shared by every reply: the
// embedded status_code matches the HTTP code and the status text
// matches the code.
func checkEnvelope(t *testing.T, w *httptest.ResponseRecorder, resp Response, wantType string, wantCode int) {
	t.Helper()
	if w.Code != wantCode {
		t.Errorf("HTTP code = %d, want %d", w.Code, wantCode)
	}
	if resp.Type != wantType {
		t.Errorf("envelope type = %q, want %q", resp.Type, wantType)
	}
	if resp.StatusCode != wantCode {
		t.Errorf("envelope status_code = %d, want %d", resp.StatusCode, wantCode)
	}
	if resp.Status != http.StatusText(wantCode) {
		t.Errorf("envelope status = %q, want %q", resp.Status, http.StatusText(wantCode))
	}
}

func TestHealth(t *testing.T) {
	s, _ := newTestServer(t)
	w, resp := doJSON(t, s, "GET", "/v1/health", "")
	checkEnvelope(t, w, resp, "sync", http.StatusOK)
	result, ok := resp.Result.(map[string]any)
	if !ok || result["healthy"] != true {
		t.Errorf("health result = %v, want healthy=true", resp.Result)
	}
}

func TestSubmitReturnsAsyncEnvelope(t *testing.T) {
	s, _ := newTestServer(t)
	w, resp := doJSON(t, s, "POST", "/v1/operations", `{"kind":"echo","params":{"x":1}}`)
	checkEnvelope(t, w, resp, "async", http.StatusAccepted)

	op, ok := resp.Result.(map[string]any)
	if !ok {
		t.Fatalf("async result = %T, want operation object", resp.Result)
	}
	id, _ := op["id"].(string)
	if id == "" {
		t.Fatal("async result has no operation id")
	}
	if loc := w.Header().Get("Location"); loc != "/v1/operations/"+id {
		t.Errorf("Location = %q, want /v1/operations/%s", loc, id)
	}
	if got := op["status"]; got != string(core.StatusQueued) {
		t.Errorf("submitted status = %v, want queued", got)
	}
}

func TestSubmitThenPollReachesDone(t *testing.T) {
	s, _ := newTestServer(t)
	_, resp := doJSON(t, s, "POST", "/v1/operations", `{"kind":"echo","params":{"msg":"hi"}}`)
	id := resp.Result.(map[string]any)["id"].(string)

	deadline := time.Now().Add(5 * time.Second)
	for {
		w, poll := doJSON(t, s, "GET", "/v1/operations/"+id, "")
		checkEnvelope(t, w, poll, "sync", http.StatusOK)
		op := poll.Result.(map[string]any)
		if status := core.Status(op["status"].(string)); status.Terminal() {
			if status != core.StatusDone {
				t.Fatalf("operation ended %s: %v", status, op["error"])
			}
			result, _ := op["result"].(map[string]any)
			if result["msg"] != "hi" {
				t.Errorf("result = %v, want params echoed back", op["result"])
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("operation %s never reached a terminal status", id)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestErrorEnvelopes(t *testing.T) {
	for _, tc := range []struct {
		name     string
		method   string
		path     string
		body     string
		wantCode int
	}{
		{"malformed json", "POST", "/v1/operations", `{"kind":`, http.StatusBadRequest},
		{"unknown kind", "POST", "/v1/operations", `{"kind":"nope"}`, http.StatusBadRequest},
		{"empty kind", "POST", "/v1/operations", `{}`, http.StatusBadRequest},
		{"unknown operation id", "GET", "/v1/operations/deadbeef", "", http.StatusNotFound},
		{"unknown endpoint", "GET", "/v2/everything", "", http.StatusNotFound},
		{"bad status filter", "GET", "/v1/operations?status=sideways", "", http.StatusBadRequest},
		{"wrong method", "DELETE", "/v1/operations", "", http.StatusMethodNotAllowed},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s, _ := newTestServer(t)
			w, resp := doJSON(t, s, tc.method, tc.path, tc.body)
			checkEnvelope(t, w, resp, "error", tc.wantCode)
			result, ok := resp.Result.(map[string]any)
			if !ok || result["message"] == "" {
				t.Errorf("error result = %v, want non-empty message", resp.Result)
			}
		})
	}
}

func TestWrongMethodSetsAllowHeader(t *testing.T) {
	s, _ := newTestServer(t)
	w, resp := doJSON(t, s, "DELETE", "/v1/operations", "")
	checkEnvelope(t, w, resp, "error", http.StatusMethodNotAllowed)
	if got := w.Header().Get("Allow"); got != "GET, POST" {
		t.Errorf("Allow header = %q, want %q", got, "GET, POST")
	}
}

func TestUnserializableResultFailsOnlyThatOperation(t *testing.T) {
	s, e := newTestServer(t)
	e.Register("chan", func(context.Context, *core.Operation) (any, error) {
		return make(chan int), nil
	})
	_, sub := doJSON(t, s, "POST", "/v1/operations", `{"kind":"chan"}`)
	id := sub.Result.(map[string]any)["id"].(string)
	op := waitTerminal(t, e, id)
	if op.Status != core.StatusFailed {
		t.Fatalf("op status = %s, want failed", op.Status)
	}
	if !strings.Contains(op.Error, "not serializable") {
		t.Errorf("op error = %q, want serialization failure", op.Error)
	}
	// The poisoned result must not break the list endpoint.
	w, resp := doJSON(t, s, "GET", "/v1/operations", "")
	checkEnvelope(t, w, resp, "sync", http.StatusOK)
}

func TestListFilters(t *testing.T) {
	s, e := newTestServer(t)
	e.Register("fail", func(context.Context, *core.Operation) (any, error) {
		return nil, core.ErrQueueFull // arbitrary error payload
	})
	_, okResp := doJSON(t, s, "POST", "/v1/operations", `{"kind":"echo"}`)
	_, badResp := doJSON(t, s, "POST", "/v1/operations", `{"kind":"fail"}`)
	okID := okResp.Result.(map[string]any)["id"].(string)
	badID := badResp.Result.(map[string]any)["id"].(string)

	waitTerminal(t, e, okID)
	waitTerminal(t, e, badID)

	w, resp := doJSON(t, s, "GET", "/v1/operations", "")
	checkEnvelope(t, w, resp, "sync", http.StatusOK)
	if ops := resp.Result.([]any); len(ops) != 2 {
		t.Errorf("unfiltered list has %d ops, want 2", len(ops))
	}

	_, failed := doJSON(t, s, "GET", "/v1/operations?status=failed", "")
	ops, _ := failed.Result.([]any)
	if len(ops) != 1 {
		t.Fatalf("failed list has %d ops, want 1", len(ops))
	}
	if got := ops[0].(map[string]any)["id"]; got != badID {
		t.Errorf("failed list contains %v, want %s", got, badID)
	}
}

func TestSubmitAfterShutdownIs503(t *testing.T) {
	s, e := newTestServer(t)
	if err := e.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	w, resp := doJSON(t, s, "POST", "/v1/operations", `{"kind":"echo"}`)
	checkEnvelope(t, w, resp, "error", http.StatusServiceUnavailable)
}

func TestSubmitBodyTooLarge(t *testing.T) {
	s, _ := newTestServer(t)
	big := `{"kind":"echo","params":{"blob":"` + strings.Repeat("a", maxBodyBytes) + `"}}`
	w, resp := doJSON(t, s, "POST", "/v1/operations", big)
	checkEnvelope(t, w, resp, "error", http.StatusRequestEntityTooLarge)
}
