package api

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"opdaemon/internal/core"
	"opdaemon/internal/engine"
)

func newTestServer(t *testing.T, opts ...Option) (*Server, *engine.Engine) {
	t.Helper()
	e := engine.New(engine.Config{Workers: 2})
	t.Cleanup(func() { e.Shutdown(context.Background()) })
	e.Register("echo", func(_ context.Context, op *core.Operation) (any, error) {
		return op.Params, nil
	})
	return New(e, opts...), e
}

// waitTerminal polls the engine until the operation settles; tests
// that exercise the HTTP poll loop itself (TestSubmitThenPollReachesDone)
// poll over HTTP instead.
func waitTerminal(t *testing.T, e *engine.Engine, id string) *core.Operation {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		op, err := e.Get(id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		if op.Status.Terminal() {
			return op
		}
		if time.Now().After(deadline) {
			t.Fatalf("op %s never finished (status %s)", id, op.Status)
		}
		time.Sleep(time.Millisecond)
	}
}

// withHeader returns a request modifier for doJSON that sets one
// header, e.g. the X-Client-Id attribution tests exercise.
func withHeader(key, value string) func(*http.Request) {
	return func(r *http.Request) { r.Header.Set(key, value) }
}

func doJSON(t *testing.T, s *Server, method, path, body string, mods ...func(*http.Request)) (*httptest.ResponseRecorder, Response) {
	t.Helper()
	var r *http.Request
	if body == "" {
		r = httptest.NewRequest(method, path, nil)
	} else {
		r = httptest.NewRequest(method, path, strings.NewReader(body))
	}
	for _, mod := range mods {
		mod(r)
	}
	w := httptest.NewRecorder()
	s.ServeHTTP(w, r)
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("%s %s: Content-Type = %q, want application/json", method, path, ct)
	}
	var resp Response
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("%s %s: decoding body %q: %v", method, path, w.Body.String(), err)
	}
	return w, resp
}

// checkEnvelope asserts the invariants shared by every reply: the
// embedded status_code matches the HTTP code and the status text
// matches the code.
func checkEnvelope(t *testing.T, w *httptest.ResponseRecorder, resp Response, wantType string, wantCode int) {
	t.Helper()
	if w.Code != wantCode {
		t.Errorf("HTTP code = %d, want %d", w.Code, wantCode)
	}
	if resp.Type != wantType {
		t.Errorf("envelope type = %q, want %q", resp.Type, wantType)
	}
	if resp.StatusCode != wantCode {
		t.Errorf("envelope status_code = %d, want %d", resp.StatusCode, wantCode)
	}
	if resp.Status != http.StatusText(wantCode) {
		t.Errorf("envelope status = %q, want %q", resp.Status, http.StatusText(wantCode))
	}
}

func TestHealth(t *testing.T) {
	s, _ := newTestServer(t)
	w, resp := doJSON(t, s, "GET", "/v1/health", "")
	checkEnvelope(t, w, resp, "sync", http.StatusOK)
	result, ok := resp.Result.(map[string]any)
	if !ok || result["healthy"] != true {
		t.Errorf("health result = %v, want healthy=true", resp.Result)
	}
	// Saturation fields: the test engine runs 2 workers, default
	// queue, empty store.
	if got, _ := result["workers"].(float64); int(got) != 2 {
		t.Errorf("health workers = %v, want 2", result["workers"])
	}
	if got, _ := result["queue_capacity"].(float64); got <= 0 {
		t.Errorf("health queue_capacity = %v, want positive", result["queue_capacity"])
	}
	for _, key := range []string{"queue_depth", "store_len"} {
		if got, ok := result[key].(float64); !ok || got != 0 {
			t.Errorf("health %s = %v, want 0 on an idle engine", key, result[key])
		}
	}
}

func TestSubmitReturnsAsyncEnvelope(t *testing.T) {
	s, _ := newTestServer(t)
	w, resp := doJSON(t, s, "POST", "/v1/operations", `{"kind":"echo","params":{"x":1}}`)
	checkEnvelope(t, w, resp, "async", http.StatusAccepted)

	op, ok := resp.Result.(map[string]any)
	if !ok {
		t.Fatalf("async result = %T, want operation object", resp.Result)
	}
	id, _ := op["id"].(string)
	if id == "" {
		t.Fatal("async result has no operation id")
	}
	if loc := w.Header().Get("Location"); loc != "/v1/operations/"+id {
		t.Errorf("Location = %q, want /v1/operations/%s", loc, id)
	}
	if got := op["status"]; got != string(core.StatusQueued) {
		t.Errorf("submitted status = %v, want queued", got)
	}
}

func TestSubmitThenPollReachesDone(t *testing.T) {
	s, _ := newTestServer(t)
	_, resp := doJSON(t, s, "POST", "/v1/operations", `{"kind":"echo","params":{"msg":"hi"}}`)
	id := resp.Result.(map[string]any)["id"].(string)

	deadline := time.Now().Add(5 * time.Second)
	for {
		w, poll := doJSON(t, s, "GET", "/v1/operations/"+id, "")
		checkEnvelope(t, w, poll, "sync", http.StatusOK)
		op := poll.Result.(map[string]any)
		if status := core.Status(op["status"].(string)); status.Terminal() {
			if status != core.StatusDone {
				t.Fatalf("operation ended %s: %v", status, op["error"])
			}
			result, _ := op["result"].(map[string]any)
			if result["msg"] != "hi" {
				t.Errorf("result = %v, want params echoed back", op["result"])
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("operation %s never reached a terminal status", id)
		}
		time.Sleep(time.Millisecond)
	}
}

// batchItems extracts the per-item envelope list from a batch reply.
func batchItems(t *testing.T, resp Response) []map[string]any {
	t.Helper()
	raw, ok := resp.Result.([]any)
	if !ok {
		t.Fatalf("batch result = %T, want array of envelopes", resp.Result)
	}
	items := make([]map[string]any, len(raw))
	for i, it := range raw {
		m, ok := it.(map[string]any)
		if !ok {
			t.Fatalf("batch item %d = %T, want object", i, it)
		}
		items[i] = m
	}
	return items
}

func TestSubmitBatchReturnsPerItemEnvelopes(t *testing.T) {
	s, _ := newTestServer(t)
	// Leading whitespace must not confuse array detection.
	body := `  [{"kind":"echo","params":{"i":0}},{"kind":"echo","params":{"i":1}},{"kind":"echo","params":{"i":2}}]`
	w, resp := doJSON(t, s, "POST", "/v1/operations", body)
	checkEnvelope(t, w, resp, "async", http.StatusAccepted)
	if loc := w.Header().Get("Location"); loc != "" {
		t.Errorf("batch reply sets Location header %q, want none (per-item locations)", loc)
	}

	items := batchItems(t, resp)
	if len(items) != 3 {
		t.Fatalf("batch reply has %d items, want 3", len(items))
	}
	for i, item := range items {
		if item["type"] != "async" {
			t.Errorf("item %d type = %v, want async", i, item["type"])
		}
		if code, _ := item["status_code"].(float64); int(code) != http.StatusAccepted {
			t.Errorf("item %d status_code = %v, want 202", i, item["status_code"])
		}
		op, ok := item["result"].(map[string]any)
		if !ok {
			t.Fatalf("item %d result = %T, want operation object", i, item["result"])
		}
		id, _ := op["id"].(string)
		if id == "" {
			t.Fatalf("item %d has no operation id", i)
		}
		if item["location"] != "/v1/operations/"+id {
			t.Errorf("item %d location = %v, want /v1/operations/%s", i, item["location"], id)
		}
		if op["status"] != string(core.StatusQueued) {
			t.Errorf("item %d status = %v, want queued", i, op["status"])
		}
		// Batch order must be preserved in the reply.
		params, _ := op["params"].(map[string]any)
		if got, _ := params["i"].(float64); int(got) != i {
			t.Errorf("item %d carries params %v, want i=%d", i, params, i)
		}
	}
}

// TestSubmitBatch100Items is the acceptance criterion: one POST with a
// 100-item array returns 100 per-item envelopes in one response, and
// every operation runs to done.
func TestSubmitBatch100Items(t *testing.T) {
	s, e := newTestServer(t)
	var sb strings.Builder
	sb.WriteByte('[')
	for i := 0; i < 100; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(`{"kind":"echo"}`)
	}
	sb.WriteByte(']')

	w, resp := doJSON(t, s, "POST", "/v1/operations", sb.String())
	checkEnvelope(t, w, resp, "async", http.StatusAccepted)
	items := batchItems(t, resp)
	if len(items) != 100 {
		t.Fatalf("batch reply has %d items, want 100", len(items))
	}
	for i, item := range items {
		op := item["result"].(map[string]any)
		id, _ := op["id"].(string)
		if id == "" {
			t.Fatalf("item %d has no id", i)
		}
		if final := waitTerminal(t, e, id); final.Status != core.StatusDone {
			t.Errorf("op %d status = %s (%s), want done", i, final.Status, final.Error)
		}
	}
}

func TestSubmitBatchValidationErrorEnvelope(t *testing.T) {
	s, e := newTestServer(t)
	body := `[{"kind":"echo"},{"kind":"bogus"},{}]`
	w, resp := doJSON(t, s, "POST", "/v1/operations", body)
	checkEnvelope(t, w, resp, "error", http.StatusBadRequest)

	result, ok := resp.Result.(map[string]any)
	if !ok {
		t.Fatalf("error result = %T, want object", resp.Result)
	}
	if msg, _ := result["message"].(string); !strings.Contains(msg, "2 of 3") {
		t.Errorf("error message = %q, want batch summary mentioning 2 of 3", msg)
	}
	items, ok := result["items"].([]any)
	if !ok || len(items) != 2 {
		t.Fatalf("error items = %v, want 2 entries", result["items"])
	}
	first := items[0].(map[string]any)
	if idx, _ := first["index"].(float64); int(idx) != 1 {
		t.Errorf("first invalid index = %v, want 1", first["index"])
	}
	if msg, _ := first["message"].(string); !strings.Contains(msg, "bogus") {
		t.Errorf("first invalid message = %q, want mention of kind bogus", msg)
	}
	second := items[1].(map[string]any)
	if idx, _ := second["index"].(float64); int(idx) != 2 {
		t.Errorf("second invalid index = %v, want 2", second["index"])
	}

	// Atomic rejection: the valid first item must not have been run.
	if ops, err := e.List(engine.ListQuery{}); err != nil || len(ops) != 0 {
		t.Errorf("engine holds %d ops after rejected batch (err %v), want 0", len(ops), err)
	}
}

func TestSubmitBatchEmptyArray(t *testing.T) {
	s, _ := newTestServer(t)
	w, resp := doJSON(t, s, "POST", "/v1/operations", `[]`)
	checkEnvelope(t, w, resp, "error", http.StatusBadRequest)
}

func TestSubmitBatchMalformedArray(t *testing.T) {
	s, _ := newTestServer(t)
	w, resp := doJSON(t, s, "POST", "/v1/operations", `[{"kind":"echo"},`)
	checkEnvelope(t, w, resp, "error", http.StatusBadRequest)
}

func TestErrorEnvelopes(t *testing.T) {
	for _, tc := range []struct {
		name     string
		method   string
		path     string
		body     string
		wantCode int
	}{
		{"malformed json", "POST", "/v1/operations", `{"kind":`, http.StatusBadRequest},
		{"unknown kind", "POST", "/v1/operations", `{"kind":"nope"}`, http.StatusBadRequest},
		{"empty kind", "POST", "/v1/operations", `{}`, http.StatusBadRequest},
		{"unknown operation id", "GET", "/v1/operations/deadbeef", "", http.StatusNotFound},
		{"unknown endpoint", "GET", "/v2/everything", "", http.StatusNotFound},
		{"bad status filter", "GET", "/v1/operations?status=sideways", "", http.StatusBadRequest},
		{"wrong method", "DELETE", "/v1/operations", "", http.StatusMethodNotAllowed},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s, _ := newTestServer(t)
			w, resp := doJSON(t, s, tc.method, tc.path, tc.body)
			checkEnvelope(t, w, resp, "error", tc.wantCode)
			result, ok := resp.Result.(map[string]any)
			if !ok || result["message"] == "" {
				t.Errorf("error result = %v, want non-empty message", resp.Result)
			}
		})
	}
}

func TestWrongMethodSetsAllowHeader(t *testing.T) {
	s, _ := newTestServer(t)
	w, resp := doJSON(t, s, "DELETE", "/v1/operations", "")
	checkEnvelope(t, w, resp, "error", http.StatusMethodNotAllowed)
	if got := w.Header().Get("Allow"); got != "GET, POST" {
		t.Errorf("Allow header = %q, want %q", got, "GET, POST")
	}
}

func TestUnserializableResultFailsOnlyThatOperation(t *testing.T) {
	s, e := newTestServer(t)
	e.Register("chan", func(context.Context, *core.Operation) (any, error) {
		return make(chan int), nil
	})
	_, sub := doJSON(t, s, "POST", "/v1/operations", `{"kind":"chan"}`)
	id := sub.Result.(map[string]any)["id"].(string)
	op := waitTerminal(t, e, id)
	if op.Status != core.StatusFailed {
		t.Fatalf("op status = %s, want failed", op.Status)
	}
	if !strings.Contains(op.Error, "not serializable") {
		t.Errorf("op error = %q, want serialization failure", op.Error)
	}
	// The poisoned result must not break the list endpoint.
	w, resp := doJSON(t, s, "GET", "/v1/operations", "")
	checkEnvelope(t, w, resp, "sync", http.StatusOK)
}

func TestListFilters(t *testing.T) {
	s, e := newTestServer(t)
	e.Register("fail", func(context.Context, *core.Operation) (any, error) {
		return nil, core.ErrQueueFull // arbitrary error payload
	})
	_, okResp := doJSON(t, s, "POST", "/v1/operations", `{"kind":"echo"}`)
	_, badResp := doJSON(t, s, "POST", "/v1/operations", `{"kind":"fail"}`)
	okID := okResp.Result.(map[string]any)["id"].(string)
	badID := badResp.Result.(map[string]any)["id"].(string)

	waitTerminal(t, e, okID)
	waitTerminal(t, e, badID)

	w, resp := doJSON(t, s, "GET", "/v1/operations", "")
	checkEnvelope(t, w, resp, "sync", http.StatusOK)
	if ops := resp.Result.([]any); len(ops) != 2 {
		t.Errorf("unfiltered list has %d ops, want 2", len(ops))
	}

	_, failed := doJSON(t, s, "GET", "/v1/operations?status=failed", "")
	ops, _ := failed.Result.([]any)
	if len(ops) != 1 {
		t.Fatalf("failed list has %d ops, want 1", len(ops))
	}
	if got := ops[0].(map[string]any)["id"]; got != badID {
		t.Errorf("failed list contains %v, want %s", got, badID)
	}
}

func TestCancelQueuedOverHTTP(t *testing.T) {
	s, e := newTestServer(t)
	// One extra blocking kind and a saturated worker pool keep the
	// target operation queued while we cancel it.
	release := make(chan struct{})
	defer close(release)
	e.Register("block", func(context.Context, *core.Operation) (any, error) {
		<-release
		return nil, nil
	})
	for i := 0; i < 2; i++ { // the test engine has 2 workers
		if _, resp := doJSON(t, s, "POST", "/v1/operations", `{"kind":"block"}`); resp.Type != "async" {
			t.Fatalf("blocker %d not accepted: %+v", i, resp)
		}
	}
	_, sub := doJSON(t, s, "POST", "/v1/operations", `{"kind":"echo"}`)
	id := sub.Result.(map[string]any)["id"].(string)

	w, resp := doJSON(t, s, "DELETE", "/v1/operations/"+id, "")
	checkEnvelope(t, w, resp, "async", http.StatusAccepted)
	if loc := w.Header().Get("Location"); loc != "/v1/operations/"+id {
		t.Errorf("Location = %q, want the poll URL", loc)
	}
	op := resp.Result.(map[string]any)
	if op["status"] != string(core.StatusCancelled) {
		t.Errorf("cancelled queued op status = %v, want cancelled immediately", op["status"])
	}
	if op["cancelled_at"] == nil {
		t.Error("cancelled op reply has no cancelled_at")
	}

	// A second DELETE hits an already-terminal operation: 409.
	w, resp = doJSON(t, s, "DELETE", "/v1/operations/"+id, "")
	checkEnvelope(t, w, resp, "error", http.StatusConflict)
}

func TestCancelRunningOverHTTP(t *testing.T) {
	s, e := newTestServer(t)
	started := make(chan struct{})
	e.Register("hang", func(ctx context.Context, _ *core.Operation) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	_, sub := doJSON(t, s, "POST", "/v1/operations", `{"kind":"hang"}`)
	id := sub.Result.(map[string]any)["id"].(string)
	<-started

	w, resp := doJSON(t, s, "DELETE", "/v1/operations/"+id, "")
	checkEnvelope(t, w, resp, "async", http.StatusAccepted)
	if final := waitTerminal(t, e, id); final.Status != core.StatusCancelled {
		t.Errorf("final status = %s (%s), want cancelled", final.Status, final.Error)
	}
}

func TestCancelUnknownIs404(t *testing.T) {
	s, _ := newTestServer(t)
	w, resp := doJSON(t, s, "DELETE", "/v1/operations/deadbeef", "")
	checkEnvelope(t, w, resp, "error", http.StatusNotFound)
}

func TestListLimit(t *testing.T) {
	s, e := newTestServer(t)
	var ids []string
	for i := 0; i < 5; i++ {
		_, resp := doJSON(t, s, "POST", "/v1/operations", `{"kind":"echo"}`)
		ids = append(ids, resp.Result.(map[string]any)["id"].(string))
	}
	for _, id := range ids {
		waitTerminal(t, e, id)
	}

	w, resp := doJSON(t, s, "GET", "/v1/operations?limit=2", "")
	checkEnvelope(t, w, resp, "sync", http.StatusOK)
	if ops := resp.Result.([]any); len(ops) != 2 {
		t.Errorf("limit=2 returned %d ops, want 2", len(ops))
	}
	// A limit beyond the store size returns everything.
	_, resp = doJSON(t, s, "GET", "/v1/operations?limit=100", "")
	if ops := resp.Result.([]any); len(ops) != 5 {
		t.Errorf("limit=100 returned %d ops, want all 5", len(ops))
	}
	// Limit composes with the status filter.
	_, resp = doJSON(t, s, "GET", "/v1/operations?status=done&limit=3", "")
	if ops := resp.Result.([]any); len(ops) != 3 {
		t.Errorf("status=done&limit=3 returned %d ops, want 3", len(ops))
	}

	for _, bad := range []string{"0", "-1", "x", "1.5"} {
		w, resp := doJSON(t, s, "GET", "/v1/operations?limit="+bad, "")
		checkEnvelope(t, w, resp, "error", http.StatusBadRequest)
	}
}

func TestListCursorPagination(t *testing.T) {
	s, e := newTestServer(t)
	var ids []string
	for i := 0; i < 5; i++ {
		_, resp := doJSON(t, s, "POST", "/v1/operations", `{"kind":"echo"}`)
		ids = append(ids, resp.Result.(map[string]any)["id"].(string))
	}
	for _, id := range ids {
		waitTerminal(t, e, id)
	}

	// Page through the whole store two at a time; the pages must chain
	// via the last element's id, never repeat an op, and cover all 5.
	seen := map[string]bool{}
	cursor := ""
	pages := 0
	for {
		url := "/v1/operations?limit=2"
		if cursor != "" {
			url += "&cursor=" + cursor
		}
		w, resp := doJSON(t, s, "GET", url, "")
		checkEnvelope(t, w, resp, "sync", http.StatusOK)
		ops, _ := resp.Result.([]any)
		if len(ops) == 0 {
			break
		}
		for _, raw := range ops {
			id := raw.(map[string]any)["id"].(string)
			if seen[id] {
				t.Fatalf("cursor pages repeated op %s", id)
			}
			seen[id] = true
		}
		cursor = ops[len(ops)-1].(map[string]any)["id"].(string)
		if pages++; pages > 10 {
			t.Fatal("cursor walk never terminated")
		}
	}
	if len(seen) != 5 {
		t.Errorf("cursor walk saw %d ops, want 5", len(seen))
	}

	// Cursor composes with the status filter.
	_, resp := doJSON(t, s, "GET", "/v1/operations?status=done&cursor="+ids[4]+"&limit=10", "")
	if ops, _ := resp.Result.([]any); len(ops) != 4 {
		t.Errorf("status=done after newest cursor returned %d ops, want the 4 older ones", len(ops))
	}
}

func TestListCursorMalformedIs400(t *testing.T) {
	s, _ := newTestServer(t)
	for _, bad := range []string{
		"notanid",
		"UPPERCASEUPPERCASEUPPERCASEUPPER",
		strings.Repeat("a", 31),
		strings.Repeat("a", 33),
		strings.Repeat("g", 32), // right length, not hex
	} {
		w, resp := doJSON(t, s, "GET", "/v1/operations?cursor="+bad, "")
		checkEnvelope(t, w, resp, "error", http.StatusBadRequest)
	}
}

func TestListCursorEvictedYieldsEmptyPage(t *testing.T) {
	// A well-formed cursor whose operation the janitor already evicted
	// is not an error: the client fell behind retention and gets an
	// empty page telling it to restart from the top.
	var clockMu sync.Mutex
	now := time.Unix(1000, 0)
	clock := func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		return now
	}
	e := engine.New(engine.Config{Workers: 1, Clock: clock, OpTTL: time.Minute, GCInterval: time.Hour})
	t.Cleanup(func() { e.Shutdown(context.Background()) })
	e.Register("echo", func(_ context.Context, op *core.Operation) (any, error) {
		return op.Params, nil
	})
	s := New(e)

	_, resp := doJSON(t, s, "POST", "/v1/operations", `{"kind":"echo"}`)
	id := resp.Result.(map[string]any)["id"].(string)
	waitTerminal(t, e, id)
	clockMu.Lock()
	now = now.Add(2 * time.Minute)
	clockMu.Unlock()
	if n := e.GC(); n != 1 {
		t.Fatalf("GC evicted %d ops, want 1", n)
	}

	w, resp := doJSON(t, s, "GET", "/v1/operations?cursor="+id, "")
	checkEnvelope(t, w, resp, "sync", http.StatusOK)
	if ops, _ := resp.Result.([]any); len(ops) != 0 {
		t.Errorf("evicted cursor returned %d ops, want empty page", len(ops))
	}
}

func TestWrongMethodOnOperationSetsAllowHeader(t *testing.T) {
	s, _ := newTestServer(t)
	w, resp := doJSON(t, s, "PATCH", "/v1/operations/abc", "")
	checkEnvelope(t, w, resp, "error", http.StatusMethodNotAllowed)
	if got := w.Header().Get("Allow"); got != "GET, DELETE" {
		t.Errorf("Allow header = %q, want %q", got, "GET, DELETE")
	}
}

func TestSubmitAfterShutdownIs503(t *testing.T) {
	s, e := newTestServer(t)
	if err := e.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	w, resp := doJSON(t, s, "POST", "/v1/operations", `{"kind":"echo"}`)
	checkEnvelope(t, w, resp, "error", http.StatusServiceUnavailable)
}

func TestSubmitBodyTooLarge(t *testing.T) {
	s, _ := newTestServer(t)
	big := `{"kind":"echo","params":{"blob":"` + strings.Repeat("a", maxBodyBytes) + `"}}`
	w, resp := doJSON(t, s, "POST", "/v1/operations", big)
	checkEnvelope(t, w, resp, "error", http.StatusRequestEntityTooLarge)
}
