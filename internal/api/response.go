package api

import (
	"encoding/json"
	"log"
	"net/http"

	"opdaemon/internal/core"
)

// Response is the JSON envelope wrapping every API reply, following
// the snapd REST convention: type is "sync" for immediate results,
// "async" for accepted background operations, and "error" for
// failures. Status is the HTTP status text and StatusCode mirrors the
// HTTP code so clients can log the body alone.
type Response struct {
	Type       string `json:"type"`
	Status     string `json:"status"`
	StatusCode int    `json:"status_code"`
	Result     any    `json:"result"`
}

const (
	typeSync  = "sync"
	typeAsync = "async"
	typeError = "error"
)

// writeJSON marshals the envelope and replies with it plus any extra
// headers. Headers are only applied after a successful marshal so the
// fallback error response doesn't carry headers describing the reply
// that failed (e.g. a Location for an async result).
func writeJSON(w http.ResponseWriter, code int, resp *Response, headers map[string]string) {
	body, err := json.Marshal(resp)
	if err != nil {
		// A handler produced a result json cannot represent; keep
		// the envelope contract with a 500 error instead of sending
		// a success header with an empty body. Error envelopes only
		// contain strings, so this cannot recurse.
		log.Printf("api: encoding %s response: %v", resp.Type, err)
		writeError(w, http.StatusInternalServerError, "response not serializable")
		return
	}
	for k, v := range headers {
		w.Header().Set(k, v)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if _, err := w.Write(append(body, '\n')); err != nil {
		log.Printf("api: writing response: %v", err)
	}
}

// writeSync replies with a 200-style synchronous result envelope.
func writeSync(w http.ResponseWriter, code int, result any) {
	writeJSON(w, code, &Response{
		Type:       typeSync,
		Status:     http.StatusText(code),
		StatusCode: code,
		Result:     result,
	}, nil)
}

// writeAsync replies 202 Accepted with the operation snapshot and sets
// the Location header to the operation's poll URL.
func writeAsync(w http.ResponseWriter, location string, result any) {
	writeJSON(w, http.StatusAccepted, &Response{
		Type:       typeAsync,
		Status:     http.StatusText(http.StatusAccepted),
		StatusCode: http.StatusAccepted,
		Result:     result,
	}, map[string]string{"Location": location})
}

// batchItemEnvelope mirrors the top-level async envelope for one
// element of a batch submission. It carries a per-item location
// because a single Location header cannot point at many operations.
type batchItemEnvelope struct {
	Type       string          `json:"type"`
	Status     string          `json:"status"`
	StatusCode int             `json:"status_code"`
	Location   string          `json:"location"`
	Result     *core.Operation `json:"result"`
}

// writeBatchAsync replies 202 Accepted with one async envelope per
// accepted operation, in batch order. No Location header is set; each
// item embeds its own poll URL.
func writeBatchAsync(w http.ResponseWriter, ops []*core.Operation) {
	items := make([]batchItemEnvelope, len(ops))
	for i, op := range ops {
		items[i] = batchItemEnvelope{
			Type:       typeAsync,
			Status:     http.StatusText(http.StatusAccepted),
			StatusCode: http.StatusAccepted,
			Location:   resourcePath(op),
			Result:     op,
		}
	}
	writeJSON(w, http.StatusAccepted, &Response{
		Type:       typeAsync,
		Status:     http.StatusText(http.StatusAccepted),
		StatusCode: http.StatusAccepted,
		Result:     items,
	}, nil)
}

// errorResult is the result payload of an error envelope.
type errorResult struct {
	Message string `json:"message"`
}

// batchErrorResult is the result payload when a batch submission fails
// validation: a summary message plus every invalid item, so the client
// can repair the whole batch in one round trip.
type batchErrorResult struct {
	Message string           `json:"message"`
	Items   []batchItemError `json:"items"`
}

// batchItemError names one invalid batch element by its zero-based
// position in the submitted array.
type batchItemError struct {
	Index   int    `json:"index"`
	Message string `json:"message"`
}

// writeBatchError replies 400 with an error envelope listing every
// invalid item of a rejected batch.
func writeBatchError(w http.ResponseWriter, berr *core.BatchError) {
	items := make([]batchItemError, len(berr.Items))
	for i, it := range berr.Items {
		items[i] = batchItemError{Index: it.Index, Message: it.Err.Error()}
	}
	writeJSON(w, http.StatusBadRequest, &Response{
		Type:       typeError,
		Status:     http.StatusText(http.StatusBadRequest),
		StatusCode: http.StatusBadRequest,
		Result:     batchErrorResult{Message: berr.Error(), Items: items},
	}, nil)
}

// writeError replies with an error envelope carrying a client-safe
// message.
func writeError(w http.ResponseWriter, code int, message string) {
	writeErrorHeaders(w, code, message, nil)
}

// writeErrorHeaders is writeError plus extra response headers, for
// error replies that carry metadata (429's Retry-After).
func writeErrorHeaders(w http.ResponseWriter, code int, message string, headers map[string]string) {
	writeJSON(w, code, &Response{
		Type:       typeError,
		Status:     http.StatusText(code),
		StatusCode: code,
		Result:     errorResult{Message: message},
	}, headers)
}
