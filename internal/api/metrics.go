package api

// GET /v1/metrics: Engine.Stats rendered in the Prometheus text
// exposition format (version 0.0.4) so a standard scrape target works
// against the daemon with no metrics stack of its own — the first
// slice of the ROADMAP's observability item. Everything here is a
// gauge over the same snapshot /v1/health serves; counters with
// process lifetimes (per-kind latency histograms) come later.
//
// No client library: the text format is a line protocol simple enough
// that hand-rendering it is smaller than a dependency, and the daemon
// takes no new dependencies for it.

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// metrics serves the Prometheus scrape.
func (s *Server) metrics(w http.ResponseWriter, _ *http.Request) {
	st := s.engine.Stats()
	var b strings.Builder
	b.Grow(2048)

	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n",
			name, help, name, name, formatMetricValue(v))
	}

	gauge("opdaemon_workers", "Configured executor count.", float64(st.Workers))
	gauge("opdaemon_queue_depth", "Accepted operations no worker has picked up yet.", float64(st.QueueDepth))
	gauge("opdaemon_queue_capacity", "Configured queue bound.", float64(st.QueueCapacity))
	gauge("opdaemon_store_operations", "Operations currently retained in the store.", float64(st.StoreLen))
	gauge("opdaemon_watch_waiters", "Long-poll waiters registered in the broadcast hub.", float64(st.WatchWaiters))
	gauge("opdaemon_notice_last_seq", "Newest sequence number assigned in the notices feed.", float64(st.LastNotice))
	gauge("opdaemon_shedding", "1 when admission control is refusing submissions.", boolMetric(st.Shedding))
	gauge("opdaemon_shed_at", "Queue depth at which shedding starts.", float64(st.ShedAt))
	gauge("opdaemon_drain_per_sec", "Observed dequeue rate over the trailing window.", float64(st.DrainPerSec))

	// Per-band queue depth, one labelled series per priority band.
	// Label values are the fixed band names, but escape anyway —
	// rendering must never produce an unparseable exposition.
	fmt.Fprintf(&b, "# HELP opdaemon_queue_band_depth Scheduled operations per priority band.\n# TYPE opdaemon_queue_band_depth gauge\n")
	for _, band := range sortedKeys(st.QueueBands) {
		fmt.Fprintf(&b, "opdaemon_queue_band_depth{band=%s} %d\n",
			quoteLabelValue(band), st.QueueBands[band])
	}
	gauge("opdaemon_queue_clients", "Distinct clients with scheduled operations.", float64(len(st.QueueClients)))

	gauge("opdaemon_durable", "1 when the store persists state across restarts (WAL backend).", boolMetric(st.Durable))
	if st.Durable {
		gauge("opdaemon_wal_segments", "Live WAL segment files.", float64(st.WALSegments))
		gauge("opdaemon_wal_batch_p50", "Median records per WAL group commit (fsync amortisation factor).", st.WALBatchP50)
		gauge("opdaemon_wal_fsyncs_per_sec", "Observed WAL fsync rate over the trailing window.", st.FsyncsPerSec)
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(b.String()))
}

// formatMetricValue renders a float the way Prometheus expects:
// integral values without an exponent, everything else in Go's
// shortest form.
func formatMetricValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func boolMetric(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// quoteLabelValue escapes a label value per the exposition format:
// backslash, double quote, and newline.
func quoteLabelValue(v string) string {
	var b strings.Builder
	b.WriteByte('"')
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// sortedKeys returns the map's keys in sorted order so the exposition
// is deterministic scrape to scrape.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
