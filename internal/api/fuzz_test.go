package api

// Native fuzz targets for the cursor-bearing query parsers — the two
// places a hostile client controls a value that is parsed into an
// internal position (the notices `after=` sequence cursor and the List
// `cursor=` operation ID). The contract under fuzz: the handler never
// panics, and every rejected value is a clean 400 envelope — nothing
// leaks through as a 500 or an empty-but-200 lie for garbage input.
//
// CI runs these for 10s each via `make fuzz-smoke`; longer local runs:
//
//	go test -fuzz FuzzNoticesCursor -fuzztime 5m ./internal/api/
//	go test -fuzz FuzzListQueryCursor -fuzztime 5m ./internal/api/

import (
	"context"
	"net/http"
	"net/url"
	"testing"

	"opdaemon/internal/core"
	"opdaemon/internal/engine"
)

func FuzzNoticesCursor(f *testing.F) {
	e := engine.New(engine.Config{Workers: 1})
	f.Cleanup(func() { e.Shutdown(context.Background()) })
	s := New(e)

	for _, seed := range []string{
		"", "0", "1", "42", "-1", "+1", " 1", "1 ",
		"18446744073709551615", // MaxUint64: valid, must not wrap
		"18446744073709551616", // MaxUint64+1: overflow, must 400
		"0x10", "1e9", "banana", "999999999999999999999999999999",
		"\x00", "après", "%", "１２３", // multibyte digits must not pass
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, after string) {
		path := "/v1/notices?after=" + url.QueryEscape(after)
		w := serve(s, "GET", path, "")
		if w.Code != http.StatusOK && w.Code != http.StatusBadRequest {
			t.Fatalf("after=%q: status %d, want 200 or 400; body %s", after, w.Code, w.Body.String())
		}
	})
}

func FuzzListQueryCursor(f *testing.F) {
	e := engine.New(engine.Config{Workers: 1})
	f.Cleanup(func() { e.Shutdown(context.Background()) })
	s := New(e)
	// Real operations so a fuzzer that mutates its way to a well-formed
	// 32-hex cursor resolves against live index state.
	seeded := seedStoreThroughEngine(e, 8)

	for _, seed := range []string{
		"", "deadbeef", seeded, "0", "../../etc/passwd",
		"00000000000000000000000000000000",
		"ffffffffffffffffffffffffffffffff",
		"FFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFF",  // uppercase: not a valid ID
		"0000000000000000000000000000000",   // 31 chars
		"000000000000000000000000000000000", // 33 chars
		"\x00\x01\x02", "％００",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, cursor string) {
		path := "/v1/operations?limit=5&cursor=" + url.QueryEscape(cursor)
		w := serve(s, "GET", path, "")
		if w.Code != http.StatusOK && w.Code != http.StatusBadRequest {
			t.Fatalf("cursor=%q: status %d, want 200 or 400; body %s", cursor, w.Code, w.Body.String())
		}
	})
}

// seedStoreThroughEngine registers a noop kind, runs n operations to
// completion, and returns one of their IDs for the seed corpus.
func seedStoreThroughEngine(e *engine.Engine, n int) string {
	e.Register("noop", func(context.Context, *core.Operation) (any, error) { return nil, nil })
	var id string
	for i := 0; i < n; i++ {
		op, err := e.Submit(context.Background(), "noop", nil)
		if err != nil {
			panic(err)
		}
		id = op.ID
	}
	return id
}
