package api

// Fairness benchmark for the scheduler layer, run as part of
// `make bench-e2e`: one greedy client keeps the queue buried while a
// victim client submits through the full API path and waits for its
// operation to finish. The reported victim-p99-ms metric is the
// fairness headline BENCH_8.json tracks — under the old FIFO dispatch
// the victim waited behind the whole greedy backlog; under per-client
// DRR its tail is bounded by the round-robin share.

import (
	"context"
	"encoding/json"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"opdaemon/internal/core"
	"opdaemon/internal/engine"
)

func BenchmarkAPIFairnessGreedyMix(b *testing.B) {
	e := engine.New(engine.Config{Workers: 2, QueueDepth: 1 << 16})
	b.Cleanup(func() { e.Shutdown(context.Background()) })
	e.Register("spin", func(context.Context, *core.Operation) (any, error) {
		time.Sleep(50 * time.Microsecond)
		return nil, nil
	})
	s := New(e)

	// The greedy feeder keeps a deep backlog queued under one client
	// key for the whole measurement, topping it up as workers drain it.
	var stopped atomic.Bool
	done := make(chan struct{})
	b.Cleanup(func() { stopped.Store(true); <-done })
	go func() {
		defer close(done)
		body := `[` + strings.Repeat(`{"kind":"spin"},`, 255) + `{"kind":"spin"}]`
		for !stopped.Load() {
			if e.Stats().QueueClients["greedy"] > 512 {
				time.Sleep(time.Millisecond)
				continue
			}
			w := serve(s, "POST", "/v1/operations", body, withHeader("X-Client-Id", "greedy"))
			if w.Code != 202 {
				time.Sleep(time.Millisecond)
			}
		}
	}()
	// Let the backlog build before measuring.
	for e.Stats().QueueClients["greedy"] < 256 {
		time.Sleep(time.Millisecond)
	}

	latencies := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		begin := time.Now()
		w := serve(s, "POST", "/v1/operations", `{"kind":"spin"}`, withHeader("X-Client-Id", "victim"))
		if w.Code != 202 {
			b.Fatalf("victim submit returned %d: %s", w.Code, w.Body.String())
		}
		var reply struct {
			Result struct {
				ID string `json:"id"`
			} `json:"result"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &reply); err != nil {
			b.Fatal(err)
		}
		for {
			op, err := e.Get(reply.Result.ID)
			if err != nil {
				b.Fatal(err)
			}
			if op.Status.Terminal() {
				break
			}
			time.Sleep(50 * time.Microsecond)
		}
		latencies = append(latencies, time.Since(begin))
	}
	b.StopTimer()

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	rank := int(0.99*float64(len(latencies))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(latencies) {
		rank = len(latencies) - 1
	}
	b.ReportMetric(float64(latencies[rank])/float64(time.Millisecond), "victim-p99-ms")
	b.ReportMetric(float64(latencies[len(latencies)/2])/float64(time.Millisecond), "victim-p50-ms")
}
