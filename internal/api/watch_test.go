package api

// E2E tests for the push read path: ?wait=true long-polls on the
// operation resource and the /v1/notices feed. Long-poll requests run
// through the real handler stack in goroutines (ServeHTTP blocks for
// the duration of the wait), with results decoded back on the test
// goroutine — t.Fatal must not fire off the main goroutine.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"opdaemon/internal/core"
	"opdaemon/internal/engine"
)

// newBlockServer wires a server with a "block" kind whose handler
// parks until the returned release channel is closed (or the
// operation's context is cancelled), so tests control exactly when the
// watched transition happens.
func newBlockServer(t *testing.T) (*Server, *engine.Engine, chan struct{}) {
	t.Helper()
	e := engine.New(engine.Config{Workers: 2})
	t.Cleanup(func() { e.Shutdown(context.Background()) })
	release := make(chan struct{})
	e.Register("block", func(ctx context.Context, _ *core.Operation) (any, error) {
		select {
		case <-release:
			return "released", nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	e.Register("echo", func(_ context.Context, op *core.Operation) (any, error) {
		return op.Params, nil
	})
	return New(e), e, release
}

// submitAndAwaitRunning submits one kind op and waits for its handler
// to be running, returning the operation ID.
func submitAndAwaitRunning(t *testing.T, s *Server, e *engine.Engine, kind string) string {
	t.Helper()
	_, resp := doJSON(t, s, "POST", "/v1/operations", `{"kind":"`+kind+`"}`)
	id := resp.Result.(map[string]any)["id"].(string)
	deadline := time.Now().Add(5 * time.Second)
	for {
		op, err := e.Get(id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		if op.Status == core.StatusRunning {
			return id
		}
		if time.Now().After(deadline) {
			t.Fatalf("op %s never started (status %s)", id, op.Status)
		}
		time.Sleep(time.Millisecond)
	}
}

// serveAsync runs one request through the handler stack on its own
// goroutine and delivers the recorder once the handler returns.
func serveAsync(s *Server, r *http.Request) <-chan *httptest.ResponseRecorder {
	done := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		w := httptest.NewRecorder()
		s.ServeHTTP(w, r)
		done <- w
	}()
	return done
}

func decodeResponse(t *testing.T, w *httptest.ResponseRecorder) Response {
	t.Helper()
	var resp Response
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding body %q: %v", w.Body.String(), err)
	}
	return resp
}

func TestGetWaitReturnsOnTransition(t *testing.T) {
	s, e, release := newBlockServer(t)
	id := submitAndAwaitRunning(t, s, e, "block")

	r := httptest.NewRequest("GET", "/v1/operations/"+id+"?wait=true&timeout=5s", nil)
	done := serveAsync(s, r)
	// Give the long-poll a moment to actually block, then let the
	// handler finish; the wait must return the terminal snapshot, not
	// the running one it subscribed under.
	time.Sleep(5 * time.Millisecond)
	close(release)

	w := <-done
	resp := decodeResponse(t, w)
	checkEnvelope(t, w, resp, "sync", http.StatusOK)
	op := resp.Result.(map[string]any)
	if op["status"] != string(core.StatusDone) {
		t.Fatalf("long-poll woke with status %v, want done", op["status"])
	}
	if n := e.Stats().WatchWaiters; n != 0 {
		t.Errorf("waiters after wake = %d, want 0", n)
	}
}

func TestGetWaitTerminalReturnsImmediately(t *testing.T) {
	s, e := newTestServer(t)
	_, resp := doJSON(t, s, "POST", "/v1/operations", `{"kind":"echo"}`)
	id := resp.Result.(map[string]any)["id"].(string)
	waitTerminal(t, e, id)

	// A generous timeout that must NOT be consumed: terminal states
	// short-circuit the wait.
	start := time.Now()
	w, got := doJSON(t, s, "GET", "/v1/operations/"+id+"?wait=true&timeout=30s", "")
	checkEnvelope(t, w, got, "sync", http.StatusOK)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("terminal wait took %v, want immediate return", elapsed)
	}
	if st := got.Result.(map[string]any)["status"]; st != string(core.StatusDone) {
		t.Fatalf("status = %v, want done", st)
	}
}

func TestGetWaitTimeoutReturnsCurrentSnapshot(t *testing.T) {
	s, e, release := newBlockServer(t)
	defer close(release)
	id := submitAndAwaitRunning(t, s, e, "block")

	w, resp := doJSON(t, s, "GET", "/v1/operations/"+id+"?wait=true&timeout=50ms", "")
	checkEnvelope(t, w, resp, "sync", http.StatusOK)
	op := resp.Result.(map[string]any)
	if op["status"] != string(core.StatusRunning) {
		t.Fatalf("timed-out wait returned status %v, want the unchanged running snapshot", op["status"])
	}
	if n := e.Stats().WatchWaiters; n != 0 {
		t.Errorf("waiters after timeout = %d, want 0", n)
	}
}

func TestGetWaitClientDisconnectFreesWaiter(t *testing.T) {
	s, e, release := newBlockServer(t)
	defer close(release)
	id := submitAndAwaitRunning(t, s, e, "block")

	ctx, cancel := context.WithCancel(context.Background())
	r := httptest.NewRequest("GET", "/v1/operations/"+id+"?wait=true&timeout=30s", nil).WithContext(ctx)
	done := serveAsync(s, r)

	// Wait for the long-poll to register its waiter, then yank the
	// client. The handler must unwind promptly and leave the hub empty.
	deadline := time.Now().Add(5 * time.Second)
	for e.Stats().WatchWaiters == 0 {
		if time.Now().After(deadline) {
			t.Fatal("long-poll never registered a waiter")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	w := <-done
	if n := e.Stats().WatchWaiters; n != 0 {
		t.Fatalf("waiters after disconnect = %d, want 0", n)
	}
	// Nothing was written: the client is gone, there is nobody to
	// answer. (The recorder's zero body is the observable proxy.)
	if w.Body.Len() != 0 {
		t.Errorf("disconnected long-poll wrote a body: %q", w.Body.String())
	}
}

func TestGetWaitUnknownIDIs404(t *testing.T) {
	s, _ := newTestServer(t)
	w, resp := doJSON(t, s, "GET", "/v1/operations/00000000000000000000000000000000?wait=true", "")
	checkEnvelope(t, w, resp, "error", http.StatusNotFound)
}

func TestGetWaitParamValidation(t *testing.T) {
	s, e := newTestServer(t)
	_, resp := doJSON(t, s, "POST", "/v1/operations", `{"kind":"echo"}`)
	id := resp.Result.(map[string]any)["id"].(string)
	waitTerminal(t, e, id)

	for _, tc := range []struct {
		name, query string
	}{
		{"BadWait", "?wait=maybe"},
		{"BadTimeout", "?wait=true&timeout=banana"},
		{"NegativeTimeout", "?wait=true&timeout=-5s"},
		{"ZeroTimeout", "?wait=true&timeout=0s"},
		{"BareNumberTimeout", "?wait=true&timeout=30"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			w, resp := doJSON(t, s, "GET", "/v1/operations/"+id+tc.query, "")
			checkEnvelope(t, w, resp, "error", http.StatusBadRequest)
		})
	}

	// wait=false and wait=0 are the plain GET.
	for _, q := range []string{"?wait=false", "?wait=0", ""} {
		w, resp := doJSON(t, s, "GET", "/v1/operations/"+id+q, "")
		checkEnvelope(t, w, resp, "sync", http.StatusOK)
	}
}

func TestGetWaitTimeoutClampedToMaxWait(t *testing.T) {
	// A server configured with a tiny max wait clamps a huge client
	// timeout instead of rejecting it: the request returns within the
	// server's bound with the current snapshot.
	e := engine.New(engine.Config{Workers: 1})
	t.Cleanup(func() { e.Shutdown(context.Background()) })
	release := make(chan struct{})
	defer close(release)
	e.Register("block", func(ctx context.Context, _ *core.Operation) (any, error) {
		select {
		case <-release:
			return nil, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	s := New(e, WithMaxWait(50*time.Millisecond))
	id := submitAndAwaitRunning(t, s, e, "block")

	start := time.Now()
	w, resp := doJSON(t, s, "GET", "/v1/operations/"+id+"?wait=true&timeout=1h", "")
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("clamped wait took %v, want ~50ms", elapsed)
	}
	checkEnvelope(t, w, resp, "sync", http.StatusOK)
}

func TestNoticesFeedEndToEnd(t *testing.T) {
	s, e := newTestServer(t)

	// Fresh feed: an empty JSON array, not null.
	w, resp := doJSON(t, s, "GET", "/v1/notices", "")
	checkEnvelope(t, w, resp, "sync", http.StatusOK)
	if ns, ok := resp.Result.([]any); !ok || len(ns) != 0 {
		t.Fatalf("fresh feed = %v (%T), want []", resp.Result, resp.Result)
	}

	_, resp = doJSON(t, s, "POST", "/v1/operations", `{"kind":"echo"}`)
	id := resp.Result.(map[string]any)["id"].(string)
	waitTerminal(t, e, id)

	// The full lifecycle is in the feed: queued, running, done.
	_, resp = doJSON(t, s, "GET", "/v1/notices", "")
	ns := resp.Result.([]any)
	if len(ns) != 3 {
		t.Fatalf("feed has %d notices, want 3 (queued, running, done)", len(ns))
	}
	var lastSeq float64
	for i, raw := range ns {
		n := raw.(map[string]any)
		if n["op_id"] != id {
			t.Errorf("notice %d op_id = %v, want %s", i, n["op_id"], id)
		}
		seq := n["seq"].(float64)
		if seq <= lastSeq {
			t.Errorf("notice %d seq = %v, not increasing past %v", i, seq, lastSeq)
		}
		lastSeq = seq
	}

	// Cursor: after the second notice only the third remains.
	second := int(ns[1].(map[string]any)["seq"].(float64))
	_, resp = doJSON(t, s, "GET", "/v1/notices?after="+strconv.Itoa(second), "")
	if page := resp.Result.([]any); len(page) != 1 ||
		page[0].(map[string]any)["status"] != string(core.StatusDone) {
		t.Fatalf("after=%d page = %v, want just the done notice", second, resp.Result)
	}

	// Status filter keeps only the terminal record.
	_, resp = doJSON(t, s, "GET", "/v1/notices?status=done", "")
	if page := resp.Result.([]any); len(page) != 1 {
		t.Fatalf("status=done page = %v, want one notice", resp.Result)
	}
}

func TestNoticesLongPollWakesOnActivity(t *testing.T) {
	s, e := newTestServer(t)
	after := e.Stats().LastNotice

	r := httptest.NewRequest("GET", "/v1/notices?wait=true&timeout=5s&after="+strconv.FormatUint(after, 10), nil)
	done := serveAsync(s, r)
	time.Sleep(5 * time.Millisecond)
	_, resp := doJSON(t, s, "POST", "/v1/operations", `{"kind":"echo"}`)
	id := resp.Result.(map[string]any)["id"].(string)

	w := <-done
	got := decodeResponse(t, w)
	checkEnvelope(t, w, got, "sync", http.StatusOK)
	ns := got.Result.([]any)
	if len(ns) == 0 {
		t.Fatal("long-poll woke with an empty page")
	}
	if ns[0].(map[string]any)["op_id"] != id {
		t.Fatalf("first notice = %v, want op %s", ns[0], id)
	}
}

func TestNoticesLongPollTimeoutReturnsEmptyPage(t *testing.T) {
	s, e := newTestServer(t)
	after := e.Stats().LastNotice
	w, resp := doJSON(t, s, "GET", "/v1/notices?wait=true&timeout=50ms&after="+strconv.FormatUint(after, 10), "")
	checkEnvelope(t, w, resp, "sync", http.StatusOK)
	if ns, ok := resp.Result.([]any); !ok || len(ns) != 0 {
		t.Fatalf("timed-out feed poll = %v, want []", resp.Result)
	}
}

func TestNoticesParamValidation(t *testing.T) {
	s, _ := newTestServer(t)
	for _, tc := range []struct {
		name, query string
	}{
		{"BadAfter", "?after=banana"},
		{"NegativeAfter", "?after=-1"},
		{"OverflowAfter", "?after=18446744073709551616"},
		{"BadStatus", "?status=exploded"},
		{"BadLimit", "?limit=0"},
		{"BadWait", "?wait=yes"},
		{"BadTimeout", "?wait=true&timeout=soon"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			w, resp := doJSON(t, s, "GET", "/v1/notices"+tc.query, "")
			checkEnvelope(t, w, resp, "error", http.StatusBadRequest)
		})
	}
	// Wrong verb on the feed is a 405, same contract as the other
	// routes.
	w, resp := doJSON(t, s, "POST", "/v1/notices", `{}`)
	checkEnvelope(t, w, resp, "error", http.StatusMethodNotAllowed)
}

func TestHealthReportsWatchFields(t *testing.T) {
	s, e := newTestServer(t)
	_, resp := doJSON(t, s, "POST", "/v1/operations", `{"kind":"echo"}`)
	id := resp.Result.(map[string]any)["id"].(string)
	waitTerminal(t, e, id)

	_, resp = doJSON(t, s, "GET", "/v1/health", "")
	result := resp.Result.(map[string]any)
	if got, ok := result["watch_waiters"].(float64); !ok || got != 0 {
		t.Errorf("health watch_waiters = %v, want 0", result["watch_waiters"])
	}
	if got, ok := result["last_notice"].(float64); !ok || got < 3 {
		t.Errorf("health last_notice = %v, want >= 3 after one lifecycle", result["last_notice"])
	}
}
