package api

// The push read path over HTTP: ?wait=true long-polls on
// GET /v1/operations/{id}, and GET /v1/notices serves the cursor-based
// state-transition feed. Both block server-side in the engine's
// broadcast hub / notices ring and return on state change, timeout
// (200 with the current snapshot — a timeout is a normal "nothing
// happened yet", not an error), or client disconnect (r.Context();
// nothing is written, the connection is already gone).

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"opdaemon/internal/core"
	"opdaemon/internal/engine"
)

const (
	// defaultWait is the long-poll timeout when ?wait=true is given
	// without ?timeout= (clamped to the server's max wait).
	defaultWait = 30 * time.Second
	// defaultMaxWait bounds client-requested long-poll timeouts unless
	// overridden with WithMaxWait; longer requests are clamped, not
	// rejected, so clients need not know the server's bound.
	defaultMaxWait = 60 * time.Second
)

// Option tunes a Server.
type Option func(*Server)

// WithMaxWait bounds long-poll waits: client timeouts above d are
// clamped to d. d <= 0 keeps the default (60s).
func WithMaxWait(d time.Duration) Option {
	return func(s *Server) {
		if d > 0 {
			s.maxWait = d
		}
	}
}

// waitParams parses the shared long-poll query parameters. On a
// malformed value it writes the 400 envelope and reports ok=false.
// ?timeout= is parsed (and validated) even without ?wait=true, so a
// client that mistyped wait= still learns about a bad timeout.
func (s *Server) waitParams(w http.ResponseWriter, r *http.Request) (wait bool, timeout time.Duration, ok bool) {
	query := r.URL.Query()
	switch v := query.Get("wait"); v {
	case "", "false", "0":
	case "true", "1":
		wait = true
	default:
		writeError(w, http.StatusBadRequest, fmt.Sprintf("wait must be true or false, got %q", v))
		return false, 0, false
	}
	timeout = defaultWait
	if raw := query.Get("timeout"); raw != "" {
		d, err := time.ParseDuration(raw)
		if err != nil || d <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("timeout must be a positive duration like 30s, got %q", raw))
			return false, 0, false
		}
		timeout = d
	}
	if timeout > s.maxWait {
		timeout = s.maxWait
	}
	return wait, timeout, true
}

// getWait is the long-poll arm of GET /v1/operations/{id}: it blocks
// until the operation leaves the state it is in now, the timeout
// expires (200 with the unchanged snapshot), or the client goes away.
// Unknown IDs are a 404 exactly as without wait — there is nothing to
// wait for on an operation that does not exist.
func (s *Server) getWait(w http.ResponseWriter, r *http.Request, id string, timeout time.Duration) {
	op, err := s.engine.Get(id)
	if err != nil {
		s.writeEngineError(w, err)
		return
	}
	if op.Status.Terminal() {
		// Terminal states never change; waiting would always time out.
		writeSync(w, http.StatusOK, op)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	next, err := s.engine.AwaitChange(ctx, id, op.Status)
	if err != nil {
		switch {
		case r.Context().Err() != nil:
			// Client disconnected (or the server is draining): the
			// waiter is already deregistered, and there is nobody left
			// to write a response to.
		case errors.Is(err, context.DeadlineExceeded):
			// Long-poll timeout: report the current snapshot with 200 —
			// "no change yet" is a normal outcome the client re-polls
			// from, not an error.
			cur, gerr := s.engine.Get(id)
			if gerr != nil {
				// Evicted while we waited; now it IS a 404.
				s.writeEngineError(w, gerr)
				return
			}
			writeSync(w, http.StatusOK, cur)
		default:
			s.writeEngineError(w, err)
		}
		return
	}
	writeSync(w, http.StatusOK, next)
}

// notices serves GET /v1/notices: the retained state-transition feed
// from cursor `after`, optionally long-polling until something newer
// matches. Responses are oldest-first; the client advances after= to
// the last seq it received.
func (s *Server) notices(w http.ResponseWriter, r *http.Request) {
	wait, timeout, ok := s.waitParams(w, r)
	if !ok {
		return
	}
	query := r.URL.Query()
	var after uint64
	if raw := query.Get("after"); raw != "" {
		n, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("after must be a non-negative integer cursor, got %q", raw))
			return
		}
		after = n
	}
	var statuses []core.Status
	for _, raw := range query["status"] {
		st := core.Status(raw)
		if !st.Valid() {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown status filter %q", raw))
			return
		}
		statuses = append(statuses, st)
	}
	limit := 0
	if raw := query.Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("limit must be a positive integer, got %q", raw))
			return
		}
		limit = n
	}
	nq := engine.NoticeQuery{
		After:    after,
		Kinds:    query["kind"],
		Statuses: statuses,
		Limit:    limit,
	}

	if !wait {
		writeNotices(w, s.engine.Notices(nq))
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	ns, err := s.engine.AwaitNotices(ctx, nq)
	if err != nil {
		switch {
		case r.Context().Err() != nil:
			// Client gone; nothing to write.
		case errors.Is(err, context.DeadlineExceeded):
			// Caught up for the whole window: an empty page with 200,
			// the client re-polls with the same cursor.
			writeNotices(w, nil)
		default:
			s.writeEngineError(w, err)
		}
		return
	}
	writeNotices(w, ns)
}

// writeNotices emits the page, normalizing nil so an empty feed
// marshals as [] rather than null.
func writeNotices(w http.ResponseWriter, ns []engine.Notice) {
	if ns == nil {
		ns = []engine.Notice{}
	}
	writeSync(w, http.StatusOK, ns)
}
