package api

// API-level tests for the scheduler surface: priority parsing and
// round-tripping, X-Client-Id attribution, the 429 + Retry-After shed
// path, and the health report's queue visibility.

import (
	"context"
	"net/http"
	"strconv"
	"testing"
	"time"

	"opdaemon/internal/core"
	"opdaemon/internal/engine"
)

func TestSubmitPriorityRoundTrip(t *testing.T) {
	s, e := newTestServer(t)

	w, resp := doJSON(t, s, http.MethodPost, "/v1/operations", `{"kind":"echo","priority":"high"}`)
	checkEnvelope(t, w, resp, typeAsync, http.StatusAccepted)
	result, _ := resp.Result.(map[string]any)
	if result["priority"] != "high" {
		t.Errorf("envelope priority = %v, want high", result["priority"])
	}
	id, _ := result["id"].(string)
	op := waitTerminal(t, e, id)
	if op.Priority != core.PriorityHigh {
		t.Errorf("stored priority = %s, want high", op.Priority)
	}

	w, resp = doJSON(t, s, http.MethodPost, "/v1/operations", `{"kind":"echo","priority":"urgent"}`)
	checkEnvelope(t, w, resp, typeError, http.StatusBadRequest)

	// Batch: one invalid priority rejects the whole batch, naming the
	// item.
	w, resp = doJSON(t, s, http.MethodPost, "/v1/operations",
		`[{"kind":"echo","priority":"low"},{"kind":"echo","priority":"urgent"}]`)
	checkEnvelope(t, w, resp, typeError, http.StatusBadRequest)
}

func TestSubmitClientAttribution(t *testing.T) {
	s, e := newTestServer(t)

	// Explicit header wins.
	w, resp := doJSON(t, s, http.MethodPost, "/v1/operations", `{"kind":"echo"}`,
		withHeader("X-Client-Id", "tenant-a"))
	checkEnvelope(t, w, resp, typeAsync, http.StatusAccepted)
	result, _ := resp.Result.(map[string]any)
	if result["client"] != "tenant-a" {
		t.Errorf("envelope client = %v, want tenant-a", result["client"])
	}
	id, _ := result["id"].(string)
	if op := waitTerminal(t, e, id); op.Client != "tenant-a" {
		t.Errorf("stored client = %q, want tenant-a", op.Client)
	}

	// No header: falls back to the remote host with the port stripped
	// (httptest stamps RemoteAddr 192.0.2.1:1234).
	w, resp = doJSON(t, s, http.MethodPost, "/v1/operations", `{"kind":"echo"}`)
	checkEnvelope(t, w, resp, typeAsync, http.StatusAccepted)
	result, _ = resp.Result.(map[string]any)
	if result["client"] != "192.0.2.1" {
		t.Errorf("fallback client = %v, want 192.0.2.1", result["client"])
	}
}

// TestClientHeaderTrustDisabled checks WithClientHeaderTrust(false):
// for deployments serving untrusted clients, X-Client-Id must be
// ignored (a client could otherwise randomize it per request to mint
// itself fresh fair-queueing shares) and attribution keys on the
// remote host alone.
func TestClientHeaderTrustDisabled(t *testing.T) {
	s, _ := newTestServer(t, WithClientHeaderTrust(false))

	w, resp := doJSON(t, s, http.MethodPost, "/v1/operations", `{"kind":"echo"}`,
		withHeader("X-Client-Id", "forged-tenant"))
	checkEnvelope(t, w, resp, typeAsync, http.StatusAccepted)
	result, _ := resp.Result.(map[string]any)
	if result["client"] != "192.0.2.1" {
		t.Errorf("client with untrusted header = %v, want remote host 192.0.2.1", result["client"])
	}
}

func TestSaturatedSubmitReturns429WithRetryAfter(t *testing.T) {
	e := engine.New(engine.Config{
		Workers:       1,
		QueueDepth:    10,
		ShedThreshold: 0.5,
	})
	t.Cleanup(func() { e.Shutdown(context.Background()) })
	release := make(chan struct{})
	t.Cleanup(func() { close(release) })
	started := make(chan struct{})
	e.Register("block", func(ctx context.Context, _ *core.Operation) (any, error) {
		close(started)
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil, nil
	})
	e.Register("noop", func(context.Context, *core.Operation) (any, error) { return nil, nil })
	s := New(e)

	w, resp := doJSON(t, s, http.MethodPost, "/v1/operations", `{"kind":"block"}`)
	checkEnvelope(t, w, resp, typeAsync, http.StatusAccepted)
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("blocker never started")
	}
	for i := 0; i < 5; i++ {
		w, resp = doJSON(t, s, http.MethodPost, "/v1/operations", `{"kind":"noop"}`)
		checkEnvelope(t, w, resp, typeAsync, http.StatusAccepted)
	}

	w, resp = doJSON(t, s, http.MethodPost, "/v1/operations", `{"kind":"noop"}`)
	checkEnvelope(t, w, resp, typeError, http.StatusTooManyRequests)
	retry := w.Header().Get("Retry-After")
	if retry == "" {
		t.Fatal("429 reply missing Retry-After header")
	}
	secs, err := strconv.Atoi(retry)
	if err != nil || secs < 1 {
		t.Errorf("Retry-After = %q, want an integer >= 1", retry)
	}

	// Health reflects the shed state while saturated.
	hw, hresp := doJSON(t, s, http.MethodGet, "/v1/health", "")
	checkEnvelope(t, hw, hresp, typeSync, http.StatusOK)
	health, _ := hresp.Result.(map[string]any)
	if health["shedding"] != true {
		t.Errorf("health shedding = %v, want true", health["shedding"])
	}
	if shedAt, _ := health["shed_at"].(float64); shedAt != 5 {
		t.Errorf("health shed_at = %v, want 5", health["shed_at"])
	}
	bands, _ := health["queue_bands"].(map[string]any)
	if n, _ := bands["normal"].(float64); n != 5 {
		t.Errorf("health queue_bands[normal] = %v, want 5 (bands %v)", bands["normal"], bands)
	}
}

func TestHealthReportsSchedulerFields(t *testing.T) {
	s, _ := newTestServer(t)
	w, resp := doJSON(t, s, http.MethodGet, "/v1/health", "")
	checkEnvelope(t, w, resp, typeSync, http.StatusOK)
	health, _ := resp.Result.(map[string]any)
	for _, key := range []string{"queue_bands", "queue_clients", "shedding", "shed_at", "drain_per_sec"} {
		if _, ok := health[key]; !ok {
			t.Errorf("health report missing %q: %v", key, health)
		}
	}
	bands, _ := health["queue_bands"].(map[string]any)
	for _, band := range []string{"high", "normal", "low"} {
		if _, ok := bands[band]; !ok {
			t.Errorf("queue_bands missing %q band: %v", band, bands)
		}
	}
	if health["shedding"] != false {
		t.Errorf("idle daemon shedding = %v, want false", health["shedding"])
	}
}
