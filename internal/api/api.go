// Package api exposes the operation engine over HTTP with snapd-style
// JSON envelopes. Every response is one of three shapes — sync, async,
// or error — documented in docs/api.md.
package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strconv"
	"time"

	"opdaemon/internal/core"
	"opdaemon/internal/engine"
)

// maxBodyBytes bounds request bodies so a misbehaving client cannot
// exhaust memory.
const maxBodyBytes = 1 << 20

// Server routes v1 API requests to an engine.
type Server struct {
	engine *engine.Engine
	mux    *http.ServeMux
	// maxWait bounds long-poll waits (?wait=true); client-requested
	// timeouts above it are clamped. See WithMaxWait.
	maxWait time.Duration
	// trustClientHeader controls whether X-Client-Id is honoured for
	// scheduler client attribution. See WithClientHeaderTrust.
	trustClientHeader bool
}

// New builds the API server around an engine.
func New(e *engine.Engine, opts ...Option) *Server {
	s := &Server{engine: e, mux: http.NewServeMux(), maxWait: defaultMaxWait, trustClientHeader: true}
	for _, opt := range opts {
		opt(s)
	}
	s.mux.HandleFunc("GET /v1/health", s.health)
	s.mux.HandleFunc("POST /v1/operations", s.submit)
	s.mux.HandleFunc("GET /v1/operations", s.list)
	s.mux.HandleFunc("GET /v1/operations/{id}", s.get)
	s.mux.HandleFunc("DELETE /v1/operations/{id}", s.cancel)
	s.mux.HandleFunc("GET /v1/notices", s.notices)
	s.mux.HandleFunc("GET /v1/metrics", s.metrics)
	// Method-less fallbacks so a wrong verb on a known path yields a
	// 405 envelope instead of falling through to the 404 handler.
	s.mux.HandleFunc("/v1/health", methodNotAllowed("GET"))
	s.mux.HandleFunc("/v1/operations", methodNotAllowed("GET, POST"))
	s.mux.HandleFunc("/v1/operations/{id}", methodNotAllowed("GET, DELETE"))
	s.mux.HandleFunc("/v1/notices", methodNotAllowed("GET"))
	s.mux.HandleFunc("/v1/metrics", methodNotAllowed("GET"))
	s.mux.HandleFunc("/", s.notFound)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) health(w http.ResponseWriter, _ *http.Request) {
	// Saturation numbers ride along with the liveness bit so loadgen
	// and operators can see queue pressure without a metrics stack.
	st := s.engine.Stats()
	writeSync(w, http.StatusOK, map[string]any{
		"healthy":        true,
		"kinds":          s.engine.Kinds(),
		"workers":        st.Workers,
		"queue_depth":    st.QueueDepth,
		"queue_capacity": st.QueueCapacity,
		"queue_bands":    st.QueueBands,
		"queue_clients":  st.QueueClients,
		"shedding":       st.Shedding,
		"shed_at":        st.ShedAt,
		"drain_per_sec":  st.DrainPerSec,
		"store_len":      st.StoreLen,
		"watch_waiters":  st.WatchWaiters,
		"last_notice":    st.LastNotice,
		"durable":        st.Durable,
		"wal_segments":   st.WALSegments,
		"wal_batch_p50":  st.WALBatchP50,
		"fsyncs_per_sec": st.FsyncsPerSec,
	})
}

// WithClientHeaderTrust controls whether the scheduler's client
// attribution honours the X-Client-Id request header (the default).
// The header is unauthenticated, so a greedy client can randomize it
// per request to mint itself a fresh fair-queueing share each time;
// deployments serving untrusted clients should pass false to key
// solely on the remote host, which a client cannot cheaply multiply.
// See docs/scheduling.md for the trust model.
func WithClientHeaderTrust(trust bool) Option {
	return func(s *Server) { s.trustClientHeader = trust }
}

// clientKey attributes a request to a client for the scheduler's fair
// queueing: the X-Client-Id header when present and trusted (see
// WithClientHeaderTrust), else the remote host (port stripped, so one
// client's connections pool into one queue).
func (s *Server) clientKey(r *http.Request) string {
	if s.trustClientHeader {
		if key := r.Header.Get("X-Client-Id"); key != "" {
			return key
		}
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// submitRequest is one operation in the body of POST /v1/operations,
// either the whole body (single submission) or one array element
// (batch submission).
type submitRequest struct {
	Kind   string         `json:"kind"`
	Params map[string]any `json:"params"`
	// Priority selects the scheduling band (low/normal/high). Absent
	// means the kind's registered default, then normal; unknown values
	// are rejected by the engine with a 400.
	Priority core.Priority `json:"priority"`
}

func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body too large")
			return
		}
		writeError(w, http.StatusBadRequest, "reading request body")
		return
	}
	if isJSONArray(body) {
		s.submitBatch(w, r, body)
		return
	}
	var req submitRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("malformed JSON body: %v", err))
		return
	}

	opts := []engine.SubmitOption{engine.AsClient(s.clientKey(r))}
	if req.Priority != "" {
		opts = append(opts, engine.AtPriority(req.Priority))
	}
	op, err := s.engine.Submit(r.Context(), req.Kind, req.Params, opts...)
	if err != nil {
		s.writeEngineError(w, err)
		return
	}
	writeAsync(w, resourcePath(op), op)
}

// submitBatch handles a POST /v1/operations body that is a JSON array:
// every element is validated, the batch is enqueued atomically, and
// the reply carries one async envelope per item (or one error envelope
// naming every invalid item).
func (s *Server) submitBatch(w http.ResponseWriter, r *http.Request, body []byte) {
	var reqs []submitRequest
	if err := json.Unmarshal(body, &reqs); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("malformed JSON body: %v", err))
		return
	}
	// Empty and oversized batches are the engine's call (it knows the
	// queue capacity); both surface as InvalidError → 400.
	items := make([]engine.BatchItem, len(reqs))
	for i, req := range reqs {
		items[i] = engine.BatchItem{Kind: req.Kind, Params: req.Params, Priority: req.Priority}
	}
	ops, err := s.engine.SubmitBatch(r.Context(), items, engine.AsClient(s.clientKey(r)))
	if err != nil {
		s.writeEngineError(w, err)
		return
	}
	writeBatchAsync(w, ops)
}

// isJSONArray reports whether the body's first non-whitespace byte
// opens a JSON array, distinguishing batch from single submissions
// without parsing the body twice.
func isJSONArray(body []byte) bool {
	for _, b := range body {
		switch b {
		case ' ', '\t', '\r', '\n':
			continue
		default:
			return b == '['
		}
	}
	return false
}

func (s *Server) get(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	wait, timeout, ok := s.waitParams(w, r)
	if !ok {
		return
	}
	if wait {
		// Long-poll: block until the operation's state changes, the
		// timeout expires, or the client disconnects. See watch.go.
		s.getWait(w, r, id, timeout)
		return
	}
	op, err := s.engine.Get(id)
	if err != nil {
		s.writeEngineError(w, err)
		return
	}
	writeSync(w, http.StatusOK, op)
}

// cancel aborts the operation: queued operations go straight to
// cancelled, running ones have their context cancelled and settle as
// cancelled once the handler returns. Cancellation is asynchronous, so
// the reply is an async envelope whose Location is the poll URL.
func (s *Server) cancel(w http.ResponseWriter, r *http.Request) {
	op, err := s.engine.Cancel(r.PathValue("id"))
	if err != nil {
		s.writeEngineError(w, err)
		return
	}
	writeAsync(w, resourcePath(op), op)
}

func (s *Server) list(w http.ResponseWriter, r *http.Request) {
	query := r.URL.Query()
	status := core.Status(query.Get("status"))
	if status != "" && !status.Valid() {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown status filter %q", status))
		return
	}
	// limit caps the reply at the N newest matches; absent means
	// unbounded, for compatibility with pre-limit clients.
	limit := 0
	if raw := query.Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("limit must be a positive integer, got %q", raw))
			return
		}
		limit = n
	}
	// cursor resumes listing strictly after the named operation (pass
	// the id of the previous page's last element). It is opaque but
	// shape-checked here so a mangled value is a client error rather
	// than a silently empty page; a well-formed cursor whose operation
	// has been TTL-evicted legitimately yields an empty page — the
	// client fell behind retention and restarts from the top.
	cursor := query.Get("cursor")
	if cursor != "" && !core.ValidID(cursor) {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("malformed cursor %q", cursor))
		return
	}
	ops, err := s.engine.List(engine.ListQuery{Status: status, Cursor: cursor, Limit: limit})
	if err != nil {
		s.writeEngineError(w, err)
		return
	}
	writeSync(w, http.StatusOK, ops)
}

// resourcePath is the poll URL for an operation; it lives here, next
// to the mux patterns it must stay in sync with.
func resourcePath(op *core.Operation) string {
	return "/v1/operations/" + op.ID
}

func methodNotAllowed(allow string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Allow", allow)
		writeError(w, http.StatusMethodNotAllowed, fmt.Sprintf("method %s not allowed on %s", r.Method, r.URL.Path))
	}
}

func (s *Server) notFound(w http.ResponseWriter, r *http.Request) {
	writeError(w, http.StatusNotFound, fmt.Sprintf("no such endpoint: %s %s", r.Method, r.URL.Path))
}

// writeEngineError maps engine and core errors onto HTTP codes. It is
// a Server method because the backpressure replies (saturation shed,
// hard queue-full) consult the engine for the Retry-After estimate.
func (s *Server) writeEngineError(w http.ResponseWriter, err error) {
	var inv *core.InvalidError
	var batch *core.BatchError
	switch {
	case errors.As(err, &batch):
		writeBatchError(w, batch)
	case errors.As(err, &inv):
		writeError(w, http.StatusBadRequest, inv.Error())
	case errors.Is(err, core.ErrUnknownKind):
		writeError(w, http.StatusBadRequest, err.Error())
	case errors.Is(err, core.ErrNotFound):
		writeError(w, http.StatusNotFound, err.Error())
	case errors.Is(err, core.ErrAlreadyTerminal):
		writeError(w, http.StatusConflict, err.Error())
	case errors.Is(err, core.ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, core.ErrSaturated), errors.Is(err, core.ErrQueueFull):
		// Both are "come back later"; Retry-After carries the engine's
		// depth-over-drain-rate estimate of when the queue will have
		// room, in whole seconds per RFC 9110.
		retry := strconv.Itoa(int(s.engine.RetryAfter().Seconds()))
		writeErrorHeaders(w, http.StatusTooManyRequests, err.Error(),
			map[string]string{"Retry-After": retry})
	default:
		// Likely a store failure once pluggable backends exist; the
		// client gets an opaque 500, so the log is the only trace.
		log.Printf("api: internal error: %v", err)
		writeError(w, http.StatusInternalServerError, "internal error")
	}
}
