package api

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"opdaemon/internal/core"
	"opdaemon/internal/engine"
)

// scrapeMetrics fetches /v1/metrics and parses the exposition into a
// name{labels} → value map, failing the test on any malformed line.
func scrapeMetrics(t *testing.T, s *Server) map[string]string {
	t.Helper()
	req := httptest.NewRequest("GET", "/v1/metrics", nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("GET /v1/metrics = %d, want 200", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") || !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type = %q, want Prometheus text exposition 0.0.4", ct)
	}
	vals := make(map[string]string)
	for _, line := range strings.Split(w.Body.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key, val, ok := strings.Cut(line, " ")
		if !ok || key == "" || val == "" {
			t.Fatalf("malformed exposition line %q", line)
		}
		vals[key] = val
	}
	return vals
}

func TestMetricsExposition(t *testing.T) {
	s, e := newTestServer(t)
	// Give the gauges something non-zero to report.
	if _, err := e.Submit(context.Background(), "echo", map[string]any{"x": 1}); err != nil {
		t.Fatalf("Submit: %v", err)
	}

	vals := scrapeMetrics(t, s)
	if got := vals["opdaemon_workers"]; got != "2" {
		t.Errorf("opdaemon_workers = %q, want 2", got)
	}
	for _, name := range []string{
		"opdaemon_queue_depth", "opdaemon_queue_capacity", "opdaemon_store_operations",
		"opdaemon_watch_waiters", "opdaemon_notice_last_seq", "opdaemon_shedding",
		"opdaemon_shed_at", "opdaemon_drain_per_sec", "opdaemon_queue_clients",
		"opdaemon_durable",
	} {
		if _, ok := vals[name]; !ok {
			t.Errorf("exposition is missing %s", name)
		}
	}
	// All three bands appear as labelled series.
	for _, band := range []string{"high", "normal", "low"} {
		key := `opdaemon_queue_band_depth{band="` + band + `"}`
		if _, ok := vals[key]; !ok {
			t.Errorf("exposition is missing %s", key)
		}
	}
	// The in-memory test engine is not durable, so the WAL gauges must
	// be absent rather than lying zeroes.
	if vals["opdaemon_durable"] != "0" {
		t.Errorf("opdaemon_durable = %q, want 0 for the memory store", vals["opdaemon_durable"])
	}
	for _, name := range []string{"opdaemon_wal_segments", "opdaemon_wal_batch_p50", "opdaemon_wal_fsyncs_per_sec"} {
		if _, ok := vals[name]; ok {
			t.Errorf("exposition has %s despite a non-durable store", name)
		}
	}
}

func TestMetricsDurableGauges(t *testing.T) {
	ws, err := engine.OpenWALStore(engine.WALConfig{Dir: t.TempDir(), Sync: engine.WALSyncGroup})
	if err != nil {
		t.Fatalf("OpenWALStore: %v", err)
	}
	e := engine.New(engine.Config{Workers: 1, Store: ws})
	t.Cleanup(func() {
		e.Shutdown(context.Background())
		ws.Close()
	})
	e.Register("echo", func(_ context.Context, op *core.Operation) (any, error) {
		return op.Params, nil
	})
	s := New(e)

	vals := scrapeMetrics(t, s)
	if vals["opdaemon_durable"] != "1" {
		t.Errorf("opdaemon_durable = %q, want 1 for the WAL store", vals["opdaemon_durable"])
	}
	if v, ok := vals["opdaemon_wal_segments"]; !ok || v == "0" {
		t.Errorf("opdaemon_wal_segments = %q, want a positive gauge", v)
	}
	for _, name := range []string{"opdaemon_wal_batch_p50", "opdaemon_wal_fsyncs_per_sec"} {
		if _, ok := vals[name]; !ok {
			t.Errorf("exposition is missing %s", name)
		}
	}
}

func TestMetricsMethodNotAllowed(t *testing.T) {
	s, _ := newTestServer(t)
	req := httptest.NewRequest("POST", "/v1/metrics", nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/metrics = %d, want 405", w.Code)
	}
}

func TestFormatMetricValue(t *testing.T) {
	for _, tc := range []struct {
		in   float64
		want string
	}{
		{0, "0"}, {42, "42"}, {-3, "-3"}, {2.5, "2.5"}, {0.125, "0.125"},
	} {
		if got := formatMetricValue(tc.in); got != tc.want {
			t.Errorf("formatMetricValue(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestQuoteLabelValue(t *testing.T) {
	if got := quoteLabelValue(`a"b\c` + "\n"); got != `"a\"b\\c\n"` {
		t.Errorf("quoteLabelValue = %s", got)
	}
}
