package api

// End-to-end API benchmarks: every request travels the full
// router → handler → engine → store → JSON-envelope path through
// httptest recorders, so a regression anywhere in that stack shows up
// here even if the store microbenchmarks stay flat. Run via
// `make bench-e2e` or:
//
//	go test -bench=. -benchtime=100x -run '^$' ./internal/api/
//
// CI runs the 100x variant on every push. The headline numbers for the
// read-path work are BenchmarkAPIGet (poll) and BenchmarkAPIList
// (page), whose costs must not scale with store size.

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"opdaemon/internal/core"
	"opdaemon/internal/engine"
)

// newBenchServer wires a server whose engine drains instantly-done
// noop operations, with enough queue headroom that submission
// benchmarks measure the API path rather than backpressure.
func newBenchServer(b *testing.B, store engine.Store) (*Server, *engine.Engine) {
	b.Helper()
	e := engine.New(engine.Config{Workers: 4, QueueDepth: 1 << 16, Store: store})
	b.Cleanup(func() { e.Shutdown(context.Background()) })
	e.Register("noop", func(context.Context, *core.Operation) (any, error) {
		return nil, nil
	})
	return New(e), e
}

// benchStores enumerates the store configurations the e2e suite runs
// against: the daemon default plus the single-lock baseline.
func benchStores() []struct {
	name string
	mk   func() engine.Store
} {
	return []struct {
		name string
		mk   func() engine.Store
	}{
		{"mem", engine.NewMemStore},
		{fmt.Sprintf("sharded-%d", engine.DefaultShardCount()), func() engine.Store { return engine.NewShardedStore(0) }},
	}
}

// seedStore fills a store with n terminal operations so read
// benchmarks operate on a realistically full daemon.
func seedStore(st engine.Store, n int) []*core.Operation {
	t0 := time.Unix(1000, 0)
	ops := make([]*core.Operation, n)
	for i := range ops {
		ops[i] = &core.Operation{
			ID:        core.NewID(),
			Kind:      "noop",
			Status:    core.StatusDone,
			CreatedAt: t0.Add(time.Duration(i) * time.Millisecond),
			UpdatedAt: t0.Add(time.Duration(i) * time.Millisecond),
		}
	}
	st.PutBatch(ops)
	return ops
}

// serve runs one request through the full handler stack and returns
// the recorder.
func serve(s *Server, method, path string, body string, mods ...func(*http.Request)) *httptest.ResponseRecorder {
	var r *http.Request
	if body == "" {
		r = httptest.NewRequest(method, path, nil)
	} else {
		r = httptest.NewRequest(method, path, strings.NewReader(body))
	}
	for _, mod := range mods {
		mod(r)
	}
	w := httptest.NewRecorder()
	s.ServeHTTP(w, r)
	return w
}

// BenchmarkAPISubmit measures single-operation submission end to end.
// Workers drain the noops concurrently; the occasional 429 under a
// long -benchtime is the queue's backpressure and still exercises the
// submission path, so it is counted rather than fatal.
func BenchmarkAPISubmit(b *testing.B) {
	for _, bs := range benchStores() {
		b.Run(bs.name, func(b *testing.B) {
			s, _ := newBenchServer(b, bs.mk())
			const body = `{"kind":"noop"}`
			rejected := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				switch w := serve(s, "POST", "/v1/operations", body); w.Code {
				case http.StatusAccepted:
				case http.StatusTooManyRequests:
					rejected++
				default:
					b.Fatalf("submit returned %d: %s", w.Code, w.Body.String())
				}
			}
			b.StopTimer()
			if rejected > 0 {
				b.ReportMetric(float64(rejected), "429s")
			}
		})
	}
}

// BenchmarkAPISubmitBatch10 measures the amortised batch submission
// path at the batch size the docs quote.
func BenchmarkAPISubmitBatch10(b *testing.B) {
	for _, bs := range benchStores() {
		b.Run(bs.name, func(b *testing.B) {
			s, _ := newBenchServer(b, bs.mk())
			body := "[" + strings.Repeat(`{"kind":"noop"},`, 9) + `{"kind":"noop"}]`
			rejected := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				switch w := serve(s, "POST", "/v1/operations", body); w.Code {
				case http.StatusAccepted:
				case http.StatusTooManyRequests:
					rejected++
				default:
					b.Fatalf("batch submit returned %d: %s", w.Code, w.Body.String())
				}
			}
			b.StopTimer()
			if rejected > 0 {
				b.ReportMetric(float64(rejected), "429s")
			}
		})
	}
}

// BenchmarkAPIGet measures the poll hot path — the request snapd-style
// clients issue in a tight loop — against a 10k-operation store.
func BenchmarkAPIGet(b *testing.B) {
	for _, bs := range benchStores() {
		b.Run(bs.name, func(b *testing.B) {
			st := bs.mk()
			ops := seedStore(st, 10_000)
			s, _ := newBenchServer(b, st)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w := serve(s, "GET", "/v1/operations/"+ops[i%len(ops)].ID, "")
				if w.Code != http.StatusOK {
					b.Fatalf("get returned %d", w.Code)
				}
			}
		})
	}
}

// BenchmarkAPIList measures a limit=50 page over a 10k-operation
// store: before the ordered index this cloned and sorted all 10k ops
// per request; now it touches 50.
func BenchmarkAPIList(b *testing.B) {
	for _, bs := range benchStores() {
		b.Run(bs.name, func(b *testing.B) {
			st := bs.mk()
			seedStore(st, 10_000)
			s, _ := newBenchServer(b, st)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w := serve(s, "GET", "/v1/operations?limit=50", "")
				if w.Code != http.StatusOK {
					b.Fatalf("list returned %d", w.Code)
				}
			}
		})
	}
}

// BenchmarkAPIListCursor measures a mid-stream cursor page, which adds
// the cursor resolution (one point lookup + per-shard binary search)
// to the page cost.
func BenchmarkAPIListCursor(b *testing.B) {
	for _, bs := range benchStores() {
		b.Run(bs.name, func(b *testing.B) {
			st := bs.mk()
			ops := seedStore(st, 10_000)
			s, _ := newBenchServer(b, st)
			cursor := ops[len(ops)/2].ID
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w := serve(s, "GET", "/v1/operations?limit=50&cursor="+cursor, "")
				if w.Code != http.StatusOK {
					b.Fatalf("cursor list returned %d", w.Code)
				}
			}
		})
	}
}

// BenchmarkAPISubmitBatch10WAL is the durable end-to-end path: the
// same batch-of-10 submission as BenchmarkAPISubmitBatch10 but with
// the engine running on the WAL store (`-store=wal`), so each request
// pays admission durability. group is the shipping default; always is
// the per-mutation-fsync comparison point. Compare against the
// in-memory rows above for the durability tax at the API layer.
func BenchmarkAPISubmitBatch10WAL(b *testing.B) {
	for _, mode := range []engine.WALSyncMode{engine.WALSyncGroup, engine.WALSyncAlways} {
		b.Run(string(mode), func(b *testing.B) {
			st, err := engine.OpenWALStore(engine.WALConfig{Dir: b.TempDir(), Sync: mode})
			if err != nil {
				b.Fatalf("OpenWALStore: %v", err)
			}
			b.Cleanup(func() {
				if err := st.Close(); err != nil {
					b.Errorf("WALStore.Close: %v", err)
				}
			})
			s, _ := newBenchServer(b, st)
			body := "[" + strings.Repeat(`{"kind":"noop"},`, 9) + `{"kind":"noop"}]`
			rejected := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				switch w := serve(s, "POST", "/v1/operations", body); w.Code {
				case http.StatusAccepted:
				case http.StatusTooManyRequests:
					rejected++
				default:
					b.Fatalf("batch submit returned %d: %s", w.Code, w.Body.String())
				}
			}
			b.StopTimer()
			if rejected > 0 {
				b.ReportMetric(float64(rejected), "429s")
			}
		})
	}
}
