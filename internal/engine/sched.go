package engine

// The scheduling layer that replaced the single FIFO dispatch channel.
// Accepted operations land in a schedQueue: three priority bands
// (high/normal/low), each holding per-client FIFO queues served in
// deficit-round-robin order. Dispatch order is decided at dequeue
// time, so one greedy tenant's backlog no longer sits in front of
// everyone else's work:
//
//   - Between bands, the strict policy drains the highest non-empty
//     band first; the weighted policy cycles bands with configurable
//     credits so lower bands get a proportional share even under
//     sustained high-priority load.
//   - Within a band, each client gets one quantum of operations per
//     round-robin turn (unit-cost DRR), so a client with 10,000 queued
//     operations and a client with 1 alternate instead of the 10,000
//     draining first.
//   - An aging escape valve bounds starvation under the strict policy:
//     when the oldest waiter of a band below the currently served one
//     has queued longer than promoteAfter, it is served next (it is by
//     construction its client's FIFO head, so serving it is the
//     promotion). The valve is capped at one aged dispatch per
//     agedEvery takes so a flood of aged low-priority work cannot
//     invert the bands.
//
// Concurrency contract: schedQueue.mu guards a few map/slice
// operations and nothing else. Its name places its critical sections
// under the lockscope analyzer — no channel operations, callbacks,
// Store calls, or re-entrant shard locking while it is held. Time is
// sampled by callers and passed in, because the engine's clock is a
// function value the analyzer (rightly) refuses to see invoked under
// the lock.

import (
	"sync"
	"time"

	"opdaemon/internal/core"
)

// numBands is the number of priority bands.
const numBands = 3

// agedEvery caps the aging escape valve: at most one aged dispatch per
// this many takes, so aged low-band backlogs are drained without
// inverting the priority order.
const agedEvery = 4

// Scheduling policies selectable via Config.QueuePolicy.
const (
	// PolicyStrict drains the highest non-empty band first; lower bands
	// progress only through the aging valve.
	PolicyStrict = "strict"
	// PolicyWeighted cycles bands with Config.BandWeights credits per
	// round, giving every band a proportional share.
	PolicyWeighted = "weighted"
)

// bandIndex maps a resolved priority onto its band slot; lower index
// drains first under the strict policy.
func bandIndex(p core.Priority) int {
	switch p {
	case core.PriorityHigh:
		return 0
	case core.PriorityLow:
		return 2
	default:
		return 1
	}
}

// bandPriority is the inverse of bandIndex, for stats labels.
func bandPriority(i int) core.Priority {
	switch i {
	case 0:
		return core.PriorityHigh
	case 2:
		return core.PriorityLow
	default:
		return core.PriorityNormal
	}
}

// schedItem is one accepted operation awaiting dispatch.
type schedItem struct {
	id       string
	client   string
	enqueued time.Time
	// taken marks items already dispatched, so the band's arrival list
	// can skip them lazily instead of paying O(n) removals.
	taken bool
}

// clientQueue is one client's FIFO within a band plus its DRR credit.
// The head index avoids O(n) slice shifts on every pop.
type clientQueue struct {
	key     string
	items   []*schedItem
	head    int
	deficit int
}

func (cq *clientQueue) empty() bool { return cq.head >= len(cq.items) }

func (cq *clientQueue) pending() int { return len(cq.items) - cq.head }

func (cq *clientQueue) push(it *schedItem) { cq.items = append(cq.items, it) }

func (cq *clientQueue) pop() *schedItem {
	it := cq.items[cq.head]
	cq.items[cq.head] = nil // unpin for GC
	cq.head++
	if cq.empty() {
		cq.items = cq.items[:0]
		cq.head = 0
	}
	return it
}

// schedBand is one priority band: per-client queues in DRR rotation
// plus an arrival-order list that makes "oldest waiter" an O(1)
// question for the aging valve.
type schedBand struct {
	clients map[string]*clientQueue
	// active is the DRR rotation; active[0] is the client currently
	// being served. Queues drained out-of-turn by the aging valve stay
	// listed and are dropped lazily when their turn comes.
	active  []*clientQueue
	arrival []*schedItem
	astart  int
	n       int
}

// head returns the band's oldest pending item, compacting the arrival
// list past items the DRR path already dispatched.
func (b *schedBand) head() *schedItem {
	for b.astart < len(b.arrival) {
		if it := b.arrival[b.astart]; !it.taken {
			return it
		}
		b.arrival[b.astart] = nil
		b.astart++
	}
	b.arrival = b.arrival[:0]
	b.astart = 0
	return nil
}

// next serves one item from the band in DRR order: the client at the
// front of the rotation spends one deficit credit per operation and
// rotates to the back when its quantum is spent.
func (b *schedBand) next(quantum int) *schedItem {
	for len(b.active) > 0 {
		cq := b.active[0]
		if cq.empty() {
			// Drained out of turn by the aging valve; retire the queue.
			b.active = b.active[1:]
			delete(b.clients, cq.key)
			continue
		}
		if cq.deficit <= 0 {
			cq.deficit = quantum
		}
		it := cq.pop()
		it.taken = true
		cq.deficit--
		b.n--
		if cq.empty() {
			b.active = b.active[1:]
			delete(b.clients, cq.key)
		} else if cq.deficit == 0 {
			b.active = append(b.active[1:], cq)
		}
		return it
	}
	return nil
}

// takeHead dispatches the band's oldest pending item out of DRR order
// — the aging valve's promotion — returning the item actually removed.
// The item is necessarily its client's FIFO head: it is the oldest
// pending item of the whole band, and client queues pop oldest-first.
// An emptied queue stays in active/clients; the DRR path retires it
// lazily when its turn comes, and re-adds land in the same queue.
func (b *schedBand) takeHead(it *schedItem) *schedItem {
	popped := b.clients[it.client].pop()
	popped.taken = true
	b.n--
	return popped
}

// schedQueue is the engine's dispatch queue: priority bands over
// per-client DRR queues, guarded by one short-critical-section mutex.
// Its type name places those critical sections under the lockscope
// analyzer's no-blocking-under-lock contract.
type schedQueue struct {
	mu    sync.Mutex
	bands [numBands]schedBand
	// quantum is the DRR credit granted per client turn (operations).
	quantum int
	// weighted selects the weighted band policy; weights/credits/cur
	// are its rotation state.
	weighted bool
	weights  [numBands]int
	credits  [numBands]int
	cur      int
	// promoteAfter is the aging threshold; zero disables the valve.
	promoteAfter time.Duration
	// sinceAged counts takes since the last aged dispatch, for the
	// 1-in-agedEvery cap.
	sinceAged int
	n         int
}

// newSchedQueue builds a scheduler; inputs are assumed normalized by
// engine.New (policy a known constant, quantum >= 1, weights >= 1).
func newSchedQueue(policy string, weights [numBands]int, quantum int, promoteAfter time.Duration) *schedQueue {
	s := &schedQueue{
		quantum:  quantum,
		weighted: policy == PolicyWeighted,
		weights:  weights,
		// Credits start full so the very first take serves the highest
		// band rather than skipping it while the rotation warms up.
		credits:      weights,
		promoteAfter: promoteAfter,
	}
	for i := range s.bands {
		s.bands[i].clients = make(map[string]*clientQueue)
	}
	return s
}

// add enqueues an accepted operation under its client's queue in the
// given band. now is sampled by the caller (the engine clock is a
// function value, not callable under the lock).
func (s *schedQueue) add(id, client string, band int, now time.Time) {
	it := &schedItem{id: id, client: client, enqueued: now}
	s.mu.Lock()
	b := &s.bands[band]
	cq := b.clients[client]
	if cq == nil {
		cq = &clientQueue{key: client}
		b.clients[client] = cq
		b.active = append(b.active, cq)
	}
	cq.push(it)
	b.arrival = append(b.arrival, it)
	b.n++
	s.n++
	s.mu.Unlock()
}

// take dispatches the next operation, or reports false on an empty
// queue. The engine's token channel guarantees one successful take per
// token, so false indicates a bookkeeping bug, not a race.
func (s *schedQueue) take(now time.Time) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 {
		return "", false
	}
	s.sinceAged++
	if it := s.takeAged(now); it != nil {
		s.sinceAged = 0
		s.n--
		s.compact()
		return it.id, true
	}
	var it *schedItem
	if s.weighted {
		it = s.takeWeighted()
	} else {
		it = s.takeStrict()
	}
	if it == nil {
		return "", false
	}
	s.n--
	s.compact()
	return it.id, true
}

// compact advances every band's arrival list past already-dispatched
// items. Each dispatch marks its item taken but leaves it in arrival;
// without this sweep the busiest band (which the aging valve never
// inspects — it only looks at bands below the first non-empty one)
// would pin every dispatched item forever, a leak proportional to
// total operations ever enqueued. Each arrival slot is advanced past
// exactly once, so the sweep is amortized O(1) per dispatch and keeps
// arrival bounded by the band's pending items.
func (s *schedQueue) compact() {
	for i := range s.bands {
		s.bands[i].head()
	}
}

// takeAged is the starvation escape valve: among bands below the first
// non-empty one (those the current policy may be under-serving), serve
// the oldest waiter whose age crossed promoteAfter. Capped at one aged
// dispatch per agedEvery takes.
func (s *schedQueue) takeAged(now time.Time) *schedItem {
	if s.promoteAfter <= 0 || s.sinceAged < agedEvery {
		return nil
	}
	first := 0
	for first < numBands && s.bands[first].n == 0 {
		first++
	}
	var oldest *schedItem
	oldestBand := -1
	for i := first + 1; i < numBands; i++ {
		h := s.bands[i].head()
		if h == nil || now.Sub(h.enqueued) < s.promoteAfter {
			continue
		}
		if oldest == nil || h.enqueued.Before(oldest.enqueued) {
			oldest, oldestBand = h, i
		}
	}
	if oldest == nil {
		return nil
	}
	return s.bands[oldestBand].takeHead(oldest)
}

// takeStrict serves the highest non-empty band.
func (s *schedQueue) takeStrict() *schedItem {
	for i := range s.bands {
		if s.bands[i].n > 0 {
			return s.bands[i].next(s.quantum)
		}
	}
	return nil
}

// takeWeighted cycles bands in weighted round-robin: the current band
// spends one credit per dispatch, and the rotation advances past a
// band when it has nothing to serve or its credits are exhausted —
// replenishing only exhausted credits, so a band skipped while empty
// keeps its remaining share and the weights ratio holds among the
// bands that have work. Two full cycles always reach a non-empty band
// when one exists; the strict fallback is unreachable belt-and-braces.
func (s *schedQueue) takeWeighted() *schedItem {
	for tries := 0; tries < numBands*2; tries++ {
		if s.credits[s.cur] > 0 && s.bands[s.cur].n > 0 {
			s.credits[s.cur]--
			return s.bands[s.cur].next(s.quantum)
		}
		if s.credits[s.cur] <= 0 {
			s.credits[s.cur] = s.weights[s.cur]
		}
		s.cur = (s.cur + 1) % numBands
	}
	return s.takeStrict()
}

// depths reports the per-band and per-client pending counts for Stats
// and /v1/health. The per-client map aggregates across bands.
func (s *schedQueue) depths() (bands map[string]int, clients map[string]int) {
	bands = make(map[string]int, numBands)
	clients = make(map[string]int)
	s.mu.Lock()
	for i := range s.bands {
		b := &s.bands[i]
		bands[string(bandPriority(i))] = b.n
		for key, cq := range b.clients {
			if p := cq.pending(); p > 0 {
				clients[key] += p
			}
		}
	}
	s.mu.Unlock()
	return bands, clients
}
