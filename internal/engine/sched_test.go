package engine

// Conformance tests for the scheduler layer: priority ordering under
// contention, DRR fairness bounds, the aging escape valve, and the
// admission-control shed path. They share a gate pattern — a blocker
// operation pins the single worker while the test shapes the queue, so
// dispatch order is decided entirely by the scheduler, never by
// submission racing.

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"opdaemon/internal/core"
)

// orderRecorder collects the order in which operations complete; with
// one worker that equals dispatch order.
type orderRecorder struct {
	mu    sync.Mutex
	order []string
}

func (r *orderRecorder) record(tag string) {
	r.mu.Lock()
	r.order = append(r.order, tag)
	r.mu.Unlock()
}

func (r *orderRecorder) snapshot() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.order...)
}

// gatedEngine builds a 1-worker engine whose "block" kind pins the
// worker until release is closed, and whose "tag" kind records its
// params["tag"] into rec on completion.
func gatedEngine(t *testing.T, cfg Config, rec *orderRecorder) (e *Engine, started chan struct{}, release chan struct{}) {
	t.Helper()
	cfg.Workers = 1
	e = New(cfg)
	t.Cleanup(func() { e.Shutdown(context.Background()) })
	started = make(chan struct{})
	release = make(chan struct{})
	e.Register("block", func(ctx context.Context, _ *core.Operation) (any, error) {
		close(started)
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil, nil
	})
	e.Register("tag", func(_ context.Context, op *core.Operation) (any, error) {
		tag, _ := op.Params["tag"].(string)
		rec.record(tag)
		return nil, nil
	})
	return e, started, release
}

// startBlocker submits the gate operation and waits until it occupies
// the worker, so subsequent submissions queue instead of running.
func startBlocker(t *testing.T, e *Engine, started chan struct{}) string {
	t.Helper()
	op, err := e.Submit(context.Background(), "block", nil)
	if err != nil {
		t.Fatalf("submitting blocker: %v", err)
	}
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("blocker never started")
	}
	return op.ID
}

// drainTags waits until want tags have been recorded.
func drainTags(t *testing.T, rec *orderRecorder, want int) []string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		got := rec.snapshot()
		if len(got) >= want {
			return got
		}
		if time.Now().After(deadline) {
			t.Fatalf("recorded %d of %d operations: %v", len(got), want, got)
		}
		time.Sleep(time.Millisecond)
	}
}

func submitTag(t *testing.T, e *Engine, tag string, opts ...SubmitOption) {
	t.Helper()
	if _, err := e.Submit(context.Background(), "tag", map[string]any{"tag": tag}, opts...); err != nil {
		t.Fatalf("submitting %q: %v", tag, err)
	}
}

// TestPriorityOrderingUnderContention pins the worker, enqueues a mix
// interleaved so FIFO would produce a shuffled order, and checks the
// strict policy drains high, then normal, then low.
func TestPriorityOrderingUnderContention(t *testing.T) {
	rec := &orderRecorder{}
	// PromoteAfter: -1 disables aging so the order is purely strict.
	e, started, release := gatedEngine(t, Config{PromoteAfter: -time.Second}, rec)
	startBlocker(t, e, started)

	for i := 0; i < 3; i++ {
		submitTag(t, e, "low", AtPriority(core.PriorityLow))
		submitTag(t, e, "normal", AtPriority(core.PriorityNormal))
		submitTag(t, e, "high", AtPriority(core.PriorityHigh))
	}
	close(release)
	got := drainTags(t, rec, 9)

	want := []string{"high", "high", "high", "normal", "normal", "normal", "low", "low", "low"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatch order[%d] = %s, want %s (full: %v)", i, got[i], want[i], got)
		}
	}
}

// TestDefaultAndKindPriority checks priority resolution: the submit
// option wins over the kind default, the kind default wins over
// normal, and the resolved value is published on the snapshot.
func TestDefaultAndKindPriority(t *testing.T) {
	e := New(Config{Workers: 1})
	defer e.Shutdown(context.Background())
	e.Register("bg", func(context.Context, *core.Operation) (any, error) { return nil, nil },
		WithPriority(core.PriorityLow))
	e.Register("plain", func(context.Context, *core.Operation) (any, error) { return nil, nil })

	op, err := e.Submit(context.Background(), "bg", nil)
	if err != nil {
		t.Fatal(err)
	}
	if op.Priority != core.PriorityLow {
		t.Errorf("kind-default priority = %s, want low", op.Priority)
	}
	op, err = e.Submit(context.Background(), "bg", nil, AtPriority(core.PriorityHigh))
	if err != nil {
		t.Fatal(err)
	}
	if op.Priority != core.PriorityHigh {
		t.Errorf("option-over-kind priority = %s, want high", op.Priority)
	}
	op, err = e.Submit(context.Background(), "plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	if op.Priority != core.PriorityNormal {
		t.Errorf("unset priority = %s, want normal", op.Priority)
	}

	var inv *core.InvalidError
	if _, err := e.Submit(context.Background(), "plain", nil, AtPriority("urgent")); !errors.As(err, &inv) {
		t.Errorf("invalid priority error = %v, want InvalidError", err)
	}
	if _, err := e.SubmitBatch(context.Background(), []BatchItem{{Kind: "plain", Priority: "urgent"}}); err == nil {
		t.Error("batch with invalid item priority was accepted")
	}
}

// TestDRRFairnessBound pins the worker, lets one greedy client bury
// the queue under 30 operations, then adds 4 small clients with 3
// each. FIFO would drain all 30 greedy operations first; DRR must
// interleave so that when the last small-client operation completes,
// the greedy client has consumed no more than its round-robin share.
func TestDRRFairnessBound(t *testing.T) {
	rec := &orderRecorder{}
	e, started, release := gatedEngine(t, Config{PromoteAfter: -time.Second}, rec)
	startBlocker(t, e, started)

	for i := 0; i < 30; i++ {
		submitTag(t, e, "greedy", AsClient("greedy"))
	}
	small := []string{"c1", "c2", "c3", "c4"}
	for i := 0; i < 3; i++ {
		for _, c := range small {
			submitTag(t, e, c, AsClient(c))
		}
	}
	close(release)
	got := drainTags(t, rec, 42)

	// Position of the last small-client completion.
	remaining := map[string]int{"c1": 3, "c2": 3, "c3": 3, "c4": 3}
	greedyBefore, lastSmall := 0, -1
	for i, tag := range got {
		if tag == "greedy" {
			if lastSmall == -1 {
				greedyBefore++
			}
			continue
		}
		remaining[tag]--
		if remaining[tag] == 0 {
			delete(remaining, tag)
			if len(remaining) == 0 {
				lastSmall = i
				greedyBefore = i + 1 - 12 // greedy ops among the first i+1
			}
		}
	}
	if lastSmall == -1 {
		t.Fatalf("small clients never finished: %v", got)
	}
	// Perfect round-robin serves at most one greedy op per round of 5
	// clients; 3 rounds drain the small clients, so ~3-4 greedy ops.
	// Allow slack for rotation order but stay far below FIFO's 30.
	if greedyBefore > 8 {
		t.Errorf("greedy client completed %d ops before the small clients finished (positions 0..%d), want <= 8: %v",
			greedyBefore, lastSmall, got)
	}
}

// TestAgingPromotesStarvedLow freezes time, buries one low-priority
// operation under a pile of high-priority work, then ages it past
// promoteAfter and checks the valve serves it long before the high
// band drains — but not before the 1-in-agedEvery cap allows.
func TestAgingPromotesStarvedLow(t *testing.T) {
	var nanos atomic.Int64
	base := time.Unix(1_700_000_000, 0)
	clock := func() time.Time { return base.Add(time.Duration(nanos.Load())) }

	rec := &orderRecorder{}
	e, started, release := gatedEngine(t, Config{Clock: clock, PromoteAfter: 50 * time.Millisecond}, rec)
	startBlocker(t, e, started)

	submitTag(t, e, "starved", AtPriority(core.PriorityLow))
	for i := 0; i < 50; i++ {
		submitTag(t, e, "high", AtPriority(core.PriorityHigh))
	}
	// Age everything past the promotion threshold, then open the gate.
	nanos.Store(int64(100 * time.Millisecond))
	close(release)
	got := drainTags(t, rec, 51)

	pos := -1
	for i, tag := range got {
		if tag == "starved" {
			pos = i
			break
		}
	}
	if pos == -1 {
		t.Fatalf("starved op never completed: %v", got)
	}
	// The cap allows the first aged dispatch once sinceAged reaches
	// agedEvery — a handful of takes in, far before the 50 high ops
	// drain — and never on the very first dispatch.
	if pos > 2*agedEvery {
		t.Errorf("starved low op completed at position %d, want within %d (aging valve)", pos, 2*agedEvery)
	}
	if pos < 1 {
		t.Errorf("starved low op completed first; the 1-in-%d cap should serve high work before aging", agedEvery)
	}
}

// TestWeightedPolicySharesBands checks the weighted policy gives the
// low band a proportional share instead of starving it behind high.
func TestWeightedPolicySharesBands(t *testing.T) {
	rec := &orderRecorder{}
	e, started, release := gatedEngine(t, Config{
		QueuePolicy:  PolicyWeighted,
		BandWeights:  [3]int{2, 1, 1},
		PromoteAfter: -time.Second,
	}, rec)
	startBlocker(t, e, started)

	for i := 0; i < 20; i++ {
		submitTag(t, e, "high", AtPriority(core.PriorityHigh))
	}
	for i := 0; i < 5; i++ {
		submitTag(t, e, "low", AtPriority(core.PriorityLow))
	}
	close(release)
	got := drainTags(t, rec, 25)

	// With weights 2:1:1 the low band must finish while high work
	// remains; under the strict policy all 20 highs would come first.
	lowDone, highBefore := 0, 0
	for _, tag := range got {
		if tag == "low" {
			lowDone++
			if lowDone == 5 {
				break
			}
			continue
		}
		highBefore++
	}
	if lowDone != 5 {
		t.Fatalf("low band never drained: %v", got)
	}
	if highBefore >= 20 {
		t.Errorf("all 20 high ops completed before the low band drained; weighted policy not sharing: %v", got)
	}
}

// TestShedReturnsErrSaturated fills the queue to the shed threshold
// and checks admission control refuses further work with ErrSaturated,
// a populated RetryAfter, and Stats reporting the shed state.
func TestShedReturnsErrSaturated(t *testing.T) {
	rec := &orderRecorder{}
	e, started, release := gatedEngine(t, Config{
		QueueDepth:    10,
		ShedThreshold: 0.5,
	}, rec)
	startBlocker(t, e, started)

	// The blocker occupies the worker without holding a queue slot, so
	// five queued ops reach the shedAt=5 threshold exactly.
	for i := 0; i < 5; i++ {
		submitTag(t, e, "filler")
	}
	_, err := e.Submit(context.Background(), "tag", map[string]any{"tag": "shed"})
	if !errors.Is(err, core.ErrSaturated) {
		t.Fatalf("submit at threshold = %v, want ErrSaturated", err)
	}
	// Batch admission sheds identically.
	if _, err := e.SubmitBatch(context.Background(), []BatchItem{{Kind: "tag"}}); !errors.Is(err, core.ErrSaturated) {
		t.Fatalf("batch submit at threshold = %v, want ErrSaturated", err)
	}

	st := e.Stats()
	if !st.Shedding {
		t.Errorf("Stats.Shedding = false at depth %d, shedAt %d", st.QueueDepth, st.ShedAt)
	}
	if st.ShedAt != 5 {
		t.Errorf("Stats.ShedAt = %d, want 5", st.ShedAt)
	}
	if st.QueueBands[string(core.PriorityNormal)] != 5 {
		t.Errorf("Stats.QueueBands[normal] = %d, want 5 (bands: %v)", st.QueueBands[string(core.PriorityNormal)], st.QueueBands)
	}

	// Nothing has drained yet, so the estimate is the no-data ceiling.
	if ra := e.RetryAfter(); ra != retryCeiling {
		t.Errorf("RetryAfter with no drain history = %s, want %s", ra, retryCeiling)
	}

	close(release)
	drainTags(t, rec, 5)
	// With drain history and an empty queue the estimate floors at 1s.
	if ra := e.RetryAfter(); ra < time.Second || ra > retryCeiling {
		t.Errorf("RetryAfter after drain = %s, want within [1s, %s]", ra, retryCeiling)
	}
	if st := e.Stats(); st.Shedding {
		t.Error("Stats.Shedding still true after drain")
	}
}

// TestSchedArrivalStaysCompacted guards against the dispatch-path
// leak: arrival was only compacted by head(), which the aging valve
// calls solely for bands *below* the first non-empty one — so the
// busiest band (and every band when aging is disabled) pinned each
// dispatched item forever. take() now compacts every band, keeping
// arrival bounded by pending items.
func TestSchedArrivalStaysCompacted(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	for _, policy := range []string{PolicyStrict, PolicyWeighted} {
		// promoteAfter 0 disables aging — the worst case for the leak.
		s := newSchedQueue(policy, [3]int{8, 4, 1}, 1, 0)
		for i := 0; i < 1000; i++ {
			s.add("op", "client", 1, now)
			if _, ok := s.take(now); !ok {
				t.Fatalf("[%s] take on non-empty queue reported empty", policy)
			}
		}
		b := &s.bands[1]
		if len(b.arrival) != 0 || b.astart != 0 {
			t.Errorf("[%s] arrival not compacted after steady-state drain: len=%d astart=%d, want 0/0",
				policy, len(b.arrival), b.astart)
		}
	}
}

// TestWeightedFirstTakeServesHigh guards the credit initialization:
// credits used to start at zero and replenish only when the rotation
// advanced into a band, so the very first take skipped the high band
// and served lower-priority work ahead of queued high-priority work.
func TestWeightedFirstTakeServesHigh(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	s := newSchedQueue(PolicyWeighted, [3]int{2, 1, 1}, 1, 0)
	s.add("n", "c", bandIndex(core.PriorityNormal), now)
	s.add("h", "c", bandIndex(core.PriorityHigh), now)
	if id, ok := s.take(now); !ok || id != "h" {
		t.Errorf("first weighted take = %q (ok=%v), want the high-band op", id, ok)
	}
}

// TestBatchShedAccountsForSize checks the shed threshold is a hard
// depth bound for batches too: a batch admitted just under shedAt must
// not push the queue past it.
func TestBatchShedAccountsForSize(t *testing.T) {
	rec := &orderRecorder{}
	e, started, release := gatedEngine(t, Config{
		QueueDepth:    10,
		ShedThreshold: 0.5, // shedAt = 5
	}, rec)
	startBlocker(t, e, started)

	for i := 0; i < 3; i++ {
		submitTag(t, e, "filler")
	}
	// Depth 3: a batch of 3 would land at 6 > shedAt, so it sheds whole.
	over := []BatchItem{{Kind: "tag"}, {Kind: "tag"}, {Kind: "tag"}}
	if _, err := e.SubmitBatch(context.Background(), over); !errors.Is(err, core.ErrSaturated) {
		t.Fatalf("batch crossing shedAt = %v, want ErrSaturated", err)
	}
	// A batch of 2 lands exactly at shedAt and is admitted.
	fits := []BatchItem{
		{Kind: "tag", Params: map[string]any{"tag": "b1"}},
		{Kind: "tag", Params: map[string]any{"tag": "b2"}},
	}
	if _, err := e.SubmitBatch(context.Background(), fits); err != nil {
		t.Fatalf("batch landing at shedAt = %v, want admitted", err)
	}
	if _, err := e.Submit(context.Background(), "tag", nil); !errors.Is(err, core.ErrSaturated) {
		t.Fatalf("submit at shedAt = %v, want ErrSaturated", err)
	}

	close(release)
	drainTags(t, rec, 5)
}

// TestShedDisabledByDefault checks a default-config engine never sheds:
// the queue hard-fills to ErrQueueFull exactly as before this layer.
func TestShedDisabledByDefault(t *testing.T) {
	rec := &orderRecorder{}
	e, started, release := gatedEngine(t, Config{QueueDepth: 2}, rec)
	defer close(release)
	startBlocker(t, e, started)

	submitTag(t, e, "a")
	submitTag(t, e, "b")
	if _, err := e.Submit(context.Background(), "tag", map[string]any{"tag": "c"}); !errors.Is(err, core.ErrQueueFull) {
		t.Fatalf("overfull submit = %v, want ErrQueueFull", err)
	}
}

// TestSchedDepthsPerClient checks the per-client depth accounting that
// feeds Stats and /v1/health.
func TestSchedDepthsPerClient(t *testing.T) {
	rec := &orderRecorder{}
	e, started, release := gatedEngine(t, Config{}, rec)
	startBlocker(t, e, started)

	submitTag(t, e, "x", AsClient("alice"), AtPriority(core.PriorityHigh))
	submitTag(t, e, "x", AsClient("alice"))
	submitTag(t, e, "x", AsClient("bob"))

	st := e.Stats()
	if st.QueueClients["alice"] != 2 || st.QueueClients["bob"] != 1 {
		t.Errorf("QueueClients = %v, want alice:2 bob:1", st.QueueClients)
	}
	if st.QueueBands[string(core.PriorityHigh)] != 1 || st.QueueBands[string(core.PriorityNormal)] != 2 {
		t.Errorf("QueueBands = %v, want high:1 normal:2", st.QueueBands)
	}

	close(release)
	drainTags(t, rec, 3)
}

// TestDrainMeterRate pins the drain-rate arithmetic RetryAfter builds
// on: N records in the current second average to N/window.
func TestDrainMeterRate(t *testing.T) {
	var m drainMeter
	now := time.Unix(1_700_000_000, 0)
	for i := 0; i < 20; i++ {
		m.record(now)
	}
	if got, want := m.rate(now), 2.0; got != want {
		t.Errorf("rate after 20 records = %g, want %g (20/%d)", got, want, meterWindow)
	}
	// A query far in the future sees only stale buckets.
	if got := m.rate(now.Add(time.Hour)); got != 0 {
		t.Errorf("rate after idle hour = %g, want 0", got)
	}
}
