package engine

// The WAL record codec: a self-describing framed byte format shared by
// log segments and snapshots, so one replay routine (and one fuzz
// target) covers both.
//
// Each frame is
//
//	| length uint32 LE | crc32 uint32 LE | payload (length bytes) |
//
// where payload is one record-type byte followed by the record body and
// the checksum (IEEE CRC32) covers the whole payload. The length prefix
// makes frames skippable without parsing bodies; the checksum makes a
// torn or bit-flipped tail detectable, which is what lets recovery
// truncate at the first bad frame instead of guessing.
//
// Record bodies are JSON for put/update (the operation's own wire
// encoding, so the on-disk format tracks the API format by
// construction) and the raw ID bytes for delete. Replay treats put and
// update identically — both are idempotent upserts keyed by ID — so
// re-applying an overlapping snapshot + segment suffix converges on the
// same state.

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"

	"opdaemon/internal/core"
)

// WAL record types. The zero value is deliberately unused so an
// all-zeroes torn frame can never masquerade as a valid record type.
const (
	walRecPut    byte = 1
	walRecUpdate byte = 2
	walRecDelete byte = 3
)

// walFrameHeader is the fixed per-frame overhead: 4-byte length plus
// 4-byte checksum.
const walFrameHeader = 8

// walMaxRecordBytes bounds a single frame's payload. Real records are a
// few hundred bytes; the bound exists so a corrupt (or fuzzed) length
// field is rejected as a bad frame instead of driving a giant
// allocation.
const walMaxRecordBytes = 64 << 20

// Sentinel replay failures. Both mean "the valid prefix ends here";
// they differ only in what the bytes after it look like, which recovery
// reports but handles the same way.
var (
	// errWALTorn means the data ends mid-frame — the classic crash
	// mid-append shape.
	errWALTorn = errors.New("wal: torn trailing frame")
	// errWALCorrupt means a structurally complete frame failed its
	// checksum or carried an impossible length or type.
	errWALCorrupt = errors.New("wal: corrupt frame")
)

// appendWALFrame appends one framed record to dst and returns the
// extended slice.
func appendWALFrame(dst []byte, typ byte, body []byte) []byte {
	var hdr [walFrameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(body)+1))
	crc := crc32.NewIEEE()
	crc.Write([]byte{typ})
	crc.Write(body)
	binary.LittleEndian.PutUint32(hdr[4:8], crc.Sum32())
	dst = append(dst, hdr[:]...)
	dst = append(dst, typ)
	return append(dst, body...)
}

// encodeOpRecord frames an operation snapshot as a put or update
// record. Marshalling an Operation only fails if a handler smuggled an
// unserialisable value into Params, which the API's JSON decoding makes
// impossible in practice; callers degrade to memory-only for that one
// record and log.
func encodeOpRecord(typ byte, op *core.Operation) ([]byte, error) {
	body, err := json.Marshal(op)
	if err != nil {
		return nil, fmt.Errorf("wal: encoding operation %s: %w", op.ID, err)
	}
	return appendWALFrame(nil, typ, body), nil
}

// encodeDeleteRecord frames a deletion; the body is the raw ID.
func encodeDeleteRecord(id string) []byte {
	return appendWALFrame(nil, walRecDelete, []byte(id))
}

// walReplay walks the frames in data, invoking apply for each valid
// record in order, and returns the byte length of the valid prefix.
// Scanning stops at the first torn or corrupt frame (or at a record
// apply refuses); everything before it has been applied, everything
// from it on is untrusted. A clean walk to the end returns (len(data),
// nil).
func walReplay(data []byte, apply func(typ byte, body []byte) error) (int, error) {
	pos := 0
	for pos < len(data) {
		if len(data)-pos < walFrameHeader {
			return pos, errWALTorn
		}
		n := int(binary.LittleEndian.Uint32(data[pos : pos+4]))
		if n < 1 || n > walMaxRecordBytes {
			return pos, fmt.Errorf("%w: impossible payload length %d", errWALCorrupt, n)
		}
		if len(data)-pos-walFrameHeader < n {
			return pos, errWALTorn
		}
		payload := data[pos+walFrameHeader : pos+walFrameHeader+n]
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[pos+4:pos+8]) {
			return pos, fmt.Errorf("%w: checksum mismatch", errWALCorrupt)
		}
		if err := apply(payload[0], payload[1:]); err != nil {
			return pos, err
		}
		pos += walFrameHeader + n
	}
	return pos, nil
}

// applyWALRecord folds one decoded record into the replay state map:
// put and update upsert, delete removes. It rejects records that
// decode but make no sense (unknown type, empty ID) so replay treats
// them as the end of the valid prefix.
func applyWALRecord(state map[string]*core.Operation, typ byte, body []byte) error {
	switch typ {
	case walRecPut, walRecUpdate:
		op := new(core.Operation)
		if err := json.Unmarshal(body, op); err != nil {
			return fmt.Errorf("%w: undecodable operation body: %v", errWALCorrupt, err)
		}
		if op.ID == "" {
			return fmt.Errorf("%w: operation record without an id", errWALCorrupt)
		}
		state[op.ID] = op
	case walRecDelete:
		delete(state, string(body))
	default:
		return fmt.Errorf("%w: unknown record type %d", errWALCorrupt, typ)
	}
	return nil
}
