package engine

// The WAL record codec: a self-describing framed byte format shared by
// log segments and snapshots, so one replay routine (and one fuzz
// target) covers both.
//
// Each frame is
//
//	| length uint32 LE | crc32 uint32 LE | payload (length bytes) |
//
// where payload is one record-type byte followed by the record body and
// the checksum (IEEE CRC32) covers the whole payload. The length prefix
// makes frames skippable without parsing bodies; the checksum makes a
// torn or bit-flipped tail detectable, which is what lets recovery
// truncate at the first bad frame instead of guessing.
//
// Two codec generations share the frame format and differ only in
// record types and body encoding:
//
//   - v1 (types 1–3): put/update bodies are the operation's JSON wire
//     encoding; delete bodies are the raw ID. Still decoded on replay
//     so logs written by older builds recover seamlessly, but no
//     longer written.
//   - v2 (types 4–5): op bodies are the compact binary encoding
//     (core.AppendBinary) and delta bodies carry only the mutable
//     field set of a lifecycle transition (core.AppendBinaryDelta).
//     A delta replays by folding onto the ID's current replay state;
//     a delta whose base is absent is skipped — the snapshot-overlap
//     window makes that shape legitimate (the op was deleted before
//     the snapshot was cut, but its delta records live in retained
//     segments).
//
// Replay treats every full-record type as an idempotent upsert keyed
// by ID, so re-applying an overlapping snapshot + segment suffix
// converges on the same state.

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"

	"opdaemon/internal/core"
)

// WAL record types. The zero value is deliberately unused so an
// all-zeroes torn frame can never masquerade as a valid record type.
const (
	walRecPut     byte = 1 // v1: full snapshot, JSON body (legacy, read-only)
	walRecUpdate  byte = 2 // v1: full snapshot, JSON body (legacy, read-only)
	walRecDelete  byte = 3 // raw ID body (written by both generations)
	walRecOpV2    byte = 4 // v2: full snapshot, binary body
	walRecDeltaV2 byte = 5 // v2: mutable-field delta, binary body
)

// walFrameHeader is the fixed per-frame overhead: 4-byte length plus
// 4-byte checksum.
const walFrameHeader = 8

// walMaxRecordBytes bounds a single frame's payload. Real records are a
// few hundred bytes; the bound exists so a corrupt (or fuzzed) length
// field is rejected as a bad frame instead of driving a giant
// allocation.
const walMaxRecordBytes = 64 << 20

// Sentinel replay failures. Both mean "the valid prefix ends here";
// they differ only in what the bytes after it look like, which recovery
// reports but handles the same way.
var (
	// errWALTorn means the data ends mid-frame — the classic crash
	// mid-append shape.
	errWALTorn = errors.New("wal: torn trailing frame")
	// errWALCorrupt means a structurally complete frame failed its
	// checksum or carried an impossible length or type.
	errWALCorrupt = errors.New("wal: corrupt frame")
)

// appendWALFrame appends one framed record to dst and returns the
// extended slice.
func appendWALFrame(dst []byte, typ byte, body []byte) []byte {
	dst, mark := reserveWALFrame(dst)
	dst = append(dst, typ)
	dst = append(dst, body...)
	return finishWALFrame(dst, mark)
}

// reserveWALFrame appends a zeroed frame header to dst and returns the
// grown slice plus the header's offset. The caller appends the payload
// (type byte + body) directly, then calls finishWALFrame with the same
// mark — the record is built in place with no intermediate body
// buffer.
func reserveWALFrame(dst []byte) ([]byte, int) {
	mark := len(dst)
	var hdr [walFrameHeader]byte
	return append(dst, hdr[:]...), mark
}

// finishWALFrame backfills the length and checksum for the frame whose
// header was reserved at mark, covering everything appended since.
func finishWALFrame(dst []byte, mark int) []byte {
	payload := dst[mark+walFrameHeader:]
	binary.LittleEndian.PutUint32(dst[mark:mark+4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[mark+4:mark+8], crc32.ChecksumIEEE(payload))
	return dst
}

// encodeOpRecord frames an operation snapshot as a v1 JSON put or
// update record. Only tests and the mixed-format migration fixtures
// call it now — the live write path uses the v2 encoders below.
// Marshalling an Operation only fails if a handler smuggled an
// unserialisable value into Params, which the API's JSON decoding makes
// impossible in practice.
func encodeOpRecord(typ byte, op *core.Operation) ([]byte, error) {
	body, err := json.Marshal(op)
	if err != nil {
		return nil, fmt.Errorf("wal: encoding operation %s: %w", op.ID, err)
	}
	return appendWALFrame(nil, typ, body), nil
}

// encodeOpRecordV2 appends a framed v2 full-snapshot record to dst in
// place: header reserved, payload appended directly, length + CRC
// backfilled. No intermediate body allocation.
func encodeOpRecordV2(dst []byte, op *core.Operation) ([]byte, error) {
	dst, mark := reserveWALFrame(dst)
	dst = append(dst, walRecOpV2)
	dst, err := op.AppendBinary(dst)
	if err != nil {
		return dst[:mark], fmt.Errorf("wal: %w", err)
	}
	return finishWALFrame(dst, mark), nil
}

// encodeDeltaRecordV2 appends a framed v2 delta record for op to dst
// in place. The caller has already established delta eligibility
// (core.DeltaEligible), which guarantees encoding cannot fail.
func encodeDeltaRecordV2(dst []byte, op *core.Operation) []byte {
	dst, mark := reserveWALFrame(dst)
	dst = append(dst, walRecDeltaV2)
	dst = op.AppendBinaryDelta(dst)
	return finishWALFrame(dst, mark)
}

// appendDeleteRecord appends a framed deletion to dst; the body is the
// raw ID.
func appendDeleteRecord(dst []byte, id string) []byte {
	dst, mark := reserveWALFrame(dst)
	dst = append(dst, walRecDelete)
	dst = append(dst, id...)
	return finishWALFrame(dst, mark)
}

// encodeDeleteRecord frames a deletion as a standalone buffer.
func encodeDeleteRecord(id string) []byte {
	return appendDeleteRecord(nil, id)
}

// walEncPool recycles record-encode buffers so the hot mutation path
// (which must encode before taking the shard lock, see lockscope's
// codec rule) doesn't allocate a fresh buffer per record. Pooled as
// *[]byte to keep the slice header off the heap on Put.
var walEncPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 512)
		return &b
	},
}

// walEncPoolMaxCap bounds what returns to the pool: an occasional
// giant record (big params blob) must not pin its buffer forever.
const walEncPoolMaxCap = 1 << 20

// getEncBuf returns an empty pooled encode buffer.
func getEncBuf() *[]byte {
	b := walEncPool.Get().(*[]byte)
	*b = (*b)[:0]
	return b
}

// putEncBuf returns a buffer to the pool once its bytes have been
// copied into the WAL batch. Oversized buffers are dropped.
func putEncBuf(b *[]byte) {
	if cap(*b) <= walEncPoolMaxCap {
		walEncPool.Put(b)
	}
}

// walFrameLen reads the payload length from a frame header; the caller
// guarantees at least walFrameHeader bytes.
func walFrameLen(frame []byte) uint32 {
	return binary.LittleEndian.Uint32(frame[0:4])
}

// walFrameCRCOK checks the frame's stored checksum against its payload.
func walFrameCRCOK(frame, payload []byte) bool {
	return crc32.ChecksumIEEE(payload) == binary.LittleEndian.Uint32(frame[4:8])
}

// walReplay walks the frames in data, invoking apply for each valid
// record in order, and returns the byte length of the valid prefix.
// Scanning stops at the first torn or corrupt frame (or at a record
// apply refuses); everything before it has been applied, everything
// from it on is untrusted. A clean walk to the end returns (len(data),
// nil).
func walReplay(data []byte, apply func(typ byte, body []byte) error) (int, error) {
	pos := 0
	for pos < len(data) {
		if len(data)-pos < walFrameHeader {
			return pos, errWALTorn
		}
		n := int(binary.LittleEndian.Uint32(data[pos : pos+4]))
		if n < 1 || n > walMaxRecordBytes {
			return pos, fmt.Errorf("%w: impossible payload length %d", errWALCorrupt, n)
		}
		if len(data)-pos-walFrameHeader < n {
			return pos, errWALTorn
		}
		payload := data[pos+walFrameHeader : pos+walFrameHeader+n]
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[pos+4:pos+8]) {
			return pos, fmt.Errorf("%w: checksum mismatch", errWALCorrupt)
		}
		if err := apply(payload[0], payload[1:]); err != nil {
			return pos, err
		}
		pos += walFrameHeader + n
	}
	return pos, nil
}

// walDecoded is one record decoded off the log, ready to fold into
// replay state. Exactly one of op / delta / del describes the record.
type walDecoded struct {
	op    *core.Operation   // full snapshot (v1 JSON or v2 binary)
	delta *core.BinaryDelta // v2 mutable-field delta
	del   string            // deletion target ID
}

// id returns the operation ID the record concerns — the partition key
// for parallel replay.
func (d *walDecoded) id() string {
	switch {
	case d.op != nil:
		return d.op.ID
	case d.delta != nil:
		return d.delta.ID
	}
	return d.del
}

// decodeWALRecord decodes one record body (both codec generations)
// without touching replay state — the pure half that parallel recovery
// fans out. The returned record owns its memory; body may be reused.
func decodeWALRecord(typ byte, body []byte) (walDecoded, error) {
	switch typ {
	case walRecPut, walRecUpdate:
		op := new(core.Operation)
		if err := json.Unmarshal(body, op); err != nil {
			return walDecoded{}, fmt.Errorf("%w: undecodable operation body: %v", errWALCorrupt, err)
		}
		if op.ID == "" {
			return walDecoded{}, fmt.Errorf("%w: operation record without an id", errWALCorrupt)
		}
		return walDecoded{op: op}, nil
	case walRecOpV2:
		op, err := core.DecodeBinaryOperation(body)
		if err != nil {
			return walDecoded{}, fmt.Errorf("%w: %v", errWALCorrupt, err)
		}
		return walDecoded{op: op}, nil
	case walRecDeltaV2:
		d, err := core.DecodeBinaryDelta(body)
		if err != nil {
			return walDecoded{}, fmt.Errorf("%w: %v", errWALCorrupt, err)
		}
		return walDecoded{delta: d}, nil
	case walRecDelete:
		return walDecoded{del: string(body)}, nil
	default:
		return walDecoded{}, fmt.Errorf("%w: unknown record type %d", errWALCorrupt, typ)
	}
}

// applyDecoded folds one decoded record into the replay state map:
// full records upsert, deltas fold onto the ID's current state (a
// delta with no base is skipped — see the package comment), deletes
// remove. Sequential replay and every parallel-recovery partition
// worker share this one definition of "apply", so their semantics
// cannot drift.
func applyDecoded(state map[string]*core.Operation, d walDecoded) {
	switch {
	case d.op != nil:
		state[d.op.ID] = d.op
	case d.delta != nil:
		if base, ok := state[d.delta.ID]; ok {
			state[d.delta.ID] = d.delta.Apply(base)
		}
	default:
		delete(state, d.del)
	}
}

// applyWALRecord decodes and folds one record into the replay state
// map. It rejects records that decode but make no sense (unknown type,
// empty ID) so replay treats them as the end of the valid prefix. The
// sequential-replay composition the fuzz target pins.
func applyWALRecord(state map[string]*core.Operation, typ byte, body []byte) error {
	d, err := decodeWALRecord(typ, body)
	if err != nil {
		return err
	}
	applyDecoded(state, d)
	return nil
}
