package engine

// Conformance suite for the Store interface. Every implementation —
// the single-mutex memStore and the sharded store at several shard
// counts — must pass the identical contract: per-operation snapshot
// semantics, atomic Update under contention, and newest-first List
// ordering with a stable ID tie-break.

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"opdaemon/internal/core"
)

// storeImpls enumerates every Store implementation under test.
func storeImpls() []struct {
	name string
	mk   func() Store
} {
	return []struct {
		name string
		mk   func() Store
	}{
		{"mem", NewMemStore},
		{"sharded-1", func() Store { return NewShardedStore(1) }},
		{"sharded-8", func() Store { return NewShardedStore(8) }},
		{"sharded-default", func() Store { return NewShardedStore(0) }},
	}
}

func TestStoreConformance(t *testing.T) {
	for _, impl := range storeImpls() {
		t.Run(impl.name, func(t *testing.T) {
			runStoreConformance(t, impl.mk)
		})
	}
}

// mkOp builds a minimal queued operation at the given creation time.
func mkOp(id string, at time.Time) *core.Operation {
	return &core.Operation{
		ID:        id,
		Kind:      "test",
		Status:    core.StatusQueued,
		CreatedAt: at,
		UpdatedAt: at,
	}
}

// runStoreConformance runs the full contract against fresh stores from
// mk.
func runStoreConformance(t *testing.T, mk func() Store) {
	t0 := time.Unix(1000, 0)

	t.Run("GetNotFound", func(t *testing.T) {
		s := mk()
		if _, err := s.Get("missing"); !errors.Is(err, core.ErrNotFound) {
			t.Errorf("Get(missing) = %v, want ErrNotFound", err)
		}
	})

	t.Run("UpdateNotFound", func(t *testing.T) {
		s := mk()
		err := s.Update("missing", func(*core.Operation) { t.Error("fn called for missing op") })
		if !errors.Is(err, core.ErrNotFound) {
			t.Errorf("Update(missing) = %v, want ErrNotFound", err)
		}
	})

	t.Run("PutDoesNotRetainCaller", func(t *testing.T) {
		s := mk()
		op := mkOp("a", t0)
		s.Put(op)
		op.Status = core.StatusFailed // mutate after Put; store must hold a copy
		got, err := s.Get("a")
		if err != nil {
			t.Fatal(err)
		}
		if got.Status != core.StatusQueued {
			t.Errorf("stored op observed caller mutation: status = %s", got.Status)
		}
	})

	t.Run("GetReturnsSnapshot", func(t *testing.T) {
		s := mk()
		s.Put(mkOp("a", t0))
		first, err := s.Get("a")
		if err != nil {
			t.Fatal(err)
		}
		first.Status = core.StatusDone // mutate the snapshot; store must be unaffected
		second, err := s.Get("a")
		if err != nil {
			t.Fatal(err)
		}
		if second.Status != core.StatusQueued {
			t.Errorf("snapshot mutation leaked into store: status = %s", second.Status)
		}
	})

	t.Run("ListReturnsSnapshots", func(t *testing.T) {
		s := mk()
		s.Put(mkOp("a", t0))
		s.List()[0].Status = core.StatusFailed
		got, err := s.Get("a")
		if err != nil {
			t.Fatal(err)
		}
		if got.Status != core.StatusQueued {
			t.Errorf("List snapshot mutation leaked into store: status = %s", got.Status)
		}
	})

	t.Run("PutBatchStoresAllAsCopies", func(t *testing.T) {
		s := mk()
		ops := make([]*core.Operation, 10)
		for i := range ops {
			ops[i] = mkOp(fmt.Sprintf("op-%02d", i), t0.Add(time.Duration(i)*time.Second))
		}
		s.PutBatch(ops)
		if got := s.Len(); got != len(ops) {
			t.Fatalf("Len after PutBatch = %d, want %d", got, len(ops))
		}
		ops[3].Status = core.StatusFailed // batch elements must have been copied
		got, err := s.Get("op-03")
		if err != nil {
			t.Fatal(err)
		}
		if got.Status != core.StatusQueued {
			t.Errorf("PutBatch retained caller pointer: status = %s", got.Status)
		}
	})

	t.Run("PutReplaces", func(t *testing.T) {
		s := mk()
		s.Put(mkOp("a", t0))
		replacement := mkOp("a", t0)
		replacement.Status = core.StatusRunning
		s.Put(replacement)
		got, err := s.Get("a")
		if err != nil {
			t.Fatal(err)
		}
		if got.Status != core.StatusRunning {
			t.Errorf("Put did not replace: status = %s", got.Status)
		}
		if s.Len() != 1 {
			t.Errorf("Len after replace = %d, want 1", s.Len())
		}
	})

	t.Run("ListNewestFirst", func(t *testing.T) {
		s := mk()
		// Insert out of order; two share a CreatedAt to exercise the
		// ID tie-break.
		s.Put(mkOp("mid-b", t0.Add(time.Second)))
		s.Put(mkOp("old", t0))
		s.Put(mkOp("new", t0.Add(2*time.Second)))
		s.Put(mkOp("mid-a", t0.Add(time.Second)))
		var ids []string
		for _, op := range s.List() {
			ids = append(ids, op.ID)
		}
		want := []string{"new", "mid-a", "mid-b", "old"}
		if fmt.Sprint(ids) != fmt.Sprint(want) {
			t.Errorf("List order = %v, want %v", ids, want)
		}
	})

	t.Run("UpdateAtomicUnderContention", func(t *testing.T) {
		s := mk()
		s.Put(mkOp("ctr", t0))
		const goroutines, updates = 8, 200
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < updates; i++ {
					err := s.Update("ctr", func(op *core.Operation) {
						// Read-modify-write; lost updates show up as a
						// final time short of the expected total.
						op.UpdatedAt = op.UpdatedAt.Add(time.Second)
					})
					if err != nil {
						t.Errorf("Update: %v", err)
						return
					}
				}
			}()
		}
		wg.Wait()
		got, err := s.Get("ctr")
		if err != nil {
			t.Fatal(err)
		}
		want := t0.Add(goroutines * updates * time.Second)
		if !got.UpdatedAt.Equal(want) {
			t.Errorf("UpdatedAt after %d atomic updates = %v, want %v (lost updates)",
				goroutines*updates, got.UpdatedAt, want)
		}
	})

	t.Run("DeleteIdempotent", func(t *testing.T) {
		s := mk()
		s.Put(mkOp("a", t0))
		s.Delete("a")
		if _, err := s.Get("a"); !errors.Is(err, core.ErrNotFound) {
			t.Errorf("Get after Delete = %v, want ErrNotFound", err)
		}
		s.Delete("a") // deleting again must be a no-op
		s.Delete("never-existed")
		if s.Len() != 0 {
			t.Errorf("Len after deletes = %d, want 0", s.Len())
		}
	})

	t.Run("DeleteDecrementsLen", func(t *testing.T) {
		s := mk()
		const n = 10
		for i := 0; i < n; i++ {
			s.Put(mkOp(fmt.Sprintf("op-%02d", i), t0.Add(time.Duration(i))))
		}
		for i := 0; i < n; i++ {
			s.Delete(fmt.Sprintf("op-%02d", i))
			if got, want := s.Len(), n-i-1; got != want {
				t.Fatalf("Len after deleting %d ops = %d, want %d", i+1, got, want)
			}
		}
		if got := len(s.List()); got != 0 {
			t.Errorf("List after deleting everything has %d ops, want 0", got)
		}
	})

	t.Run("DeleteConcurrentWithUpdate", func(t *testing.T) {
		// The janitor deletes terminal operations while workers
		// update others; hammer one ID from both sides. Every Update
		// must either apply atomically or report ErrNotFound — never
		// panic, deadlock, or resurrect the deleted operation.
		s := mk()
		const rounds = 100
		for r := 0; r < rounds; r++ {
			id := fmt.Sprintf("op-%03d", r)
			s.Put(mkOp(id, t0))
			var wg sync.WaitGroup
			wg.Add(2)
			go func() {
				defer wg.Done()
				for i := 0; i < 10; i++ {
					err := s.Update(id, func(op *core.Operation) {
						op.UpdatedAt = op.UpdatedAt.Add(time.Second)
					})
					if err != nil && !errors.Is(err, core.ErrNotFound) {
						t.Errorf("Update racing Delete: %v", err)
						return
					}
				}
			}()
			go func() {
				defer wg.Done()
				s.Delete(id)
			}()
			wg.Wait()
			if _, err := s.Get(id); !errors.Is(err, core.ErrNotFound) {
				t.Fatalf("round %d: op resurrected after Delete: %v", r, err)
			}
		}
		if got := s.Len(); got != 0 {
			t.Errorf("Len after concurrent delete rounds = %d, want 0", got)
		}
	})

	t.Run("SweepTerminalBefore", func(t *testing.T) {
		s := mk()
		mkAt := func(id string, status core.Status, at time.Time) {
			op := mkOp(id, t0)
			op.Status = status
			op.UpdatedAt = at
			s.Put(op)
		}
		cutoff := t0.Add(time.Minute)
		mkAt("old-done", core.StatusDone, t0)                        // evict
		mkAt("old-failed", core.StatusFailed, t0)                    // evict
		mkAt("old-cancelled", core.StatusCancelled, t0)              // evict
		mkAt("old-queued", core.StatusQueued, t0)                    // keep: not terminal
		mkAt("old-running", core.StatusRunning, t0)                  // keep: not terminal
		mkAt("fresh-done", core.StatusDone, cutoff.Add(time.Second)) // keep: too fresh
		mkAt("at-cutoff", core.StatusDone, cutoff)                   // keep: not strictly before
		if got := s.SweepTerminalBefore(cutoff); got != 3 {
			t.Errorf("SweepTerminalBefore evicted %d, want 3", got)
		}
		for _, id := range []string{"old-done", "old-failed", "old-cancelled"} {
			if _, err := s.Get(id); !errors.Is(err, core.ErrNotFound) {
				t.Errorf("Get(%s) after sweep = %v, want ErrNotFound", id, err)
			}
		}
		for _, id := range []string{"old-queued", "old-running", "fresh-done", "at-cutoff"} {
			if _, err := s.Get(id); err != nil {
				t.Errorf("sweep evicted %s: %v", id, err)
			}
		}
		if got := s.Len(); got != 4 {
			t.Errorf("Len after sweep = %d, want 4", got)
		}
		if got := s.SweepTerminalBefore(cutoff); got != 0 {
			t.Errorf("second sweep evicted %d, want 0 (idempotent)", got)
		}
	})

	t.Run("LenCountsEverything", func(t *testing.T) {
		s := mk()
		const n = 100
		for i := 0; i < n; i++ {
			s.Put(mkOp(fmt.Sprintf("op-%03d", i), t0.Add(time.Duration(i))))
		}
		if got := s.Len(); got != n {
			t.Errorf("Len = %d, want %d", got, n)
		}
		if got := len(s.List()); got != n {
			t.Errorf("len(List()) = %d, want %d", got, n)
		}
	})
}

func TestNewShardedStoreRoundsToPowerOfTwo(t *testing.T) {
	for _, tc := range []struct {
		n    int
		want int
	}{
		{-1, DefaultShardCount},
		{0, DefaultShardCount},
		{1, 1},
		{2, 2},
		{3, 4},
		{16, 16},
		{17, 32},
		{maxShardCount, maxShardCount},
		{maxShardCount + 1, maxShardCount},
		{1 << 62, maxShardCount}, // would overflow the round-up without the clamp
	} {
		s := NewShardedStore(tc.n).(*shardedStore)
		if got := len(s.shards); got != tc.want {
			t.Errorf("NewShardedStore(%d) has %d shards, want %d", tc.n, got, tc.want)
		}
		if s.mask != uint32(len(s.shards)-1) {
			t.Errorf("NewShardedStore(%d) mask = %d, want %d", tc.n, s.mask, len(s.shards)-1)
		}
	}
}

func TestNextPowerOfTwo(t *testing.T) {
	for _, tc := range []struct{ n, want int }{
		{1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {9, 16}, {1000, 1024},
	} {
		if got := nextPowerOfTwo(tc.n); got != tc.want {
			t.Errorf("nextPowerOfTwo(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

// TestShardedStoreSpreadsKeys sanity-checks the hash: real IDs from
// core.NewID must not collapse into a few shards.
func TestShardedStoreSpreadsKeys(t *testing.T) {
	s := NewShardedStore(8).(*shardedStore)
	const n = 4096
	counts := make([]int, len(s.shards))
	for i := 0; i < n; i++ {
		counts[s.shardIndex(core.NewID())]++
	}
	// Perfectly uniform would be 512 per shard; flag anything worse
	// than a 4x skew, which would indicate a broken hash.
	for i, c := range counts {
		if c < n/len(counts)/4 || c > n/len(counts)*4 {
			t.Errorf("shard %d holds %d of %d keys — hash is badly skewed (%v)", i, c, n, counts)
		}
	}
}
