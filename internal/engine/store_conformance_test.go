package engine

// Conformance suite for the Store interface. Every implementation —
// the single-lock memStore and the sharded store at several shard
// counts — must pass the identical contract: copy-on-write
// immutability of published snapshots, atomic Update under contention,
// newest-first List ordering with a stable ID tie-break, and cursor
// pagination that tolerates TTL eviction.

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"opdaemon/internal/core"
)

// storeImpls enumerates every Store implementation under test: the
// in-memory stores plus the durable WAL store, which must satisfy the
// identical contract (its read path IS the sharded store; the log is
// invisible to the interface). The WAL variants get a per-test
// directory and a Close at cleanup; the group variant runs with a tiny
// window so durability waits don't dominate the suite's runtime.
func storeImpls(t testing.TB) []struct {
	name string
	mk   func(t testing.TB) Store
} {
	mkWAL := func(sync WALSyncMode) func(t testing.TB) Store {
		return func(t testing.TB) Store {
			s, err := OpenWALStore(WALConfig{
				Dir:         t.TempDir(),
				Sync:        sync,
				GroupWindow: 500 * time.Microsecond,
			})
			if err != nil {
				t.Fatalf("OpenWALStore: %v", err)
			}
			t.Cleanup(func() {
				if err := s.Close(); err != nil {
					t.Errorf("WALStore.Close: %v", err)
				}
			})
			return s
		}
	}
	return []struct {
		name string
		mk   func(t testing.TB) Store
	}{
		{"mem", func(testing.TB) Store { return NewMemStore() }},
		{"sharded-1", func(testing.TB) Store { return NewShardedStore(1) }},
		{"sharded-8", func(testing.TB) Store { return NewShardedStore(8) }},
		{"sharded-default", func(testing.TB) Store { return NewShardedStore(0) }},
		{"wal-none", mkWAL(WALSyncNone)},
		{"wal-group", mkWAL(WALSyncGroup)},
	}
}

func TestStoreConformance(t *testing.T) {
	for _, impl := range storeImpls(t) {
		t.Run(impl.name, func(t *testing.T) {
			runStoreConformance(t, impl.mk)
		})
	}
}

// mkOp builds a minimal queued operation at the given creation time.
func mkOp(id string, at time.Time) *core.Operation {
	return &core.Operation{
		ID:        id,
		Kind:      "test",
		Status:    core.StatusQueued,
		CreatedAt: at,
		UpdatedAt: at,
	}
}

// listAll returns the full newest-first listing, failing the test on
// error.
func listAll(t *testing.T, s Store) []*core.Operation {
	t.Helper()
	ops, err := s.List(ListQuery{})
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	return ops
}

// listIDs flattens a page to its IDs for order assertions.
func listIDs(ops []*core.Operation) []string {
	ids := make([]string, len(ops))
	for i, op := range ops {
		ids[i] = op.ID
	}
	return ids
}

// runStoreConformance runs the full contract against fresh stores from
// mk.
func runStoreConformance(t *testing.T, mk func(t testing.TB) Store) {
	t0 := time.Unix(1000, 0)

	t.Run("GetNotFound", func(t *testing.T) {
		s := mk(t)
		if _, err := s.Get("missing"); !errors.Is(err, core.ErrNotFound) {
			t.Errorf("Get(missing) = %v, want ErrNotFound", err)
		}
	})

	t.Run("UpdateNotFound", func(t *testing.T) {
		s := mk(t)
		err := s.Update("missing", func(*core.Operation) { t.Error("fn called for missing op") })
		if !errors.Is(err, core.ErrNotFound) {
			t.Errorf("Update(missing) = %v, want ErrNotFound", err)
		}
	})

	// The copy-on-write contract: snapshots handed out by Get and List
	// are immutable — a later Update must never be observable through
	// a previously returned pointer, because Update publishes a fresh
	// copy instead of mutating in place.
	t.Run("PublishedSnapshotsAreImmutable", func(t *testing.T) {
		s := mk(t)
		s.Put(mkOp("a", t0))
		before, err := s.Get("a")
		if err != nil {
			t.Fatal(err)
		}
		pageBefore := listAll(t, s)
		if err := s.Update("a", func(op *core.Operation) {
			op.Status = core.StatusRunning
			op.UpdatedAt = t0.Add(time.Minute)
		}); err != nil {
			t.Fatal(err)
		}
		if before.Status != core.StatusQueued || !before.UpdatedAt.Equal(t0) {
			t.Errorf("Update mutated a published snapshot in place: status=%s updated=%v",
				before.Status, before.UpdatedAt)
		}
		if pageBefore[0].Status != core.StatusQueued {
			t.Errorf("Update mutated a listed snapshot in place: status=%s", pageBefore[0].Status)
		}
		after, err := s.Get("a")
		if err != nil {
			t.Fatal(err)
		}
		if after.Status != core.StatusRunning {
			t.Errorf("Get after Update = %s, want running (fresh copy published)", after.Status)
		}
	})

	t.Run("PutBatchStoresAll", func(t *testing.T) {
		s := mk(t)
		ops := make([]*core.Operation, 10)
		for i := range ops {
			ops[i] = mkOp(fmt.Sprintf("op-%02d", i), t0.Add(time.Duration(i)*time.Second))
		}
		s.PutBatch(ops)
		if got := s.Len(); got != len(ops) {
			t.Fatalf("Len after PutBatch = %d, want %d", got, len(ops))
		}
		for _, op := range ops {
			got, err := s.Get(op.ID)
			if err != nil {
				t.Fatalf("Get(%s): %v", op.ID, err)
			}
			if got.Status != core.StatusQueued {
				t.Errorf("batched op %s status = %s, want queued", op.ID, got.Status)
			}
		}
	})

	t.Run("PutReplaces", func(t *testing.T) {
		s := mk(t)
		s.Put(mkOp("a", t0))
		replacement := mkOp("a", t0)
		replacement.Status = core.StatusRunning
		s.Put(replacement)
		got, err := s.Get("a")
		if err != nil {
			t.Fatal(err)
		}
		if got.Status != core.StatusRunning {
			t.Errorf("Put did not replace: status = %s", got.Status)
		}
		if s.Len() != 1 {
			t.Errorf("Len after replace = %d, want 1", s.Len())
		}
	})

	t.Run("PutReplaceWithNewCreatedAtReorders", func(t *testing.T) {
		s := mk(t)
		s.Put(mkOp("a", t0))
		s.Put(mkOp("b", t0.Add(time.Second)))
		// Re-put a with a newer CreatedAt: the index entry must move,
		// not duplicate.
		s.Put(mkOp("a", t0.Add(2*time.Second)))
		want := []string{"a", "b"}
		if got := listIDs(listAll(t, s)); fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("List after re-put = %v, want %v", got, want)
		}
		if s.Len() != 2 {
			t.Errorf("Len after re-put = %d, want 2", s.Len())
		}
	})

	t.Run("ListNewestFirst", func(t *testing.T) {
		s := mk(t)
		// Insert out of order; two share a CreatedAt to exercise the
		// ID tie-break.
		s.Put(mkOp("mid-b", t0.Add(time.Second)))
		s.Put(mkOp("old", t0))
		s.Put(mkOp("new", t0.Add(2*time.Second)))
		s.Put(mkOp("mid-a", t0.Add(time.Second)))
		want := []string{"new", "mid-a", "mid-b", "old"}
		if got := listIDs(listAll(t, s)); fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("List order = %v, want %v", got, want)
		}
	})

	t.Run("ListLimit", func(t *testing.T) {
		s := mk(t)
		for i := 0; i < 5; i++ {
			s.Put(mkOp(fmt.Sprintf("op-%d", i), t0.Add(time.Duration(i)*time.Second)))
		}
		page, err := s.List(ListQuery{Limit: 2})
		if err != nil {
			t.Fatal(err)
		}
		if want := []string{"op-4", "op-3"}; fmt.Sprint(listIDs(page)) != fmt.Sprint(want) {
			t.Errorf("List(limit=2) = %v, want %v", listIDs(page), want)
		}
		if page, _ := s.List(ListQuery{Limit: 100}); len(page) != 5 {
			t.Errorf("List(limit=100) returned %d ops, want all 5", len(page))
		}
	})

	t.Run("ListStatusFilter", func(t *testing.T) {
		s := mk(t)
		for i := 0; i < 6; i++ {
			op := mkOp(fmt.Sprintf("op-%d", i), t0.Add(time.Duration(i)*time.Second))
			if i%2 == 0 {
				op.Status = core.StatusDone
			}
			s.Put(op)
		}
		done, err := s.List(ListQuery{Status: core.StatusDone})
		if err != nil {
			t.Fatal(err)
		}
		if want := []string{"op-4", "op-2", "op-0"}; fmt.Sprint(listIDs(done)) != fmt.Sprint(want) {
			t.Errorf("List(status=done) = %v, want %v", listIDs(done), want)
		}
		capped, _ := s.List(ListQuery{Status: core.StatusDone, Limit: 2})
		if want := []string{"op-4", "op-2"}; fmt.Sprint(listIDs(capped)) != fmt.Sprint(want) {
			t.Errorf("List(status=done, limit=2) = %v, want %v", listIDs(capped), want)
		}
	})

	t.Run("CursorPagination", func(t *testing.T) {
		s := mk(t)
		const n = 7
		for i := 0; i < n; i++ {
			s.Put(mkOp(fmt.Sprintf("op-%d", i), t0.Add(time.Duration(i)*time.Second)))
		}
		full := listIDs(listAll(t, s))

		// Walk the whole store in pages of 2 and require the
		// concatenation to equal the one-shot listing exactly.
		var paged []string
		cursor := ""
		for {
			page, err := s.List(ListQuery{Cursor: cursor, Limit: 2})
			if err != nil {
				t.Fatal(err)
			}
			if len(page) == 0 {
				break
			}
			paged = append(paged, listIDs(page)...)
			cursor = page[len(page)-1].ID
		}
		if fmt.Sprint(paged) != fmt.Sprint(full) {
			t.Errorf("paged walk = %v, want %v", paged, full)
		}

		// A cursor without a limit returns the whole remainder.
		rest, err := s.List(ListQuery{Cursor: "op-4"})
		if err != nil {
			t.Fatal(err)
		}
		if want := []string{"op-3", "op-2", "op-1", "op-0"}; fmt.Sprint(listIDs(rest)) != fmt.Sprint(want) {
			t.Errorf("List(cursor=op-4) = %v, want %v", listIDs(rest), want)
		}
	})

	t.Run("CursorWithTies", func(t *testing.T) {
		s := mk(t)
		// All four share CreatedAt; order is ascending ID, and a
		// cursor in the middle of the tie must not skip or repeat.
		for _, id := range []string{"c", "a", "d", "b"} {
			s.Put(mkOp(id, t0))
		}
		page, err := s.List(ListQuery{Cursor: "b", Limit: 10})
		if err != nil {
			t.Fatal(err)
		}
		if want := []string{"c", "d"}; fmt.Sprint(listIDs(page)) != fmt.Sprint(want) {
			t.Errorf("List(cursor=b) among ties = %v, want %v", listIDs(page), want)
		}
	})

	t.Run("CursorWithStatusFilter", func(t *testing.T) {
		s := mk(t)
		for i := 0; i < 6; i++ {
			op := mkOp(fmt.Sprintf("op-%d", i), t0.Add(time.Duration(i)*time.Second))
			if i%2 == 0 {
				op.Status = core.StatusDone
			}
			s.Put(op)
		}
		// The cursor may name an op outside the filter; the page holds
		// only matching ops strictly after it.
		page, err := s.List(ListQuery{Status: core.StatusDone, Cursor: "op-3", Limit: 10})
		if err != nil {
			t.Fatal(err)
		}
		if want := []string{"op-2", "op-0"}; fmt.Sprint(listIDs(page)) != fmt.Sprint(want) {
			t.Errorf("List(status=done, cursor=op-3) = %v, want %v", listIDs(page), want)
		}
	})

	t.Run("CursorUnknownYieldsEmptyPage", func(t *testing.T) {
		s := mk(t)
		s.Put(mkOp("a", t0))
		page, err := s.List(ListQuery{Cursor: "never-existed", Limit: 5})
		if err != nil {
			t.Fatalf("List(unknown cursor) = %v, want empty page, not error", err)
		}
		if page == nil || len(page) != 0 {
			t.Errorf("List(unknown cursor) = %v, want non-nil empty page", page)
		}
	})

	t.Run("CursorToleratesEviction", func(t *testing.T) {
		s := mk(t)
		cutoff := t0.Add(time.Minute)
		for i := 0; i < 6; i++ {
			op := mkOp(fmt.Sprintf("op-%d", i), t0.Add(time.Duration(i)*time.Second))
			if i == 2 || i == 3 {
				op.Status = core.StatusDone // evictable
			}
			s.Put(op)
		}
		if got := s.SweepTerminalBefore(cutoff); got != 2 {
			t.Fatalf("sweep evicted %d, want 2", got)
		}
		// A surviving cursor resumes correctly across the hole left by
		// eviction.
		page, err := s.List(ListQuery{Cursor: "op-4", Limit: 10})
		if err != nil {
			t.Fatal(err)
		}
		if want := []string{"op-1", "op-0"}; fmt.Sprint(listIDs(page)) != fmt.Sprint(want) {
			t.Errorf("List(cursor=op-4) after eviction = %v, want %v", listIDs(page), want)
		}
		// The evicted op's ID as cursor yields an empty page: the
		// client fell behind retention and must restart from the top.
		page, err = s.List(ListQuery{Cursor: "op-2", Limit: 10})
		if err != nil {
			t.Fatal(err)
		}
		if len(page) != 0 {
			t.Errorf("List(evicted cursor) = %v, want empty page", listIDs(page))
		}
	})

	t.Run("UpdateDoesNotReorder", func(t *testing.T) {
		s := mk(t)
		for i := 0; i < 4; i++ {
			s.Put(mkOp(fmt.Sprintf("op-%d", i), t0.Add(time.Duration(i)*time.Second)))
		}
		before := listIDs(listAll(t, s))
		if err := s.Update("op-1", func(op *core.Operation) {
			op.Status = core.StatusDone
			op.UpdatedAt = t0.Add(time.Hour) // UpdatedAt is not the sort key
		}); err != nil {
			t.Fatal(err)
		}
		after := listIDs(listAll(t, s))
		if fmt.Sprint(before) != fmt.Sprint(after) {
			t.Errorf("Update reordered the listing: %v -> %v", before, after)
		}
	})

	t.Run("UpdateAtomicUnderContention", func(t *testing.T) {
		s := mk(t)
		s.Put(mkOp("ctr", t0))
		const goroutines, updates = 8, 200
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < updates; i++ {
					err := s.Update("ctr", func(op *core.Operation) {
						// Read-modify-write; lost updates show up as a
						// final time short of the expected total.
						op.UpdatedAt = op.UpdatedAt.Add(time.Second)
					})
					if err != nil {
						t.Errorf("Update: %v", err)
						return
					}
				}
			}()
		}
		wg.Wait()
		got, err := s.Get("ctr")
		if err != nil {
			t.Fatal(err)
		}
		want := t0.Add(goroutines * updates * time.Second)
		if !got.UpdatedAt.Equal(want) {
			t.Errorf("UpdatedAt after %d atomic updates = %v, want %v (lost updates)",
				goroutines*updates, got.UpdatedAt, want)
		}
	})

	t.Run("ListConcurrentWithUpdates", func(t *testing.T) {
		// Pagination while workers transition: pages must always be
		// well-formed (no nils, no duplicates, correct order), and old
		// pages must stay internally consistent.
		s := mk(t)
		const n = 64
		for i := 0; i < n; i++ {
			s.Put(mkOp(fmt.Sprintf("op-%02d", i), t0.Add(time.Duration(i)*time.Second)))
		}
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := fmt.Sprintf("op-%02d", i%n)
				_ = s.Update(id, func(op *core.Operation) {
					op.UpdatedAt = op.UpdatedAt.Add(time.Millisecond)
				})
			}
		}()
		for round := 0; round < 50; round++ {
			cursor := ""
			seen := make(map[string]bool, n)
			for {
				page, err := s.List(ListQuery{Cursor: cursor, Limit: 7})
				if err != nil {
					t.Fatalf("List: %v", err)
				}
				if len(page) == 0 {
					break
				}
				for _, op := range page {
					if op == nil {
						t.Fatal("List page contains nil")
					}
					if seen[op.ID] {
						t.Fatalf("List pages repeated %s", op.ID)
					}
					seen[op.ID] = true
				}
				cursor = page[len(page)-1].ID
			}
			if len(seen) != n {
				t.Fatalf("paged walk saw %d ops, want %d", len(seen), n)
			}
		}
		close(stop)
		wg.Wait()
	})

	t.Run("DeleteIdempotent", func(t *testing.T) {
		s := mk(t)
		s.Put(mkOp("a", t0))
		s.Delete("a")
		if _, err := s.Get("a"); !errors.Is(err, core.ErrNotFound) {
			t.Errorf("Get after Delete = %v, want ErrNotFound", err)
		}
		s.Delete("a") // deleting again must be a no-op
		s.Delete("never-existed")
		if s.Len() != 0 {
			t.Errorf("Len after deletes = %d, want 0", s.Len())
		}
	})

	t.Run("DeleteDecrementsLen", func(t *testing.T) {
		s := mk(t)
		const n = 10
		for i := 0; i < n; i++ {
			s.Put(mkOp(fmt.Sprintf("op-%02d", i), t0.Add(time.Duration(i))))
		}
		for i := 0; i < n; i++ {
			s.Delete(fmt.Sprintf("op-%02d", i))
			if got, want := s.Len(), n-i-1; got != want {
				t.Fatalf("Len after deleting %d ops = %d, want %d", i+1, got, want)
			}
		}
		if got := len(listAll(t, s)); got != 0 {
			t.Errorf("List after deleting everything has %d ops, want 0", got)
		}
	})

	t.Run("DeleteConcurrentWithUpdate", func(t *testing.T) {
		// The janitor deletes terminal operations while workers
		// update others; hammer one ID from both sides. Every Update
		// must either apply atomically or report ErrNotFound — never
		// panic, deadlock, or resurrect the deleted operation.
		s := mk(t)
		const rounds = 100
		for r := 0; r < rounds; r++ {
			id := fmt.Sprintf("op-%03d", r)
			s.Put(mkOp(id, t0))
			var wg sync.WaitGroup
			wg.Add(2)
			go func() {
				defer wg.Done()
				for i := 0; i < 10; i++ {
					err := s.Update(id, func(op *core.Operation) {
						op.UpdatedAt = op.UpdatedAt.Add(time.Second)
					})
					if err != nil && !errors.Is(err, core.ErrNotFound) {
						t.Errorf("Update racing Delete: %v", err)
						return
					}
				}
			}()
			go func() {
				defer wg.Done()
				s.Delete(id)
			}()
			wg.Wait()
			if _, err := s.Get(id); !errors.Is(err, core.ErrNotFound) {
				t.Fatalf("round %d: op resurrected after Delete: %v", r, err)
			}
		}
		if got := s.Len(); got != 0 {
			t.Errorf("Len after concurrent delete rounds = %d, want 0", got)
		}
	})

	t.Run("SweepTerminalBefore", func(t *testing.T) {
		s := mk(t)
		mkAt := func(id string, status core.Status, at time.Time) {
			op := mkOp(id, t0)
			op.Status = status
			op.UpdatedAt = at
			s.Put(op)
		}
		cutoff := t0.Add(time.Minute)
		mkAt("old-done", core.StatusDone, t0)                        // evict
		mkAt("old-failed", core.StatusFailed, t0)                    // evict
		mkAt("old-cancelled", core.StatusCancelled, t0)              // evict
		mkAt("old-queued", core.StatusQueued, t0)                    // keep: not terminal
		mkAt("old-running", core.StatusRunning, t0)                  // keep: not terminal
		mkAt("fresh-done", core.StatusDone, cutoff.Add(time.Second)) // keep: too fresh
		mkAt("at-cutoff", core.StatusDone, cutoff)                   // keep: not strictly before
		if got := s.SweepTerminalBefore(cutoff); got != 3 {
			t.Errorf("SweepTerminalBefore evicted %d, want 3", got)
		}
		for _, id := range []string{"old-done", "old-failed", "old-cancelled"} {
			if _, err := s.Get(id); !errors.Is(err, core.ErrNotFound) {
				t.Errorf("Get(%s) after sweep = %v, want ErrNotFound", id, err)
			}
		}
		for _, id := range []string{"old-queued", "old-running", "fresh-done", "at-cutoff"} {
			if _, err := s.Get(id); err != nil {
				t.Errorf("sweep evicted %s: %v", id, err)
			}
		}
		if got := s.Len(); got != 4 {
			t.Errorf("Len after sweep = %d, want 4", got)
		}
		if got := len(listAll(t, s)); got != 4 {
			t.Errorf("List after sweep has %d ops, want 4 (index compacted with map)", got)
		}
		if got := s.SweepTerminalBefore(cutoff); got != 0 {
			t.Errorf("second sweep evicted %d, want 0 (idempotent)", got)
		}
	})

	t.Run("LenCountsEverything", func(t *testing.T) {
		s := mk(t)
		const n = 100
		for i := 0; i < n; i++ {
			s.Put(mkOp(fmt.Sprintf("op-%03d", i), t0.Add(time.Duration(i))))
		}
		if got := s.Len(); got != n {
			t.Errorf("Len = %d, want %d", got, n)
		}
		if got := len(listAll(t, s)); got != n {
			t.Errorf("len(List()) = %d, want %d", got, n)
		}
	})
}

func TestNewShardedStoreRoundsToPowerOfTwo(t *testing.T) {
	for _, tc := range []struct {
		n    int
		want int
	}{
		{-1, DefaultShardCount()},
		{0, DefaultShardCount()},
		{1, 1},
		{2, 2},
		{3, 4},
		{16, 16},
		{17, 32},
		{maxShardCount, maxShardCount},
		{maxShardCount + 1, maxShardCount},
		{1 << 62, maxShardCount}, // would overflow the round-up without the clamp
	} {
		s := NewShardedStore(tc.n).(*shardedStore)
		if got := len(s.shards); got != tc.want {
			t.Errorf("NewShardedStore(%d) has %d shards, want %d", tc.n, got, tc.want)
		}
		if s.mask != uint32(len(s.shards)-1) {
			t.Errorf("NewShardedStore(%d) mask = %d, want %d", tc.n, s.mask, len(s.shards)-1)
		}
	}
}

func TestDefaultShardCountTracksGOMAXPROCS(t *testing.T) {
	got := DefaultShardCount()
	if got != nextPowerOfTwo(got) {
		t.Errorf("DefaultShardCount() = %d, want a power of two", got)
	}
	if got < 1 || got > maxShardCount {
		t.Errorf("DefaultShardCount() = %d, out of range [1, %d]", got, maxShardCount)
	}
}

func TestNextPowerOfTwo(t *testing.T) {
	for _, tc := range []struct{ n, want int }{
		{1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {9, 16}, {1000, 1024},
	} {
		if got := nextPowerOfTwo(tc.n); got != tc.want {
			t.Errorf("nextPowerOfTwo(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

// TestShardedStoreSpreadsKeys sanity-checks the hash: real IDs from
// core.NewID must not collapse into a few shards.
func TestShardedStoreSpreadsKeys(t *testing.T) {
	s := NewShardedStore(8).(*shardedStore)
	const n = 4096
	counts := make([]int, len(s.shards))
	for i := 0; i < n; i++ {
		counts[s.shardIndex(core.NewID())]++
	}
	// Perfectly uniform would be 512 per shard; flag anything worse
	// than a 4x skew, which would indicate a broken hash.
	for i, c := range counts {
		if c < n/len(counts)/4 || c > n/len(counts)*4 {
			t.Errorf("shard %d holds %d of %d keys — hash is badly skewed (%v)", i, c, n, counts)
		}
	}
}
