package engine

import (
	"sync"
	"time"
)

// meterBuckets is the ring size of per-second drain counters; it must
// exceed meterWindow so a full window is always retained.
const meterBuckets = 16

// meterWindow is how many trailing seconds the drain rate averages
// over.
const meterWindow = 10

// drainMeter measures the queue's drain rate: workers record each
// dequeue into per-second ring buckets, and rate averages the trailing
// window. The engine computes Retry-After for shed submissions from
// it — depth over drain rate is the honest "come back in" estimate.
// Plain mutex, nanosecond critical sections; not a policed shard type.
type drainMeter struct {
	mu      sync.Mutex
	seconds [meterBuckets]int64
	counts  [meterBuckets]int64
}

// record counts one dequeued operation against the current second.
func (m *drainMeter) record(now time.Time) {
	sec := now.Unix()
	i := sec % meterBuckets
	m.mu.Lock()
	if m.seconds[i] != sec {
		m.seconds[i] = sec
		m.counts[i] = 0
	}
	m.counts[i]++
	m.mu.Unlock()
}

// rate returns the average drained operations per second over the
// trailing window, zero when nothing drained.
func (m *drainMeter) rate(now time.Time) float64 {
	sec := now.Unix()
	var total int64
	m.mu.Lock()
	for i := range m.seconds {
		if sec-m.seconds[i] < meterWindow {
			total += m.counts[i]
		}
	}
	m.mu.Unlock()
	return float64(total) / meterWindow
}
