package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"opdaemon/internal/core"
)

// waitOp polls until the operation satisfies pred or a 5s deadline
// expires. It is goroutine-safe (no t.Fatal) so concurrent tests can
// report the error themselves.
func waitOp(e *Engine, id string, pred func(*core.Operation) bool) (*core.Operation, error) {
	deadline := time.Now().Add(5 * time.Second)
	for {
		op, err := e.Get(id)
		if err != nil {
			return nil, fmt.Errorf("get %q: %w", id, err)
		}
		if pred(op) {
			return op, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("op %q: timed out in status %s", id, op.Status)
		}
		time.Sleep(time.Millisecond)
	}
}

func terminal(op *core.Operation) bool { return op.Status.Terminal() }

// listEngine lists one page through the engine, failing the test on
// error.
func listEngine(t *testing.T, e *Engine, q ListQuery) []*core.Operation {
	t.Helper()
	ops, err := e.List(q)
	if err != nil {
		t.Fatalf("List(%+v): %v", q, err)
	}
	return ops
}

// waitStatus polls until the operation reaches a terminal status.
func waitStatus(t *testing.T, e *Engine, id string) *core.Operation {
	t.Helper()
	op, err := waitOp(e, id, terminal)
	if err != nil {
		t.Fatal(err)
	}
	return op
}

func TestSubmitRunsToDone(t *testing.T) {
	e := New(Config{Workers: 2})
	defer e.Shutdown(context.Background())

	e.Register("echo", func(_ context.Context, op *core.Operation) (any, error) {
		return op.Params["msg"], nil
	})

	op, err := e.Submit(context.Background(), "echo", map[string]any{"msg": "hello"})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if op.Status != core.StatusQueued {
		t.Errorf("submitted status = %s, want %s", op.Status, core.StatusQueued)
	}

	final := waitStatus(t, e, op.ID)
	if final.Status != core.StatusDone {
		t.Fatalf("final status = %s (error %q), want %s", final.Status, final.Error, core.StatusDone)
	}
	if string(final.Result) != `"hello"` {
		t.Errorf("result = %s, want %q marshalled", final.Result, "hello")
	}
	if final.Error != "" {
		t.Errorf("error = %q, want empty", final.Error)
	}
}

func TestFailedOperationPropagatesError(t *testing.T) {
	e := New(Config{Workers: 1})
	defer e.Shutdown(context.Background())

	boom := errors.New("disk exploded")
	e.Register("explode", func(context.Context, *core.Operation) (any, error) {
		return nil, boom
	})

	op, err := e.Submit(context.Background(), "explode", nil)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	final := waitStatus(t, e, op.ID)
	if final.Status != core.StatusFailed {
		t.Fatalf("final status = %s, want %s", final.Status, core.StatusFailed)
	}
	if final.Error != boom.Error() {
		t.Errorf("error = %q, want %q", final.Error, boom.Error())
	}
	if final.Result != nil {
		t.Errorf("result = %s, want nil", final.Result)
	}
}

func TestPanickingHandlerFailsOperation(t *testing.T) {
	e := New(Config{Workers: 1})
	defer e.Shutdown(context.Background())

	e.Register("panic", func(context.Context, *core.Operation) (any, error) {
		panic("handler bug")
	})
	e.Register("ok", func(context.Context, *core.Operation) (any, error) {
		return "fine", nil
	})

	bad, err := e.Submit(context.Background(), "panic", nil)
	if err != nil {
		t.Fatalf("Submit(panic): %v", err)
	}
	final := waitStatus(t, e, bad.ID)
	if final.Status != core.StatusFailed {
		t.Fatalf("panicked op status = %s, want failed", final.Status)
	}
	if final.Error == "" {
		t.Error("panicked op has empty error message")
	}

	// The worker must survive the panic and keep processing.
	good, err := e.Submit(context.Background(), "ok", nil)
	if err != nil {
		t.Fatalf("Submit(ok): %v", err)
	}
	if final := waitStatus(t, e, good.ID); final.Status != core.StatusDone {
		t.Errorf("op after panic status = %s, want done", final.Status)
	}
}

func TestSubmitValidation(t *testing.T) {
	e := New(Config{Workers: 1})
	defer e.Shutdown(context.Background())

	if _, err := e.Submit(context.Background(), "nope", nil); !errors.Is(err, core.ErrUnknownKind) {
		t.Errorf("Submit(unknown kind) error = %v, want ErrUnknownKind", err)
	}
	var inv *core.InvalidError
	if _, err := e.Submit(context.Background(), "", nil); !errors.As(err, &inv) {
		t.Errorf("Submit(empty kind) error = %v, want *core.InvalidError", err)
	}
}

func TestGetUnknownID(t *testing.T) {
	e := New(Config{})
	defer e.Shutdown(context.Background())
	if _, err := e.Get("missing"); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("Get(missing) error = %v, want ErrNotFound", err)
	}
}

func TestConcurrentSubmitPoll(t *testing.T) {
	e := New(Config{Workers: 8, QueueDepth: 4096})
	defer e.Shutdown(context.Background())

	e.Register("inc", func(_ context.Context, op *core.Operation) (any, error) {
		n, _ := op.Params["n"].(int)
		return n + 1, nil
	})

	const clients, perClient = 16, 25
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				op, err := e.Submit(context.Background(), "inc", map[string]any{"n": i})
				if err != nil {
					errs <- fmt.Errorf("client %d submit %d: %w", c, i, err)
					return
				}
				got, err := waitOp(e, op.ID, terminal)
				if err != nil {
					errs <- fmt.Errorf("client %d: %w", c, err)
					return
				}
				if got.Status != core.StatusDone {
					errs <- fmt.Errorf("client %d op %s: status %s (%s)", c, op.ID, got.Status, got.Error)
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	if got := len(listEngine(t, e, ListQuery{Status: core.StatusDone})); got != clients*perClient {
		t.Errorf("done operations = %d, want %d", got, clients*perClient)
	}
}

func TestListFilterAndOrder(t *testing.T) {
	// Clock is called from submitter and worker goroutines; guard it.
	var clockMu sync.Mutex
	now := time.Unix(1000, 0)
	clock := func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		now = now.Add(time.Second)
		return now
	}
	e := New(Config{Workers: 1, Clock: clock})
	defer e.Shutdown(context.Background())

	e.Register("ok", func(context.Context, *core.Operation) (any, error) { return nil, nil })
	e.Register("bad", func(context.Context, *core.Operation) (any, error) { return nil, errors.New("x") })

	first, _ := e.Submit(context.Background(), "ok", nil)
	second, _ := e.Submit(context.Background(), "bad", nil)
	waitStatus(t, e, first.ID)
	waitStatus(t, e, second.ID)

	all := listEngine(t, e, ListQuery{})
	if len(all) != 2 {
		t.Fatalf("List({}) = %d ops, want 2", len(all))
	}
	if all[0].ID != second.ID {
		t.Errorf("newest-first order violated: got %s first, want %s", all[0].ID, second.ID)
	}
	failed := listEngine(t, e, ListQuery{Status: core.StatusFailed})
	if len(failed) != 1 || failed[0].ID != second.ID {
		t.Errorf("List(failed) = %v, want exactly %s", failed, second.ID)
	}
}

func TestShutdownDrainsQueue(t *testing.T) {
	e := New(Config{Workers: 2, QueueDepth: 256})

	var mu sync.Mutex
	ran := 0
	e.Register("slow", func(context.Context, *core.Operation) (any, error) {
		time.Sleep(2 * time.Millisecond)
		mu.Lock()
		ran++
		mu.Unlock()
		return nil, nil
	})

	const n = 50
	ids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		op, err := e.Submit(context.Background(), "slow", nil)
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		ids = append(ids, op.ID)
	}

	if err := e.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	mu.Lock()
	if ran != n {
		t.Errorf("handlers ran = %d, want %d (queue not drained)", ran, n)
	}
	mu.Unlock()
	for _, id := range ids {
		op, err := e.Get(id)
		if err != nil {
			t.Fatalf("Get(%q): %v", id, err)
		}
		if op.Status != core.StatusDone {
			t.Errorf("op %s status = %s after drain, want done", id, op.Status)
		}
	}

	if _, err := e.Submit(context.Background(), "slow", nil); !errors.Is(err, core.ErrShuttingDown) {
		t.Errorf("Submit after shutdown error = %v, want ErrShuttingDown", err)
	}
	if err := e.Shutdown(context.Background()); err != nil {
		t.Errorf("second Shutdown: %v", err)
	}
}

func TestShutdownDeadlineCancelsHandlers(t *testing.T) {
	e := New(Config{Workers: 1})
	started := make(chan struct{})
	e.Register("hang", func(ctx context.Context, _ *core.Operation) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	op, err := e.Submit(context.Background(), "hang", nil)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := e.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown error = %v, want DeadlineExceeded", err)
	}
	// Shutdown returns without waiting for handlers that ignore the
	// deadline; this one observes the cancelled run context, so the
	// operation must settle as failed shortly after.
	if final := waitStatus(t, e, op.ID); final.Status != core.StatusFailed {
		t.Errorf("status after cancelled shutdown = %s, want failed", final.Status)
	}
}

func TestSubmitBatchRunsAll(t *testing.T) {
	e := New(Config{Workers: 4})
	defer e.Shutdown(context.Background())
	e.Register("echo", func(_ context.Context, op *core.Operation) (any, error) {
		return op.Params["i"], nil
	})

	const n = 20
	items := make([]BatchItem, n)
	for i := range items {
		items[i] = BatchItem{Kind: "echo", Params: map[string]any{"i": i}}
	}
	ops, err := e.SubmitBatch(context.Background(), items)
	if err != nil {
		t.Fatalf("SubmitBatch: %v", err)
	}
	if len(ops) != n {
		t.Fatalf("SubmitBatch returned %d ops, want %d", len(ops), n)
	}
	for i, op := range ops {
		if op.Status != core.StatusQueued {
			t.Errorf("op %d submitted status = %s, want queued", i, op.Status)
		}
		final := waitStatus(t, e, op.ID)
		if final.Status != core.StatusDone {
			t.Errorf("op %d status = %s (%s), want done", i, final.Status, final.Error)
		}
		if want := fmt.Sprintf("%d", i); string(final.Result) != want {
			t.Errorf("op %d result = %s, want %s (batch order preserved)", i, final.Result, want)
		}
	}
}

func TestSubmitBatchValidatesAtomically(t *testing.T) {
	e := New(Config{Workers: 1})
	defer e.Shutdown(context.Background())
	e.Register("ok", func(context.Context, *core.Operation) (any, error) { return nil, nil })

	_, err := e.SubmitBatch(context.Background(), []BatchItem{
		{Kind: "ok"},
		{Kind: "nope"},
		{Kind: "ok"},
		{Kind: ""},
	})
	var berr *core.BatchError
	if !errors.As(err, &berr) {
		t.Fatalf("SubmitBatch error = %v, want *core.BatchError", err)
	}
	if berr.Total != 4 || len(berr.Items) != 2 {
		t.Fatalf("BatchError = %d invalid of %d, want 2 of 4", len(berr.Items), berr.Total)
	}
	if berr.Items[0].Index != 1 || !errors.Is(berr.Items[0].Err, core.ErrUnknownKind) {
		t.Errorf("first item error = index %d, %v; want index 1, ErrUnknownKind", berr.Items[0].Index, berr.Items[0].Err)
	}
	var inv *core.InvalidError
	if berr.Items[1].Index != 3 || !errors.As(berr.Items[1].Err, &inv) {
		t.Errorf("second item error = index %d, %v; want index 3, *core.InvalidError", berr.Items[1].Index, berr.Items[1].Err)
	}
	// Atomicity: the valid items must not have been stored or run.
	if got := len(listEngine(t, e, ListQuery{})); got != 0 {
		t.Errorf("store holds %d ops after rejected batch, want 0", got)
	}
}

func TestSubmitBatchEmpty(t *testing.T) {
	e := New(Config{Workers: 1})
	defer e.Shutdown(context.Background())
	var inv *core.InvalidError
	if _, err := e.SubmitBatch(context.Background(), nil); !errors.As(err, &inv) {
		t.Errorf("SubmitBatch(nil) error = %v, want *core.InvalidError", err)
	}
}

func TestSubmitBatchQueueFullIsAllOrNothing(t *testing.T) {
	e := New(Config{Workers: 1, QueueDepth: 2})
	defer e.Shutdown(context.Background())

	release := make(chan struct{})
	e.Register("block", func(context.Context, *core.Operation) (any, error) {
		<-release
		return nil, nil
	})

	// Occupy the single worker, then fill one of the two queue slots,
	// so a 2-item batch needs more capacity than remains.
	first, err := e.Submit(context.Background(), "block", nil)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := waitOp(e, first.ID, func(op *core.Operation) bool {
		return op.Status == core.StatusRunning
	}); err != nil {
		t.Fatalf("first op never started running: %v", err)
	}
	if _, err := e.Submit(context.Background(), "block", nil); err != nil {
		t.Fatalf("Submit (fills one slot): %v", err)
	}

	over, err := e.SubmitBatch(context.Background(), []BatchItem{{Kind: "block"}, {Kind: "block"}})
	if !errors.Is(err, core.ErrQueueFull) {
		t.Fatalf("overflowing batch error = %v, want ErrQueueFull", err)
	}
	if over != nil {
		t.Errorf("overflowing batch returned ops %v, want nil", over)
	}
	if got := len(listEngine(t, e, ListQuery{})); got != 2 {
		t.Errorf("store holds %d ops after rejected batch, want 2 (no partial enqueue)", got)
	}

	// The failed reservation must have returned its slot: a batch
	// that fits the remaining capacity must now succeed.
	fits, err := e.SubmitBatch(context.Background(), []BatchItem{{Kind: "block"}})
	if err != nil {
		t.Fatalf("fitting batch after rejected batch: %v", err)
	}
	close(release)
	for _, op := range fits {
		waitStatus(t, e, op.ID)
	}
}

func TestSubmitBatchLargerThanQueueCapacity(t *testing.T) {
	e := New(Config{Workers: 1, QueueDepth: 2})
	defer e.Shutdown(context.Background())
	e.Register("ok", func(context.Context, *core.Operation) (any, error) { return nil, nil })

	// A batch that exceeds total queue capacity can never succeed, so
	// it must be a permanent InvalidError, not the retryable
	// ErrQueueFull.
	var inv *core.InvalidError
	_, err := e.SubmitBatch(context.Background(), []BatchItem{{Kind: "ok"}, {Kind: "ok"}, {Kind: "ok"}})
	if !errors.As(err, &inv) {
		t.Fatalf("over-capacity batch error = %v, want *core.InvalidError", err)
	}
	if got := len(listEngine(t, e, ListQuery{})); got != 0 {
		t.Errorf("store holds %d ops after over-capacity batch, want 0", got)
	}
}

func TestSubmitBatchAfterShutdown(t *testing.T) {
	e := New(Config{Workers: 1})
	e.Register("ok", func(context.Context, *core.Operation) (any, error) { return nil, nil })
	if err := e.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := e.SubmitBatch(context.Background(), []BatchItem{{Kind: "ok"}}); !errors.Is(err, core.ErrShuttingDown) {
		t.Errorf("SubmitBatch after shutdown error = %v, want ErrShuttingDown", err)
	}
}

func TestCancelQueuedNeverRuns(t *testing.T) {
	e := New(Config{Workers: 1, QueueDepth: 8})
	defer e.Shutdown(context.Background())

	release := make(chan struct{})
	e.Register("block", func(context.Context, *core.Operation) (any, error) {
		<-release
		return nil, nil
	})
	ran := make(chan string, 8)
	e.Register("track", func(_ context.Context, op *core.Operation) (any, error) {
		ran <- op.ID
		return nil, nil
	})

	// Occupy the single worker so the tracked op stays queued.
	blocker, err := e.Submit(context.Background(), "block", nil)
	if err != nil {
		t.Fatalf("Submit(block): %v", err)
	}
	if _, err := waitOp(e, blocker.ID, func(op *core.Operation) bool {
		return op.Status == core.StatusRunning
	}); err != nil {
		t.Fatalf("blocker never started: %v", err)
	}
	queued, err := e.Submit(context.Background(), "track", nil)
	if err != nil {
		t.Fatalf("Submit(track): %v", err)
	}

	snap, err := e.Cancel(queued.ID)
	if err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	if snap.Status != core.StatusCancelled {
		t.Errorf("cancelled queued op status = %s, want cancelled immediately", snap.Status)
	}
	if snap.CancelledAt.IsZero() {
		t.Error("cancelled op has zero CancelledAt")
	}
	if snap.Error == "" {
		t.Error("cancelled op has empty error message")
	}

	// Release the worker; it must skip the cancelled op, not run it.
	close(release)
	waitStatus(t, e, blocker.ID)
	if err := e.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	select {
	case id := <-ran:
		t.Errorf("handler ran for cancelled queued op %s", id)
	default:
	}
	final, err := e.Get(queued.ID)
	if err != nil {
		t.Fatalf("Get after drain: %v", err)
	}
	if final.Status != core.StatusCancelled {
		t.Errorf("status after drain = %s, want cancelled", final.Status)
	}
}

func TestCancelRunningSignalsContext(t *testing.T) {
	e := New(Config{Workers: 1})
	defer e.Shutdown(context.Background())

	started := make(chan struct{})
	e.Register("hang", func(ctx context.Context, _ *core.Operation) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	op, err := e.Submit(context.Background(), "hang", nil)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-started

	if _, err := e.Cancel(op.ID); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	final := waitStatus(t, e, op.ID)
	if final.Status != core.StatusCancelled {
		t.Fatalf("final status = %s (error %q), want cancelled", final.Status, final.Error)
	}
	if final.CancelledAt.IsZero() {
		t.Error("cancelled op has zero CancelledAt")
	}
	if final.Error != core.ErrCancelled.Error() {
		t.Errorf("error = %q, want %q", final.Error, core.ErrCancelled)
	}
}

func TestCancelErrors(t *testing.T) {
	e := New(Config{Workers: 1})
	defer e.Shutdown(context.Background())
	e.Register("ok", func(context.Context, *core.Operation) (any, error) { return nil, nil })

	if _, err := e.Cancel("missing"); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("Cancel(missing) error = %v, want ErrNotFound", err)
	}
	op, err := e.Submit(context.Background(), "ok", nil)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitStatus(t, e, op.ID)
	if _, err := e.Cancel(op.ID); !errors.Is(err, core.ErrAlreadyTerminal) {
		t.Errorf("Cancel(done op) error = %v, want ErrAlreadyTerminal", err)
	}
}

func TestPerKindDeadlineFailsSlowHandler(t *testing.T) {
	e := New(Config{Workers: 1})
	defer e.Shutdown(context.Background())

	e.Register("slow", func(ctx context.Context, _ *core.Operation) (any, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}, WithDeadline(20*time.Millisecond))

	op, err := e.Submit(context.Background(), "slow", nil)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if op.Deadline != 20*time.Millisecond {
		t.Errorf("submitted snapshot deadline = %s, want 20ms", op.Deadline)
	}
	final := waitStatus(t, e, op.ID)
	if final.Status != core.StatusFailed {
		t.Fatalf("final status = %s, want failed (deadline, not cancel)", final.Status)
	}
	if final.Error != context.DeadlineExceeded.Error() {
		t.Errorf("error = %q, want %q", final.Error, context.DeadlineExceeded)
	}
}

func TestDefaultDeadlineAppliesWhenKindHasNone(t *testing.T) {
	e := New(Config{Workers: 1, DefaultDeadline: 20 * time.Millisecond})
	defer e.Shutdown(context.Background())

	e.Register("slow", func(ctx context.Context, _ *core.Operation) (any, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	e.Register("fast", func(context.Context, *core.Operation) (any, error) {
		return "done", nil
	})

	slow, err := e.Submit(context.Background(), "slow", nil)
	if err != nil {
		t.Fatalf("Submit(slow): %v", err)
	}
	if slow.Deadline != 20*time.Millisecond {
		t.Errorf("default deadline not recorded: got %s", slow.Deadline)
	}
	if final := waitStatus(t, e, slow.ID); final.Status != core.StatusFailed {
		t.Errorf("slow op status = %s, want failed via default deadline", final.Status)
	}
	fast, err := e.Submit(context.Background(), "fast", nil)
	if err != nil {
		t.Fatalf("Submit(fast): %v", err)
	}
	if final := waitStatus(t, e, fast.ID); final.Status != core.StatusDone {
		t.Errorf("fast op status = %s, want done within deadline", final.Status)
	}
}

func TestGCEvictsOnlyExpiredTerminal(t *testing.T) {
	var clockMu sync.Mutex
	now := time.Unix(1000, 0)
	clock := func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		clockMu.Lock()
		now = now.Add(d)
		clockMu.Unlock()
	}

	// GCInterval is huge so only explicit GC() calls sweep, keeping
	// the test deterministic under the fake clock.
	e := New(Config{Workers: 2, Clock: clock, OpTTL: time.Minute, GCInterval: time.Hour})
	defer e.Shutdown(context.Background())

	e.Register("ok", func(context.Context, *core.Operation) (any, error) { return nil, nil })
	release := make(chan struct{})
	defer close(release)
	e.Register("block", func(context.Context, *core.Operation) (any, error) {
		<-release
		return nil, nil
	})

	// A running op must never be evicted, no matter how old.
	running, err := e.Submit(context.Background(), "block", nil)
	if err != nil {
		t.Fatalf("Submit(block): %v", err)
	}
	if _, err := waitOp(e, running.ID, func(op *core.Operation) bool {
		return op.Status == core.StatusRunning
	}); err != nil {
		t.Fatalf("blocker never started: %v", err)
	}
	done, err := e.Submit(context.Background(), "ok", nil)
	if err != nil {
		t.Fatalf("Submit(ok): %v", err)
	}
	waitStatus(t, e, done.ID)

	// Nothing is older than the TTL yet.
	if n := e.GC(); n != 0 {
		t.Errorf("GC before TTL evicted %d ops, want 0", n)
	}
	advance(2 * time.Minute)
	if n := e.GC(); n != 1 {
		t.Errorf("GC past TTL evicted %d ops, want exactly the terminal one", n)
	}
	stillThere, err := e.Get(running.ID)
	if err != nil {
		t.Fatalf("running op evicted: %v", err)
	}
	if stillThere.Status != core.StatusRunning {
		t.Fatalf("running op status = %s mid-test, want running", stillThere.Status)
	}
	if _, err := e.Get(done.ID); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("Get(evicted op) = %v, want ErrNotFound", err)
	}
}

func TestGCDisabledWithoutTTL(t *testing.T) {
	e := New(Config{Workers: 1})
	defer e.Shutdown(context.Background())
	e.Register("ok", func(context.Context, *core.Operation) (any, error) { return nil, nil })
	op, _ := e.Submit(context.Background(), "ok", nil)
	waitStatus(t, e, op.ID)
	if n := e.GC(); n != 0 {
		t.Errorf("GC without TTL evicted %d ops, want 0 (disabled)", n)
	}
	if _, err := e.Get(op.ID); err != nil {
		t.Errorf("op evicted with GC disabled: %v", err)
	}
}

func TestJanitorBoundsStoreUnderLoad(t *testing.T) {
	e := New(Config{Workers: 4, OpTTL: 30 * time.Millisecond, GCInterval: 10 * time.Millisecond})
	defer e.Shutdown(context.Background())
	e.Register("ok", func(context.Context, *core.Operation) (any, error) { return nil, nil })

	const n = 64
	for i := 0; i < n; i++ {
		if _, err := e.Submit(context.Background(), "ok", nil); err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
	}
	// Every op settles quickly; the janitor must eventually evict all
	// of them without any manual GC call.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if e.Stats().StoreLen == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("janitor never drained store: %d ops remain", e.Stats().StoreLen)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestStatsReportSaturation(t *testing.T) {
	e := New(Config{Workers: 3, QueueDepth: 7})
	defer e.Shutdown(context.Background())

	st := e.Stats()
	if st.Workers != 3 {
		t.Errorf("Workers = %d, want 3", st.Workers)
	}
	if st.QueueCapacity != 7 {
		t.Errorf("QueueCapacity = %d, want 7", st.QueueCapacity)
	}
	if st.QueueDepth != 0 || st.StoreLen != 0 {
		t.Errorf("idle engine reports depth=%d store=%d, want 0/0", st.QueueDepth, st.StoreLen)
	}

	release := make(chan struct{})
	e.Register("block", func(context.Context, *core.Operation) (any, error) {
		<-release
		return nil, nil
	})
	// Fill all workers plus two queued.
	for i := 0; i < 5; i++ {
		if _, err := e.Submit(context.Background(), "block", nil); err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
	}
	// Wait until the three workers have dequeued (released slots).
	deadline := time.Now().Add(5 * time.Second)
	for e.Stats().QueueDepth != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("QueueDepth = %d, want 2 (3 running + 2 queued)", e.Stats().QueueDepth)
		}
		time.Sleep(time.Millisecond)
	}
	if got := e.Stats().StoreLen; got != 5 {
		t.Errorf("StoreLen = %d, want 5", got)
	}
	close(release)
}

func TestQueueFull(t *testing.T) {
	e := New(Config{Workers: 1, QueueDepth: 1})
	defer e.Shutdown(context.Background())

	release := make(chan struct{})
	e.Register("block", func(context.Context, *core.Operation) (any, error) {
		<-release
		return nil, nil
	})

	// First submission occupies the single worker; fill the queue
	// behind it, then the next submission must fail fast.
	first, err := e.Submit(context.Background(), "block", nil)
	if err != nil {
		t.Fatalf("Submit 1: %v", err)
	}
	// Wait for the worker to pick up the first op so queue slots are
	// deterministic.
	if _, err := waitOp(e, first.ID, func(op *core.Operation) bool {
		return op.Status == core.StatusRunning
	}); err != nil {
		t.Fatalf("first op never started running: %v", err)
	}
	if _, err := e.Submit(context.Background(), "block", nil); err != nil {
		t.Fatalf("Submit 2 (fills queue): %v", err)
	}
	over, err := e.Submit(context.Background(), "block", nil)
	if !errors.Is(err, core.ErrQueueFull) {
		t.Fatalf("Submit 3 error = %v, want ErrQueueFull", err)
	}
	if over != nil {
		t.Errorf("overflow submission returned op %v, want nil", over)
	}
	if got := len(listEngine(t, e, ListQuery{})); got != 2 {
		t.Errorf("store holds %d ops after overflow, want 2 (no phantom record)", got)
	}
	close(release)
}
