package engine

import (
	"hash/maphash"
	"sync"
	"time"

	"opdaemon/internal/core"
)

// DefaultShardCount is the shard count NewShardedStore picks when the
// caller passes n <= 0. Sixteen shards keep per-shard maps warm while
// giving typical multi-core hosts enough lock granularity that
// submitters and workers rarely collide.
const DefaultShardCount = 16

// shardedStore is a Store partitioned into power-of-two shards, each a
// separately locked map. Operations are assigned to shards by a
// maphash of their ID (per-process random seed), so goroutines
// touching different operations almost always contend on different
// locks. It implements the same snapshot and ordering semantics as
// memStore; the conformance suite in store_conformance_test.go holds
// both to the same contract.
type shardedStore struct {
	shards []*storeShard
	// mask is len(shards)-1; with a power-of-two shard count,
	// hash&mask selects a shard without a modulo.
	mask uint32
}

// storeShard is one partition of a shardedStore: a mutex-guarded slice
// of the ID space.
type storeShard struct {
	mu  sync.RWMutex
	ops map[string]*core.Operation
}

// maxShardCount bounds the shard count. 2^16 shards is far beyond any
// useful lock granularity, and the cap keeps the power-of-two
// round-up below integer-overflow territory.
const maxShardCount = 1 << 16

// NewShardedStore returns an empty Store partitioned across n
// hash-selected shards. n is rounded up to the next power of two so
// shard selection is a bit mask; n <= 0 selects DefaultShardCount and
// n > 65536 is clamped there. A single-shard store (n == 1) is
// semantically identical to NewMemStore and useful as a baseline in
// benchmarks.
func NewShardedStore(n int) Store {
	if n <= 0 {
		n = DefaultShardCount
	}
	if n > maxShardCount {
		n = maxShardCount
	}
	n = nextPowerOfTwo(n)
	s := &shardedStore{
		shards: make([]*storeShard, n),
		mask:   uint32(n - 1),
	}
	for i := range s.shards {
		s.shards[i] = &storeShard{ops: make(map[string]*core.Operation)}
	}
	return s
}

// nextPowerOfTwo returns the smallest power of two >= n, for n >= 1.
func nextPowerOfTwo(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// shard maps an operation ID to its partition.
func (s *shardedStore) shard(id string) *storeShard {
	return s.shards[s.shardIndex(id)]
}

func (s *shardedStore) Put(op *core.Operation) {
	// Clone outside the critical section: the copy is per-operation
	// work, only the map assignment needs the lock.
	c := op.Clone()
	sh := s.shard(c.ID)
	sh.mu.Lock()
	sh.ops[c.ID] = c
	sh.mu.Unlock()
}

func (s *shardedStore) PutBatch(ops []*core.Operation) {
	// Single-op batches (every Submit routes through here) skip the
	// bucket table — its O(shard-count) allocation would dominate
	// the hot path it exists to amortise.
	if len(ops) == 1 {
		s.Put(ops[0])
		return
	}
	// Clone and group by shard outside any lock, then take each
	// shard's lock at most once per batch instead of once per
	// operation.
	buckets := make([][]*core.Operation, len(s.shards))
	for _, op := range ops {
		i := s.shardIndex(op.ID)
		buckets[i] = append(buckets[i], op.Clone())
	}
	for i, bucket := range buckets {
		if len(bucket) == 0 {
			continue
		}
		sh := s.shards[i]
		sh.mu.Lock()
		for _, c := range bucket {
			sh.ops[c.ID] = c
		}
		sh.mu.Unlock()
	}
}

// shardSeed keys the shard hash. One process-wide random seed keeps
// shard assignment stable for the process lifetime while preventing an
// external party from predicting (and deliberately skewing) the
// distribution.
var shardSeed = maphash.MakeSeed()

// shardIndex hashes an operation ID to a shard index using the
// runtime's maphash — the same hardware-accelerated, allocation-free
// hash Go maps use, so shard selection costs single-digit nanoseconds
// even for long keys.
func (s *shardedStore) shardIndex(id string) int {
	return int(uint32(maphash.String(shardSeed, id)) & s.mask)
}

func (s *shardedStore) Get(id string) (*core.Operation, error) {
	// Allocate the snapshot before taking the lock so the critical
	// section is a fixed-size copy, never a trip through the
	// allocator (which can stall on GC assist).
	out := new(core.Operation)
	sh := s.shard(id)
	sh.mu.RLock()
	op, ok := sh.ops[id]
	if ok {
		*out = *op
	}
	sh.mu.RUnlock()
	if !ok {
		return nil, core.ErrNotFound
	}
	return out, nil
}

func (s *shardedStore) List() []*core.Operation {
	// Snapshot shard by shard; List is not a point-in-time snapshot
	// across shards (an op stored concurrently may or may not appear),
	// matching the interface contract which only promises per-op
	// snapshots.
	out := make([]*core.Operation, 0, s.Len())
	for _, sh := range s.shards {
		sh.mu.RLock()
		for _, op := range sh.ops {
			out = append(out, op.Clone())
		}
		sh.mu.RUnlock()
	}
	sortNewestFirst(out)
	return out
}

func (s *shardedStore) Update(id string, fn func(op *core.Operation)) error {
	sh := s.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	op, ok := sh.ops[id]
	if !ok {
		return core.ErrNotFound
	}
	fn(op)
	return nil
}

func (s *shardedStore) Delete(id string) {
	sh := s.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	delete(sh.ops, id)
}

func (s *shardedStore) SweepTerminalBefore(cutoff time.Time) int {
	// One shard lock at a time: the sweep never holds more than one
	// lock, so concurrent per-operation traffic on other shards is
	// unaffected and there is no cross-shard deadlock risk. No clones
	// and no ordering work — this is the janitor's hot path.
	evicted := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		for id, op := range sh.ops {
			if op.Status.Terminal() && op.UpdatedAt.Before(cutoff) {
				delete(sh.ops, id)
				evicted++
			}
		}
		sh.mu.Unlock()
	}
	return evicted
}

func (s *shardedStore) Len() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		n += len(sh.ops)
		sh.mu.RUnlock()
	}
	return n
}
