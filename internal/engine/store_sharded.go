package engine

import (
	"hash/maphash"
	"runtime"
	"sort"
	"sync"
	"time"

	"opdaemon/internal/core"
)

// DefaultShardCount is the shard count NewShardedStore picks when the
// caller passes n <= 0: the next power of two at or above
// runtime.GOMAXPROCS(0). Lock contention scales with the number of
// goroutines the scheduler can actually run at once, so the default
// tracks the hardware instead of hardcoding a count — one shard on a
// single-core container, 16 on a 16-way host. Raise it explicitly
// (e.g. the daemon's -store-shards flag) to trade memory for extra
// headroom under skewed load.
func DefaultShardCount() int {
	return nextPowerOfTwo(runtime.GOMAXPROCS(0))
}

// shardedStore is a Store partitioned into power-of-two shards, each a
// separately locked map plus an ordered index. Operations are assigned
// to shards by a maphash of their ID (per-process random seed), so
// goroutines touching different operations almost always contend on
// different locks. It implements the same copy-on-write and ordering
// semantics as memStore; the conformance suite in
// store_conformance_test.go holds both to the same contract.
type shardedStore struct {
	shards []*storeShard
	// mask is len(shards)-1; with a power-of-two shard count,
	// hash&mask selects a shard without a modulo.
	mask uint32
}

// maxShardCount bounds the shard count. 2^16 shards is far beyond any
// useful lock granularity, and the cap keeps the power-of-two
// round-up below integer-overflow territory.
const maxShardCount = 1 << 16

// NewShardedStore returns an empty Store partitioned across n
// hash-selected shards. n is rounded up to the next power of two so
// shard selection is a bit mask; n <= 0 selects DefaultShardCount()
// and n > 65536 is clamped there. A single-shard store (n == 1) is
// semantically identical to NewMemStore and useful as a baseline in
// benchmarks.
func NewShardedStore(n int) Store {
	n = normalizeShardCount(n)
	s := &shardedStore{
		shards: make([]*storeShard, n),
		mask:   uint32(n - 1),
	}
	for i := range s.shards {
		s.shards[i] = newStoreShard()
	}
	return s
}

// normalizeShardCount applies the shared shard-geometry policy — the
// GOMAXPROCS-scaled default for n <= 0, the maxShardCount clamp, and
// the power-of-two round-up — in one place so the store and the
// engine's cancel registry can never drift apart.
func normalizeShardCount(n int) int {
	if n <= 0 {
		n = DefaultShardCount()
	}
	if n > maxShardCount {
		n = maxShardCount
	}
	return nextPowerOfTwo(n)
}

// nextPowerOfTwo returns the smallest power of two >= n, for n >= 1.
func nextPowerOfTwo(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// shard maps an operation ID to its partition.
func (s *shardedStore) shard(id string) *storeShard {
	return s.shards[s.shardIndex(id)]
}

func (s *shardedStore) Put(op *core.Operation) {
	s.shard(op.ID).put(op)
}

func (s *shardedStore) PutBatch(ops []*core.Operation) {
	// Single-op batches (every Submit routes through here) skip the
	// bucket table — its O(shard-count) allocation would dominate
	// the hot path it exists to amortise.
	if len(ops) == 1 {
		s.Put(ops[0])
		return
	}
	// Group by shard outside any lock, then take each shard's lock at
	// most once per batch instead of once per operation.
	buckets := make([][]*core.Operation, len(s.shards))
	for _, op := range ops {
		i := s.shardIndex(op.ID)
		buckets[i] = append(buckets[i], op)
	}
	for i, bucket := range buckets {
		if len(bucket) == 0 {
			continue
		}
		sh := s.shards[i]
		sh.mu.Lock()
		for _, op := range bucket {
			sh.putLocked(op)
		}
		sh.mu.Unlock()
	}
}

// bulkLoad installs a recovered operation set wholesale: bucket by
// shard, sort each bucket once into index order, and adopt the sorted
// slice as the shard's index directly. One O(k log k) sort per shard
// replaces k ordered inserts — recovery replay hands the ops over in
// map order, where per-op insertion is an O(k) memmove each and the
// rebuild goes quadratic. Shards load in parallel. The IDs must be
// unique (they come from a replay map); intended for a store not yet
// serving traffic, though it takes the locks anyway.
func (s *shardedStore) bulkLoad(ops []*core.Operation) {
	buckets := make([][]*core.Operation, len(s.shards))
	for _, op := range ops {
		i := s.shardIndex(op.ID)
		buckets[i] = append(buckets[i], op)
	}
	var wg sync.WaitGroup
	for i, bucket := range buckets {
		if len(bucket) == 0 {
			continue
		}
		wg.Add(1)
		go func(sh *storeShard, bucket []*core.Operation) {
			defer wg.Done()
			sort.Slice(bucket, func(a, b int) bool {
				return opBefore(bucket[a], bucket[b].CreatedAt, bucket[b].ID)
			})
			sh.mu.Lock()
			for _, op := range bucket {
				sh.ops[op.ID] = op
			}
			sh.ix.ops = bucket
			sh.mu.Unlock()
		}(s.shards[i], bucket)
	}
	wg.Wait()
}

// shardSeed keys the shard hash. One process-wide random seed keeps
// shard assignment stable for the process lifetime while preventing an
// external party from predicting (and deliberately skewing) the
// distribution.
var shardSeed = maphash.MakeSeed()

// shardIndex hashes an operation ID to a shard index using the
// runtime's maphash — the same hardware-accelerated, allocation-free
// hash Go maps use, so shard selection costs single-digit nanoseconds
// even for long keys.
func (s *shardedStore) shardIndex(id string) int {
	return int(uint32(maphash.String(shardSeed, id)) & s.mask)
}

func (s *shardedStore) Get(id string) (*core.Operation, error) {
	return s.shard(id).get(id)
}

// List k-way-merges the shard index tails newest-first. Two locking
// strategies keep writers available:
//
//   - Bounded, unfiltered pages (the poll hot path) read-lock every
//     shard — always in index order, the only path holding more than
//     one shard lock, and read locks only, so no deadlock cycle with
//     the one-at-a-time sweep — for a critical section that is
//     O(shards + limit·log shards) by construction: short no matter
//     how large the store is, and free of per-element copies.
//   - Unbounded or status-filtered queries can scan O(n), so instead
//     of stalling every writer store-wide for the whole merge they
//     snapshot each shard's candidate range under that shard's lock
//     alone (a pointer copy — published snapshots are immutable) and
//     merge lock-free, restoring the one-shard-at-a-time write
//     availability the pre-index implementation had.
//
// Either way List is not a cross-shard point-in-time snapshot (an op
// stored concurrently may or may not appear), matching the interface
// contract which only promises per-op snapshot consistency.
func (s *shardedStore) List(q ListQuery) ([]*core.Operation, error) {
	// Resolve the cursor up front via its shard's own lock: an
	// unknown cursor is an empty page, and a known one contributes
	// only its immutable (CreatedAt, ID) key — still a correct resume
	// point even if the op is evicted before the merge below runs.
	var key *core.Operation
	if q.Cursor != "" {
		op, err := s.shard(q.Cursor).get(q.Cursor)
		if err != nil {
			return []*core.Operation{}, nil
		}
		key = op
	}

	if q.Limit > 0 && q.Status == "" {
		for _, sh := range s.shards {
			sh.mu.RLock()
		}
		defer func() {
			for _, sh := range s.shards {
				sh.mu.RUnlock()
			}
		}()
		cursors := make([]listCursor, len(s.shards))
		for i, sh := range s.shards {
			cursors[i] = listCursor{ops: sh.ix.ops, pos: startPosFor(sh, key)}
		}
		return collectNewest(cursors, q), nil
	}

	cursors := make([]listCursor, len(s.shards))
	for i, sh := range s.shards {
		sh.mu.RLock()
		pos := startPosFor(sh, key)
		var snap []*core.Operation
		if pos >= 0 {
			snap = make([]*core.Operation, pos+1)
			copy(snap, sh.ix.ops[:pos+1])
		}
		sh.mu.RUnlock()
		cursors[i] = listCursor{ops: snap, pos: pos}
	}
	return collectNewest(cursors, q), nil
}

func (s *shardedStore) Update(id string, fn func(op *core.Operation)) error {
	return s.shard(id).update(id, fn)
}

func (s *shardedStore) Delete(id string) {
	s.shard(id).delete(id)
}

func (s *shardedStore) SweepTerminalBefore(cutoff time.Time) int {
	// One shard lock at a time: the sweep never holds more than one
	// lock, so concurrent per-operation traffic on other shards is
	// unaffected. (List holds all shard locks, but only read locks,
	// acquired in index order — no cycle with this sequential walk.)
	evicted := 0
	for _, sh := range s.shards {
		evicted += sh.sweepTerminalBefore(cutoff)
	}
	return evicted
}

func (s *shardedStore) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.len()
	}
	return n
}
