package engine

// Conformance suite for the watch hub and the notices feed — the
// contract tests the push read path lands with. The hub's subscribe-
// then-check protocol is pinned by a hammer that races AwaitChange
// against concurrent transitions (a check-then-subscribe bug shows up
// here as a hang under -race), and the notices ring's cursor semantics
// are pinned including the wrap-around and MaxUint64 edge cases.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"opdaemon/internal/core"
)

// newWatchEngine builds an engine whose worker pool is irrelevant to
// the test: operations are planted straight into the store and
// transitioned by hand, so every interleaving is test-controlled.
func newWatchEngine(t *testing.T) *Engine {
	t.Helper()
	e := New(Config{Workers: 1})
	t.Cleanup(func() { e.Shutdown(context.Background()) })
	return e
}

// awaitResult carries one AwaitChange outcome across goroutines.
type awaitResult struct {
	op  *core.Operation
	err error
}

func TestAwaitChangeNoLostWakeups(t *testing.T) {
	// Race waiter registration against the transition it waits for, at
	// every interleaving the scheduler can produce. If AwaitChange
	// checked before subscribing, a transition landing in the gap would
	// strand the waiter until ctx timeout; with subscribe-then-check
	// every iteration must observe running promptly.
	e := newWatchEngine(t)
	t0 := time.Unix(1000, 0)

	const iters = 200
	for i := 0; i < iters; i++ {
		id := fmt.Sprintf("%032x", i)
		e.store.Put(mkOp(id, t0))

		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		done := make(chan awaitResult, 1)
		go func() {
			op, err := e.AwaitChange(ctx, id, core.StatusQueued)
			done <- awaitResult{op, err}
		}()
		// No synchronization with the goroutine on purpose: some
		// iterations transition before the subscribe, some after, some
		// in the gap between subscribe and check.
		e.transition(id, core.StatusRunning, nil, nil)

		res := <-done
		cancel()
		if res.err != nil {
			t.Fatalf("iter %d: AwaitChange: %v (lost wakeup?)", i, res.err)
		}
		if res.op.Status != core.StatusRunning {
			t.Fatalf("iter %d: woke with status %s, want %s", i, res.op.Status, core.StatusRunning)
		}
	}
	if n := e.Stats().WatchWaiters; n != 0 {
		t.Errorf("hub leaked %d waiters", n)
	}
}

func TestAwaitChangeWakesOnCancel(t *testing.T) {
	// Both cancel paths must wake waiters: the queued→cancelled direct
	// step in Cancel (which bypasses transition()) and the terminal
	// transition recorded after a running handler honours its context.
	t.Run("QueuedDirectPath", func(t *testing.T) {
		e := newWatchEngine(t)
		e.store.Put(mkOp("00000000000000000000000000000abc", time.Unix(1000, 0)))

		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		done := make(chan awaitResult, 1)
		go func() {
			op, err := e.AwaitChange(ctx, "00000000000000000000000000000abc", core.StatusQueued)
			done <- awaitResult{op, err}
		}()
		// Let the waiter block (best effort; a wake before the block is
		// the immediate-return path, also correct).
		time.Sleep(5 * time.Millisecond)
		if _, err := e.Cancel("00000000000000000000000000000abc"); err != nil {
			t.Fatalf("Cancel: %v", err)
		}
		res := <-done
		if res.err != nil {
			t.Fatalf("AwaitChange: %v", res.err)
		}
		if res.op.Status != core.StatusCancelled {
			t.Fatalf("woke with status %s, want %s", res.op.Status, core.StatusCancelled)
		}
	})

	t.Run("RunningHandlerPath", func(t *testing.T) {
		e := New(Config{Workers: 1})
		defer e.Shutdown(context.Background())
		started := make(chan struct{})
		e.Register("hang", func(ctx context.Context, _ *core.Operation) (any, error) {
			close(started)
			<-ctx.Done()
			return nil, ctx.Err()
		})
		op, err := e.Submit(context.Background(), "hang", nil)
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		<-started

		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		done := make(chan awaitResult, 1)
		go func() {
			next, err := e.AwaitChange(ctx, op.ID, core.StatusRunning)
			done <- awaitResult{next, err}
		}()
		time.Sleep(5 * time.Millisecond)
		if _, err := e.Cancel(op.ID); err != nil {
			t.Fatalf("Cancel: %v", err)
		}
		res := <-done
		if res.err != nil {
			t.Fatalf("AwaitChange: %v", res.err)
		}
		if res.op.Status != core.StatusCancelled {
			t.Fatalf("woke with status %s, want %s", res.op.Status, core.StatusCancelled)
		}
	})
}

func TestAwaitChangeTerminalBeforeSubscribeReturnsImmediately(t *testing.T) {
	// A terminal status can never change, so a waiter arriving late —
	// even one passing the terminal status as `seen` — must return the
	// snapshot immediately instead of blocking out its timeout.
	e := newWatchEngine(t)
	t0 := time.Unix(1000, 0)
	op := mkOp("00000000000000000000000000000def", t0)
	op.Status = core.StatusDone
	e.store.Put(op)

	// An already-expired context proves no blocking path is taken: the
	// immediate-return check runs before the select.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	got, err := e.AwaitChange(ctx, op.ID, core.StatusDone)
	if err != nil {
		t.Fatalf("AwaitChange on terminal op: %v, want immediate snapshot", err)
	}
	if got.Status != core.StatusDone {
		t.Fatalf("status = %s, want %s", got.Status, core.StatusDone)
	}
}

func TestAwaitChangeUnknownID(t *testing.T) {
	e := newWatchEngine(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := e.AwaitChange(ctx, "missing", core.StatusQueued); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("AwaitChange(missing) = %v, want ErrNotFound", err)
	}
	if n := e.Stats().WatchWaiters; n != 0 {
		t.Errorf("hub leaked %d waiters after not-found", n)
	}
}

func TestAwaitChangeContextCancelCleansUpWaiter(t *testing.T) {
	// An abandoned long-poll must deregister its waiter on the way out:
	// the hub's waiter count returns to zero the moment AwaitChange
	// returns, with no janitor or timeout needed.
	e := newWatchEngine(t)
	e.store.Put(mkOp("00000000000000000000000000000aaa", time.Unix(1000, 0)))

	const waiters = 16
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			started <- struct{}{}
			_, err := e.AwaitChange(ctx, "00000000000000000000000000000aaa", core.StatusQueued)
			if !errors.Is(err, context.Canceled) {
				t.Errorf("AwaitChange = %v, want context.Canceled", err)
			}
		}()
	}
	for i := 0; i < waiters; i++ {
		<-started
	}
	// Waiters register before blocking; poll briefly for all of them to
	// pass the subscribe.
	deadline := time.Now().Add(2 * time.Second)
	for e.Stats().WatchWaiters < waiters && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := e.Stats().WatchWaiters; n != waiters {
		t.Fatalf("registered waiters = %d, want %d", n, waiters)
	}
	cancel()
	wg.Wait()
	if n := e.Stats().WatchWaiters; n != 0 {
		t.Fatalf("waiters after context cancel = %d, want 0", n)
	}
}

func TestWatchHubUnsubscribeIdempotentAfterNotify(t *testing.T) {
	// notify detaches the waiter before sending, so a racing
	// unsubscribe (the AwaitChange defer) finds nothing to remove and
	// must not corrupt the count.
	h := newWatchHub(4)
	w := h.subscribe("op")
	h.notify("op", nil)
	if got := <-w.ch; got != nil {
		t.Fatalf("wake snapshot = %v, want nil", got)
	}
	h.unsubscribe("op", w)
	h.unsubscribe("op", w) // double-unsubscribe is a no-op too
	if n := h.waiters(); n != 0 {
		t.Fatalf("waiters = %d, want 0", n)
	}
}

func TestWatchHubNotifyWakesAllWaitersForID(t *testing.T) {
	h := newWatchHub(4)
	snap := mkOp("op", time.Unix(1000, 0))
	const n = 8
	ws := make([]*watcher, n)
	for i := range ws {
		ws[i] = h.subscribe("op")
	}
	other := h.subscribe("other")
	h.notify("op", snap)
	for i, w := range ws {
		select {
		case got := <-w.ch:
			if got != snap {
				t.Fatalf("waiter %d woke with %v, want the published snapshot", i, got)
			}
		default:
			t.Fatalf("waiter %d not woken", i)
		}
	}
	select {
	case <-other.ch:
		t.Fatal("waiter for a different id was woken")
	default:
	}
	if got := h.waiters(); got != 1 {
		t.Fatalf("waiters after notify = %d, want 1 (the other id)", got)
	}
	h.unsubscribe("other", other)
}

func TestEngineLifecyclePublishesNotices(t *testing.T) {
	// One operation's full life must appear in the feed in order:
	// queued (birth), running, done.
	e := New(Config{Workers: 1})
	defer e.Shutdown(context.Background())
	e.Register("echo", func(_ context.Context, op *core.Operation) (any, error) {
		return op.Params["msg"], nil
	})
	op, err := e.Submit(context.Background(), "echo", map[string]any{"msg": "hi"})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitStatus(t, e, op.ID)

	ns := e.Notices(NoticeQuery{})
	var got []core.Status
	for _, n := range ns {
		if n.OpID != op.ID {
			continue
		}
		if n.Kind != "echo" {
			t.Errorf("notice kind = %q, want %q", n.Kind, "echo")
		}
		got = append(got, n.Status)
	}
	want := []core.Status{core.StatusQueued, core.StatusRunning, core.StatusDone}
	if len(got) != len(want) {
		t.Fatalf("notice statuses = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("notice statuses = %v, want %v", got, want)
		}
	}
	for i := 1; i < len(ns); i++ {
		if ns[i].Seq <= ns[i-1].Seq {
			t.Fatalf("seqs not strictly increasing: %d then %d", ns[i-1].Seq, ns[i].Seq)
		}
	}
}

func TestNoticeRingCursorSemantics(t *testing.T) {
	t0 := time.Unix(1000, 0)
	r := newNoticeRing(4)

	if got := r.since(NoticeQuery{}); got != nil {
		t.Fatalf("empty ring since() = %v, want nil", got)
	}

	for i := 1; i <= 3; i++ {
		r.append(fmt.Sprintf("op%d", i), "k", core.StatusQueued, t0)
	}
	ns := r.since(NoticeQuery{})
	if len(ns) != 3 || ns[0].Seq != 1 || ns[2].Seq != 3 {
		t.Fatalf("since(0) = %+v, want seqs 1..3", ns)
	}
	if ns = r.since(NoticeQuery{After: 2}); len(ns) != 1 || ns[0].Seq != 3 {
		t.Fatalf("since(2) = %+v, want just seq 3", ns)
	}
	// Caught-up and past-the-end cursors yield empty pages.
	if ns = r.since(NoticeQuery{After: 3}); len(ns) != 0 {
		t.Fatalf("since(3) = %+v, want empty", ns)
	}
	if ns = r.since(NoticeQuery{After: 99}); len(ns) != 0 {
		t.Fatalf("since(99) = %+v, want empty", ns)
	}
	// MaxUint64 must not wrap After+1 around to zero and replay the
	// whole ring.
	if ns = r.since(NoticeQuery{After: math.MaxUint64}); len(ns) != 0 {
		t.Fatalf("since(MaxUint64) = %+v, want empty", ns)
	}

	// Overflow the capacity-4 ring: seqs 4..7 land, 1..3 fall off. A
	// cursor pointing into the evicted range resumes from the oldest
	// retained notice rather than erroring or replaying garbage.
	for i := 4; i <= 7; i++ {
		r.append(fmt.Sprintf("op%d", i), "k", core.StatusRunning, t0)
	}
	ns = r.since(NoticeQuery{After: 1})
	if len(ns) != 4 || ns[0].Seq != 4 || ns[3].Seq != 7 {
		t.Fatalf("since(1) after wrap = %+v, want seqs 4..7", ns)
	}
	if got := r.last(); got != 7 {
		t.Fatalf("last() = %d, want 7", got)
	}
}

func TestNoticeRingFiltersAndLimit(t *testing.T) {
	t0 := time.Unix(1000, 0)
	r := newNoticeRing(16)
	r.append("a", "build", core.StatusQueued, t0)
	r.append("a", "build", core.StatusRunning, t0)
	r.append("b", "deploy", core.StatusQueued, t0)
	r.append("a", "build", core.StatusDone, t0)
	r.append("b", "deploy", core.StatusFailed, t0)

	ns := r.since(NoticeQuery{Kinds: []string{"deploy"}})
	if len(ns) != 2 || ns[0].OpID != "b" || ns[1].Status != core.StatusFailed {
		t.Fatalf("kind filter = %+v, want b's two notices", ns)
	}
	ns = r.since(NoticeQuery{Statuses: []core.Status{core.StatusDone, core.StatusFailed}})
	if len(ns) != 2 || ns[0].Status != core.StatusDone || ns[1].Status != core.StatusFailed {
		t.Fatalf("status filter = %+v, want done then failed", ns)
	}
	ns = r.since(NoticeQuery{Limit: 2})
	if len(ns) != 2 || ns[0].Seq != 1 || ns[1].Seq != 2 {
		t.Fatalf("limit page = %+v, want seqs 1,2", ns)
	}
	// Filters and limit compose: the limit counts matches, not scanned
	// entries.
	ns = r.since(NoticeQuery{Kinds: []string{"build"}, Limit: 2})
	if len(ns) != 2 || ns[1].Status != core.StatusRunning {
		t.Fatalf("filtered limit page = %+v, want build queued,running", ns)
	}
}

func TestAwaitNoticesWakesOnAppend(t *testing.T) {
	e := newWatchEngine(t)
	after := e.notices.last()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	type page struct {
		ns  []Notice
		err error
	}
	done := make(chan page, 1)
	go func() {
		ns, err := e.AwaitNotices(ctx, NoticeQuery{After: after})
		done <- page{ns, err}
	}()
	time.Sleep(5 * time.Millisecond)
	e.notices.append("op", "k", core.StatusQueued, time.Unix(1000, 0))

	res := <-done
	if res.err != nil {
		t.Fatalf("AwaitNotices: %v", res.err)
	}
	if len(res.ns) != 1 || res.ns[0].OpID != "op" {
		t.Fatalf("page = %+v, want the appended notice", res.ns)
	}
}

func TestAwaitNoticesNoLostWakeups(t *testing.T) {
	// Same hammer as the hub test: race the blocked reader against the
	// append it waits for. The closed-channel protocol (fetch waitChan
	// before since) must never sleep through an append.
	e := newWatchEngine(t)
	for i := 0; i < 200; i++ {
		after := e.notices.last()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		done := make(chan error, 1)
		go func() {
			_, err := e.AwaitNotices(ctx, NoticeQuery{After: after})
			done <- err
		}()
		e.notices.append("op", "k", core.StatusQueued, time.Unix(1000, 0))
		if err := <-done; err != nil {
			cancel()
			t.Fatalf("iter %d: AwaitNotices: %v (lost wakeup?)", i, err)
		}
		cancel()
	}
}

func TestAwaitNoticesContextCancel(t *testing.T) {
	e := newWatchEngine(t)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := e.AwaitNotices(ctx, NoticeQuery{After: e.notices.last()})
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("AwaitNotices = %v, want context.Canceled", err)
	}
}

func TestAwaitNoticesFilteredSkipsNonMatching(t *testing.T) {
	// A reader filtered to terminal statuses must sleep through
	// non-matching appends and wake only for a match — without busy
	// returning empty pages in between.
	e := newWatchEngine(t)
	after := e.notices.last()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	type page struct {
		ns  []Notice
		err error
	}
	done := make(chan page, 1)
	go func() {
		ns, err := e.AwaitNotices(ctx, NoticeQuery{
			After:    after,
			Statuses: []core.Status{core.StatusDone},
		})
		done <- page{ns, err}
	}()
	time.Sleep(5 * time.Millisecond)
	e.notices.append("op", "k", core.StatusQueued, time.Unix(1000, 0))
	e.notices.append("op", "k", core.StatusRunning, time.Unix(1000, 0))
	select {
	case res := <-done:
		t.Fatalf("woke on non-matching notices: %+v, %v", res.ns, res.err)
	case <-time.After(20 * time.Millisecond):
	}
	e.notices.append("op", "k", core.StatusDone, time.Unix(1000, 0))
	res := <-done
	if res.err != nil {
		t.Fatalf("AwaitNotices: %v", res.err)
	}
	if len(res.ns) != 1 || res.ns[0].Status != core.StatusDone {
		t.Fatalf("page = %+v, want just the done notice", res.ns)
	}
}
