package engine

// Crash recovery for the WAL store: scan the directory, load the
// newest snapshot, replay the segment suffix on top of it, and repair
// the torn tail a crash mid-append leaves behind.

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"

	"opdaemon/internal/core"
)

// walLayout describes what recovery found on disk, for newWAL to
// continue from.
type walLayout struct {
	// segs are the surviving segment indexes, ascending. They stay
	// live (and are replayed on the next open too) until compaction
	// folds them into a snapshot.
	segs []int
	// snapSeg is the highest segment index the loaded snapshot covers,
	// -1 when no snapshot was used.
	snapSeg int
	// maxSeg is the highest segment index ever observed (on disk or
	// covered by a snapshot); the next segment opens at maxSeg+1 so
	// indexes never repeat even across compactions.
	maxSeg int
}

// recoverWALState rebuilds the operation state from dir: newest intact
// snapshot first, then every segment newer than it in ascending order.
// Replay stops at the first torn or corrupt frame; the file holding it
// is truncated to its valid prefix and any later segments — which a
// pure crash cannot produce, only real corruption — are deleted (loudly)
// so that what remains on disk always equals the recovered state.
func recoverWALState(dir string) (map[string]*core.Operation, walLayout, error) {
	layout := walLayout{snapSeg: -1}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, layout, fmt.Errorf("wal: scanning %s: %w", dir, err)
	}
	var segs, snaps []int
	for _, e := range entries {
		var i int
		switch {
		case parseWALName(e.Name(), "wal-%08d.log", &i):
			segs = append(segs, i)
		case parseWALName(e.Name(), "snap-%08d.wal", &i):
			snaps = append(snaps, i)
		}
	}
	sort.Ints(segs)
	sort.Ints(snaps)

	state := make(map[string]*core.Operation)

	// Try snapshots newest-first; a snapshot that fails to replay
	// cleanly (which the atomic rename install should make impossible)
	// is skipped entirely rather than half-applied.
	for i := len(snaps) - 1; i >= 0; i-- {
		path := filepath.Join(dir, walSnapName(snaps[i]))
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, layout, fmt.Errorf("wal: reading snapshot %s: %w", path, err)
		}
		trial := make(map[string]*core.Operation, len(state))
		if _, rerr := walReplay(data, func(typ byte, body []byte) error {
			return applyWALRecord(trial, typ, body)
		}); rerr != nil {
			log.Printf("engine: wal snapshot %s unusable (%v); falling back", path, rerr)
			continue
		}
		state = trial
		layout.snapSeg = snaps[i]
		break
	}
	layout.maxSeg = layout.snapSeg

	// Replay segments newer than the snapshot, oldest first. The first
	// bad frame ends the trusted history: truncate there, drop
	// anything after.
	truncated := false
	for _, seg := range segs {
		if seg > layout.maxSeg {
			layout.maxSeg = seg
		}
		if seg <= layout.snapSeg {
			// Obsolete: its contents are inside the snapshot. Remove it now
			// so the live set stays minimal.
			if err := os.Remove(filepath.Join(dir, walSegName(seg))); err != nil {
				return nil, layout, fmt.Errorf("wal: pruning covered segment %d: %w", seg, err)
			}
			continue
		}
		path := filepath.Join(dir, walSegName(seg))
		if truncated {
			log.Printf("engine: wal dropping segment %s: it follows a corrupt frame", path)
			if err := os.Remove(path); err != nil {
				return nil, layout, fmt.Errorf("wal: dropping segment %d: %w", seg, err)
			}
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, layout, fmt.Errorf("wal: reading segment %s: %w", path, err)
		}
		valid, rerr := walReplay(data, func(typ byte, body []byte) error {
			return applyWALRecord(state, typ, body)
		})
		layout.segs = append(layout.segs, seg)
		if rerr != nil {
			log.Printf("engine: wal segment %s: %v at offset %d; truncating to valid prefix", path, rerr, valid)
			if err := os.Truncate(path, int64(valid)); err != nil {
				return nil, layout, fmt.Errorf("wal: truncating torn segment %d: %w", seg, err)
			}
			truncated = true
		}
	}
	return state, layout, nil
}

// parseWALName matches a directory entry against a wal file pattern,
// requiring an exact round-trip so stray files (snap.tmp, editor
// droppings) are ignored.
func parseWALName(name, pattern string, i *int) bool {
	var n int
	if _, err := fmt.Sscanf(name, pattern, &n); err != nil {
		return false
	}
	if fmt.Sprintf(pattern, n) != name {
		return false
	}
	*i = n
	return true
}
