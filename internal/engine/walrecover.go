package engine

// Crash recovery for the WAL store: scan the directory, load the
// newest snapshot, replay the segment suffix on top of it, and repair
// the torn tail a crash mid-append leaves behind.
//
// Replay is a three-stage pipeline per file:
//
//  1. a sequential frame scan — framing is inherently serial (each
//     frame's position depends on the previous length prefix), but it
//     is only header reads plus a CRC per frame;
//  2. parallel decode — the expensive half (JSON for v1 records,
//     binary for v2) fans out across GOMAXPROCS workers over
//     contiguous chunks of the scanned frames;
//  3. partitioned apply — records are partitioned by operation ID
//     (the shard key), and one worker per partition walks the decoded
//     records in log order applying only its own IDs. Same ID → same
//     partition → same worker, so per-operation replay order is
//     exactly the log order, which is all last-writer-wins needs.
//
// The partition states persist across the snapshot and every segment
// and merge into one map at the end, so the function's contract is
// identical to the sequential version the fuzz target still pins
// (walReplay + applyWALRecord): same valid-prefix semantics, same
// final state.

import (
	"fmt"
	"hash/maphash"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"opdaemon/internal/core"
)

// walReplayLogEvery is the record-count granularity of replay progress
// logging: a large-log boot prints a line at least this often instead
// of hanging silently.
const walReplayLogEvery = 50_000

// walParallelMinRecords is the fan-out floor: files with fewer scanned
// records decode inline — goroutine startup would cost more than it
// saves.
const walParallelMinRecords = 4096

// walRef locates one validated frame's payload inside a mapped file:
// the scan stage's output, the decode stage's input.
type walRef struct {
	typ  byte
	body []byte
	off  int // frame's byte offset in the file, for truncation reports
}

// walScanFrames walks the frames in data, validating framing and
// checksums and collecting payload refs (appended to refs, reused
// across files). It returns the refs, the byte length of the
// well-framed prefix, and the torn/corrupt error that ended the walk,
// if any. No record is decoded here.
func walScanFrames(data []byte, refs []walRef) ([]walRef, int, error) {
	pos := 0
	for pos < len(data) {
		if len(data)-pos < walFrameHeader {
			return refs, pos, errWALTorn
		}
		n := int(walFrameLen(data[pos:]))
		if n < 1 || n > walMaxRecordBytes {
			return refs, pos, fmt.Errorf("%w: impossible payload length %d", errWALCorrupt, n)
		}
		if len(data)-pos-walFrameHeader < n {
			return refs, pos, errWALTorn
		}
		payload := data[pos+walFrameHeader : pos+walFrameHeader+n]
		if !walFrameCRCOK(data[pos:], payload) {
			return refs, pos, fmt.Errorf("%w: checksum mismatch", errWALCorrupt)
		}
		refs = append(refs, walRef{typ: payload[0], body: payload[1:], off: pos})
		pos += walFrameHeader + n
	}
	return refs, pos, nil
}

// replayPartitions is replay state sharded for parallel apply: one
// operation map per worker, partitioned by ID hash so each ID's
// records always land in the same map in log order.
type replayPartitions struct {
	n     int
	state []map[string]*core.Operation
}

func newReplayPartitions(n int) *replayPartitions {
	if n < 1 {
		n = 1
	}
	p := &replayPartitions{n: n, state: make([]map[string]*core.Operation, n)}
	for i := range p.state {
		p.state[i] = make(map[string]*core.Operation)
	}
	return p
}

// part maps an operation ID to its partition — the same maphash the
// store's sharding uses, modulo the worker count.
func (p *replayPartitions) part(id string) int {
	if p.n == 1 {
		return 0
	}
	return int(maphash.String(shardSeed, id) % uint64(p.n))
}

// len counts live operations across all partitions.
func (p *replayPartitions) len() int {
	total := 0
	for _, m := range p.state {
		total += len(m)
	}
	return total
}

// merge flattens the partitions into one map, consuming the receiver.
func (p *replayPartitions) merge() map[string]*core.Operation {
	out := make(map[string]*core.Operation, p.len())
	for _, m := range p.state {
		for id, op := range m {
			out[id] = op
		}
	}
	return out
}

// applyRefs decodes and applies the scanned records in log order,
// fanning decode and apply out across the partitions' workers when the
// file is big enough to pay for it. It returns how many leading
// records applied and, when that is fewer than len(refs), the decode
// failure that ended the trusted prefix — the same contract as
// sequential replay: everything before the failure is applied,
// everything from it on is untrusted.
func (p *replayPartitions) applyRefs(refs []walRef) (int, error) {
	if len(refs) == 0 {
		return 0, nil
	}
	if p.n == 1 || len(refs) < walParallelMinRecords {
		for i, ref := range refs {
			d, err := decodeWALRecord(ref.typ, ref.body)
			if err != nil {
				return i, err
			}
			applyDecoded(p.state[p.part(d.id())], d)
		}
		return len(refs), nil
	}

	// Decode stage: contiguous chunks, one worker each. Workers write
	// disjoint index ranges of decoded/parts, so no locking; the
	// earliest failing index wins via atomic min and bounds the
	// trusted prefix.
	decoded := make([]walDecoded, len(refs))
	parts := make([]int32, len(refs))
	errs := make([]error, len(refs))
	errIdx := atomic.Int64{}
	errIdx.Store(int64(len(refs)))
	chunk := (len(refs) + p.n - 1) / p.n
	var wg sync.WaitGroup
	for w := 0; w < p.n; w++ {
		lo := w * chunk
		hi := min(lo+chunk, len(refs))
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				d, err := decodeWALRecord(refs[i].typ, refs[i].body)
				if err != nil {
					// Everything after a bad record is untrusted, so
					// this chunk is done; later chunks may decode bytes
					// beyond the cut, which apply then ignores.
					errs[i] = err
					for {
						cur := errIdx.Load()
						if int64(i) >= cur || errIdx.CompareAndSwap(cur, int64(i)) {
							break
						}
					}
					return
				}
				decoded[i] = d
				parts[i] = int32(p.part(d.id()))
			}
		}(lo, hi)
	}
	wg.Wait()

	cut := int(errIdx.Load())
	// Apply stage: one worker per partition walks the decoded records
	// in log order and applies only its own IDs — per-ID order is the
	// log order by construction.
	for w := 0; w < p.n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			state := p.state[w]
			for i := 0; i < cut; i++ {
				if parts[i] == int32(w) {
					applyDecoded(state, decoded[i])
				}
			}
		}(w)
	}
	wg.Wait()
	if cut < len(refs) {
		return cut, errs[cut]
	}
	return cut, nil
}

// walLayout describes what recovery found on disk, for newWAL to
// continue from.
type walLayout struct {
	// segs are the surviving segment indexes, ascending. They stay
	// live (and are replayed on the next open too) until compaction
	// folds them into a snapshot.
	segs []int
	// snapSeg is the highest segment index the loaded snapshot covers,
	// -1 when no snapshot was used.
	snapSeg int
	// maxSeg is the highest segment index ever observed (on disk or
	// covered by a snapshot); the next segment opens at maxSeg+1 so
	// indexes never repeat even across compactions.
	maxSeg int
}

// recoverWALState rebuilds the operation state from dir: newest intact
// snapshot first, then every segment newer than it in ascending order.
// Replay stops at the first torn or corrupt frame; the file holding it
// is truncated to its valid prefix and any later segments — which a
// pure crash cannot produce, only real corruption — are deleted (loudly)
// so that what remains on disk always equals the recovered state.
func recoverWALState(dir string) (map[string]*core.Operation, walLayout, error) {
	layout := walLayout{snapSeg: -1}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, layout, fmt.Errorf("wal: scanning %s: %w", dir, err)
	}
	var segs, snaps []int
	for _, e := range entries {
		var i int
		switch {
		case parseWALName(e.Name(), "wal-%08d.log", &i):
			segs = append(segs, i)
		case parseWALName(e.Name(), "snap-%08d.wal", &i):
			snaps = append(snaps, i)
		}
	}
	sort.Ints(segs)
	sort.Ints(snaps)

	state := newReplayPartitions(runtime.GOMAXPROCS(0))
	replayed := 0 // cumulative applied records, for progress logging
	var refs []walRef

	// Try snapshots newest-first; a snapshot that fails to replay
	// cleanly (which the atomic rename install should make impossible)
	// is skipped entirely rather than half-applied.
	for i := len(snaps) - 1; i >= 0; i-- {
		path := filepath.Join(dir, walSnapName(snaps[i]))
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, layout, fmt.Errorf("wal: reading snapshot %s: %w", path, err)
		}
		var valid int
		var rerr error
		refs, valid, rerr = walScanFrames(data, refs[:0])
		trial := newReplayPartitions(state.n)
		n := 0
		if rerr == nil {
			n, rerr = trial.applyRefs(refs)
		}
		if rerr != nil {
			log.Printf("engine: wal snapshot %s unusable (%v at offset %d); falling back", path, rerr, valid)
			continue
		}
		state = trial
		layout.snapSeg = snaps[i]
		replayed = n
		log.Printf("engine: wal replayed snapshot %s: %d records, %d operations live", path, n, state.len())
		break
	}
	layout.maxSeg = layout.snapSeg

	// Replay segments newer than the snapshot, oldest first. The first
	// bad frame ends the trusted history: truncate there, drop
	// anything after.
	truncated := false
	for _, seg := range segs {
		if seg > layout.maxSeg {
			layout.maxSeg = seg
		}
		if seg <= layout.snapSeg {
			// Obsolete: its contents are inside the snapshot. Remove it now
			// so the live set stays minimal.
			if err := os.Remove(filepath.Join(dir, walSegName(seg))); err != nil {
				return nil, layout, fmt.Errorf("wal: pruning covered segment %d: %w", seg, err)
			}
			continue
		}
		path := filepath.Join(dir, walSegName(seg))
		if truncated {
			log.Printf("engine: wal dropping segment %s: it follows a corrupt frame", path)
			if err := os.Remove(path); err != nil {
				return nil, layout, fmt.Errorf("wal: dropping segment %d: %w", seg, err)
			}
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, layout, fmt.Errorf("wal: reading segment %s: %w", path, err)
		}
		var valid int
		var rerr error
		refs, valid, rerr = walScanFrames(data, refs[:0])
		n, aerr := state.applyRefs(refs)
		if aerr != nil {
			// A record that scans but does not decode ends the trusted
			// prefix at its own frame, before wherever the scan stopped.
			valid, rerr = refs[n].off, aerr
		}
		layout.segs = append(layout.segs, seg)
		before := replayed
		replayed += n
		log.Printf("engine: wal replayed segment %s: %d records, %d operations live", path, n, state.len())
		if before/walReplayLogEvery != replayed/walReplayLogEvery {
			log.Printf("engine: wal replay progress: %d records applied", replayed)
		}
		if rerr != nil {
			log.Printf("engine: wal segment %s: %v at offset %d; truncating to valid prefix", path, rerr, valid)
			if err := os.Truncate(path, int64(valid)); err != nil {
				return nil, layout, fmt.Errorf("wal: truncating torn segment %d: %w", seg, err)
			}
			truncated = true
		}
	}
	return state.merge(), layout, nil
}

// parseWALName matches a directory entry against a wal file pattern,
// requiring an exact round-trip so stray files (snap.tmp, editor
// droppings) are ignored.
func parseWALName(name, pattern string, i *int) bool {
	var n int
	if _, err := fmt.Sscanf(name, pattern, &n); err != nil {
		return false
	}
	if fmt.Sprintf(pattern, n) != name {
		return false
	}
	*i = n
	return true
}
