package engine

// Allocation regression tests pinning the read-path guarantees the
// copy-on-write refactor bought: Get never allocates (it returns the
// published snapshot pointer), and a List page's allocations depend on
// the limit, never on how many operations the store holds. These run
// as ordinary tests — not benchmarks — so `go test ./...` fails the
// moment a change sneaks a clone or a sort back into the hot path.

import (
	"testing"
)

// allocImpls enumerates the implementations whose allocation profile
// is pinned; the sharded store runs at a fixed multi-shard count so
// the merge path is exercised even on single-core hosts.
func allocImpls() []struct {
	name string
	mk   func() Store
} {
	return []struct {
		name string
		mk   func() Store
	}{
		{"mem", NewMemStore},
		{"sharded-8", func() Store { return NewShardedStore(8) }},
	}
}

func skipIfRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("race detector instrumentation allocates; alloc pinning runs in non-race builds")
	}
}

func TestGetIsZeroAlloc(t *testing.T) {
	skipIfRace(t)
	for _, impl := range allocImpls() {
		t.Run(impl.name, func(t *testing.T) {
			s := impl.mk()
			ops := prepopulate(s, 1024)
			id := ops[len(ops)/2].ID
			allocs := testing.AllocsPerRun(1000, func() {
				if _, err := s.Get(id); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Errorf("Get allocates %.1f objects/op, want 0 (must return the published snapshot)", allocs)
			}
		})
	}
}

func TestListAllocsIndependentOfStoreSize(t *testing.T) {
	skipIfRace(t)
	const limit = 50
	for _, impl := range allocImpls() {
		t.Run(impl.name, func(t *testing.T) {
			perSize := make(map[int]float64)
			for _, size := range []int{1_000, 10_000} {
				s := impl.mk()
				prepopulate(s, size)
				perSize[size] = testing.AllocsPerRun(200, func() {
					page, err := s.List(ListQuery{Limit: limit})
					if err != nil {
						t.Fatal(err)
					}
					if len(page) != limit {
						t.Fatalf("List returned %d ops, want %d", len(page), limit)
					}
				})
			}
			if perSize[1_000] != perSize[10_000] {
				t.Errorf("List(limit=%d) allocations scale with store size: %.1f at 1k ops vs %.1f at 10k ops",
					limit, perSize[1_000], perSize[10_000])
			}
			// The absolute count matters too: a page is the output
			// slice plus the merge scaffolding, nowhere near one
			// allocation per element.
			if perSize[10_000] > 4 {
				t.Errorf("List(limit=%d) costs %.1f allocations, want <= 4 (output slice + merge state)",
					limit, perSize[10_000])
			}
		})
	}
}

func TestListPagedWalkMatchesUnbounded(t *testing.T) {
	// Property check at a size no hand-written case covers: paging
	// through 10k random-ID operations in 97-op pages must reproduce
	// the unbounded listing exactly, on every implementation.
	for _, impl := range allocImpls() {
		t.Run(impl.name, func(t *testing.T) {
			s := impl.mk()
			prepopulate(s, 10_000)
			full, err := s.List(ListQuery{})
			if err != nil {
				t.Fatal(err)
			}
			var pagedIDs []string
			cursor := ""
			for {
				page, err := s.List(ListQuery{Cursor: cursor, Limit: 97})
				if err != nil {
					t.Fatal(err)
				}
				if len(page) == 0 {
					break
				}
				for _, op := range page {
					pagedIDs = append(pagedIDs, op.ID)
				}
				cursor = page[len(page)-1].ID
			}
			if len(pagedIDs) != len(full) {
				t.Fatalf("paged walk saw %d ops, unbounded List saw %d", len(pagedIDs), len(full))
			}
			for i, op := range full {
				if pagedIDs[i] != op.ID {
					t.Fatalf("paged walk diverges at %d: %s != %s", i, pagedIDs[i], op.ID)
				}
			}
		})
	}
}
