package engine

// The notices feed: a bounded ring of state-transition records with a
// monotonic cursor, so one connection can watch every operation without
// holding N long-polls. Modeled on snapd's notices API — clients read
// forward from a cursor (`after`), block when caught up, and resume
// from wherever they left off; a cursor that has fallen off the ring
// simply resumes from the oldest retained notice (the feed is a tail,
// not an archive — the store remains the source of truth).
//
// Wakeups use a closed-channel broadcast: every append replaces the
// ring's current "changed" channel and closes the old one, waking all
// blocked readers at once. Readers re-fetch the channel BEFORE scanning
// the ring (subscribe-then-check, same discipline as the watch hub) so
// an append landing between the scan and the block is never missed.

import (
	"context"
	"sync"
	"time"

	"opdaemon/internal/core"
)

// Notice is one state-transition record: operation id, kind, the
// status entered, and when. Seq is the feed-wide monotonic cursor,
// starting at 1; clients pass the largest Seq they have seen as
// `after` to read strictly newer notices.
type Notice struct {
	Seq    uint64      `json:"seq"`
	OpID   string      `json:"op_id"`
	Kind   string      `json:"kind"`
	Status core.Status `json:"status"`
	Time   time.Time   `json:"time"`
}

// NoticeQuery selects a page of the feed.
type NoticeQuery struct {
	// After is the cursor: only notices with Seq > After are returned.
	// Zero reads from the oldest retained notice.
	After uint64
	// Kinds, when non-empty, keeps only notices whose operation kind is
	// in the set.
	Kinds []string
	// Statuses, when non-empty, keeps only notices for these statuses.
	Statuses []core.Status
	// Limit bounds the page size; <= 0 means no bound (the ring
	// capacity is the effective ceiling).
	Limit int
}

func (q NoticeQuery) match(n *Notice) bool {
	if len(q.Kinds) > 0 {
		ok := false
		for _, k := range q.Kinds {
			if n.Kind == k {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if len(q.Statuses) > 0 {
		ok := false
		for _, s := range q.Statuses {
			if n.Status == s {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// noticeRing is the fixed-capacity transition log. The notice with
// sequence s lives at buf[(s-1) % len(buf)]; once the feed wraps, the
// oldest retained sequence is seq-len(buf)+1. Its name places its
// critical sections under the lockscope analyzer's
// no-channel-ops-under-lock contract — the broadcast close happens
// after unlock.
type noticeRing struct {
	mu      sync.Mutex
	buf     []Notice
	seq     uint64 // last assigned sequence; 0 before the first notice
	changed chan struct{}
}

func newNoticeRing(capacity int) *noticeRing {
	if capacity <= 0 {
		capacity = 4096
	}
	return &noticeRing{
		buf:     make([]Notice, capacity),
		changed: make(chan struct{}),
	}
}

// append records one transition and wakes every blocked reader.
func (r *noticeRing) append(opID, kind string, status core.Status, at time.Time) {
	r.mu.Lock()
	r.seq++
	r.buf[(r.seq-1)%uint64(len(r.buf))] = Notice{
		Seq:    r.seq,
		OpID:   opID,
		Kind:   kind,
		Status: status,
		Time:   at,
	}
	old := r.changed
	r.changed = make(chan struct{})
	r.mu.Unlock()
	// Broadcast after unlock: a reader woken here immediately rescans
	// the ring, which needs the lock.
	close(old)
}

// waitChan returns the channel closed by the next append. Readers must
// fetch it before calling since — the subscribe-then-check order that
// makes the blocked select race-free against concurrent appends.
func (r *noticeRing) waitChan() <-chan struct{} {
	r.mu.Lock()
	ch := r.changed
	r.mu.Unlock()
	return ch
}

// since returns the retained notices selected by q, oldest first. A
// cursor at or past the newest notice yields an empty page (the >=
// comparison also guards the q.After+1 overflow at MaxUint64); a
// cursor that has fallen off the ring resumes from the oldest retained
// notice.
func (r *noticeRing) since(q NoticeQuery) []Notice {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.seq == 0 || q.After >= r.seq {
		return nil
	}
	n := uint64(len(r.buf))
	oldest := uint64(1)
	if r.seq > n {
		oldest = r.seq - n + 1
	}
	start := q.After + 1
	if start < oldest {
		start = oldest
	}
	var out []Notice
	for s := start; s <= r.seq; s++ {
		nt := &r.buf[(s-1)%n]
		if !q.match(nt) {
			continue
		}
		out = append(out, *nt)
		if q.Limit > 0 && len(out) == q.Limit {
			break
		}
	}
	return out
}

// last returns the newest assigned sequence, for Stats and tests.
func (r *noticeRing) last() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// Notices returns the retained state-transition records selected by q,
// oldest first, without blocking. An empty page means the cursor is
// caught up (or nothing matched the filters).
func (e *Engine) Notices(q NoticeQuery) []Notice {
	return e.notices.since(q)
}

// AwaitNotices blocks until at least one notice newer than q.After
// matches q, then returns the matching page (oldest first). Cancelling
// ctx returns its error. The caller advances q.After to the last Seq it
// received before the next call.
func (e *Engine) AwaitNotices(ctx context.Context, q NoticeQuery) ([]Notice, error) {
	for {
		// Fetch the wake channel before scanning: an append that lands
		// after the scan closes this very channel, so the select below
		// cannot sleep through it.
		ch := e.notices.waitChan()
		if ns := e.notices.since(q); len(ns) > 0 {
			return ns, nil
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}
