package engine

// The ordered-index machinery shared by every in-memory Store
// implementation: a storeShard couples one map of the ID space with an
// opIndex keeping those operations in listing order, so List pages are
// produced in O(limit) by walking (and, across shards, merging) index
// tails instead of cloning and sorting the whole store per request.

import (
	"sort"
	"sync"
	"time"

	"opdaemon/internal/core"
)

// opBefore reports whether a sorts before the key (createdAt, id) in
// index order: ascending CreatedAt with ties broken by descending ID.
// Walking an index backwards therefore yields the public List order —
// newest first, ties broken by ascending ID.
func opBefore(a *core.Operation, createdAt time.Time, id string) bool {
	if !a.CreatedAt.Equal(createdAt) {
		return a.CreatedAt.Before(createdAt)
	}
	return a.ID > id
}

// newerThan reports whether a sorts before b in the public newest-first
// order: descending CreatedAt with ties broken by ascending ID. It is
// the comparator the cross-shard merge uses.
func newerThan(a, b *core.Operation) bool {
	if !a.CreatedAt.Equal(b.CreatedAt) {
		return a.CreatedAt.After(b.CreatedAt)
	}
	return a.ID < b.ID
}

// opIndex holds one shard's operations sorted in index order (see
// opBefore). Operations submitted live arrive with non-decreasing
// CreatedAt, so the common insert is an append; out-of-order inserts
// (tests, future durable-store imports) binary-search their slot.
type opIndex struct {
	ops []*core.Operation
}

// search returns the position of the key (createdAt, id) in the index:
// the smallest i such that ops[i] does not sort before the key.
func (ix *opIndex) search(createdAt time.Time, id string) int {
	return sort.Search(len(ix.ops), func(i int) bool {
		return !opBefore(ix.ops[i], createdAt, id)
	})
}

// insert adds op, which must not already be present under its
// (CreatedAt, ID) key.
func (ix *opIndex) insert(op *core.Operation) {
	if n := len(ix.ops); n == 0 || opBefore(ix.ops[n-1], op.CreatedAt, op.ID) {
		ix.ops = append(ix.ops, op)
		return
	}
	i := ix.search(op.CreatedAt, op.ID)
	ix.ops = append(ix.ops, nil)
	copy(ix.ops[i+1:], ix.ops[i:])
	ix.ops[i] = op
}

// replace installs op at the position of its (CreatedAt, ID) key, which
// must be present. This is the copy-on-write publish: the index entry
// flips from the old immutable snapshot to the new one.
func (ix *opIndex) replace(op *core.Operation) {
	ix.ops[ix.search(op.CreatedAt, op.ID)] = op
}

// remove deletes the entry at the (createdAt, id) key, which must be
// present.
func (ix *opIndex) remove(createdAt time.Time, id string) {
	i := ix.search(createdAt, id)
	copy(ix.ops[i:], ix.ops[i+1:])
	ix.ops[len(ix.ops)-1] = nil // unpin the evicted snapshot
	ix.ops = ix.ops[:len(ix.ops)-1]
}

// storeShard is one partition of the ID space: a mutex-guarded map for
// point lookups plus the opIndex that keeps the partition ordered. The
// memStore is a single shard; the sharded store is many.
//
// Copy-on-write invariant: every *core.Operation reachable from ops or
// the index is immutable. update clones, mutates the clone, and
// republishes, so get and list hand out shared pointers with zero
// copying and readers outlive the lock safely.
type storeShard struct {
	mu  sync.RWMutex
	ops map[string]*core.Operation
	ix  opIndex
}

func newStoreShard() *storeShard {
	return &storeShard{ops: make(map[string]*core.Operation)}
}

// put installs op (taking ownership — the caller must not mutate it
// afterwards), replacing any previous operation with the same ID.
// Callers hold the write lock.
func (sh *storeShard) putLocked(op *core.Operation) {
	if old, ok := sh.ops[op.ID]; ok {
		sh.ix.remove(old.CreatedAt, old.ID)
	}
	sh.ops[op.ID] = op
	sh.ix.insert(op)
}

func (sh *storeShard) put(op *core.Operation) {
	sh.mu.Lock()
	sh.putLocked(op)
	sh.mu.Unlock()
}

// get returns the published snapshot — a shared immutable pointer, no
// clone, no allocation.
func (sh *storeShard) get(id string) (*core.Operation, error) {
	sh.mu.RLock()
	op, ok := sh.ops[id]
	sh.mu.RUnlock()
	if !ok {
		return nil, core.ErrNotFound
	}
	return op, nil
}

// update applies fn to a private clone of the stored operation and
// publishes the clone, all under the shard's write lock — concurrent
// read-modify-write transitions stay atomic, while snapshots handed
// out earlier keep their pre-update values forever.
func (sh *storeShard) update(id string, fn func(op *core.Operation)) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	old, ok := sh.ops[id]
	if !ok {
		return core.ErrNotFound
	}
	c := old.Clone()
	// This is THE sanctioned callback-under-lock: Update's contract is
	// that fn mutates a private clone atomically with its publication,
	// and every engine callback is a handful of field writes. Anything
	// heavier belongs outside the store.
	//lint:allow opdaemon/lockscope Update's clone-mutation callback is the store's core contract
	fn(c)
	sh.ops[id] = c
	if c.ID == old.ID && c.CreatedAt.Equal(old.CreatedAt) {
		sh.ix.replace(c)
	} else {
		// fn moved the operation's index key (nothing in the engine
		// does, but the contract doesn't forbid it): reindex under the
		// new key so ordering stays correct.
		delete(sh.ops, old.ID)
		sh.ops[c.ID] = c
		sh.ix.remove(old.CreatedAt, old.ID)
		sh.ix.insert(c)
	}
	return nil
}

func (sh *storeShard) delete(id string) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	old, ok := sh.ops[id]
	if !ok {
		return
	}
	delete(sh.ops, id)
	sh.ix.remove(old.CreatedAt, old.ID)
}

// sweepTerminalBefore evicts expired terminal operations in one pass
// over the index, compacting it in place — no clones, no sorting, and
// the map deletes ride the same traversal.
func (sh *storeShard) sweepTerminalBefore(cutoff time.Time) int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	kept := sh.ix.ops[:0]
	for _, op := range sh.ix.ops {
		if op.Status.Terminal() && op.UpdatedAt.Before(cutoff) {
			delete(sh.ops, op.ID)
			continue
		}
		kept = append(kept, op)
	}
	evicted := len(sh.ix.ops) - len(kept)
	for i := len(kept); i < len(sh.ix.ops); i++ {
		sh.ix.ops[i] = nil // unpin evicted snapshots
	}
	sh.ix.ops = kept
	return evicted
}

func (sh *storeShard) len() int {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return len(sh.ops)
}

// listCursor is one shard's position in a List merge: the shard's
// index slice and the next position to emit, walking downwards (the
// slice is oldest-first, so downwards is newest-first).
type listCursor struct {
	ops []*core.Operation
	pos int
}

func (c *listCursor) current() *core.Operation { return c.ops[c.pos] }

// collectNewest merges the cursors newest-first and returns the page
// selected by q (status filter, limit). Cursor resolution — turning
// q.Cursor into per-shard start positions — is the caller's job, since
// it needs the shard locks; collectNewest only walks. The caller must
// hold (at least) read locks on every contributing shard for the
// duration of the call; the returned page is built of shared immutable
// pointers, so it stays valid after the locks are released.
//
// Cost: O(len(cursors)) to seed the heap plus O(scanned · log shards)
// to emit, where scanned == limit when no status filter is set. The
// only allocations are the output slice and the heap.
func collectNewest(cursors []listCursor, q ListQuery) []*core.Operation {
	// Drop exhausted shards, then heapify by newest-first current op.
	h := cursors[:0]
	total := 0
	for _, c := range cursors {
		if c.pos >= 0 {
			h = append(h, c)
			total += c.pos + 1
		}
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDown(h, i)
	}

	capHint := total
	if q.Limit > 0 && q.Limit < capHint {
		capHint = q.Limit
	}
	// Non-nil even when empty so the API layer marshals [] not null.
	out := make([]*core.Operation, 0, capHint)
	for len(h) > 0 {
		op := h[0].current()
		if q.Status == "" || op.Status == q.Status {
			out = append(out, op)
			if q.Limit > 0 && len(out) == q.Limit {
				return out
			}
		}
		h[0].pos--
		if h[0].pos < 0 {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
		}
		if len(h) > 0 {
			siftDown(h, 0)
		}
	}
	return out
}

// siftDown restores the heap property at i for a heap ordered by
// newest-first current operations.
func siftDown(h []listCursor, i int) {
	for {
		left, right := 2*i+1, 2*i+2
		top := i
		if left < len(h) && newerThan(h[left].current(), h[top].current()) {
			top = left
		}
		if right < len(h) && newerThan(h[right].current(), h[top].current()) {
			top = right
		}
		if top == i {
			return
		}
		h[i], h[top] = h[top], h[i]
		i = top
	}
}

// startPos returns the index position a List walk over sh begins at:
// the newest entry when no cursor key is given, or the newest entry
// strictly older than the cursor key. -1 means the shard contributes
// nothing. Callers hold at least the read lock.
func (sh *storeShard) startPos(hasCursor bool, createdAt time.Time, id string) int {
	if !hasCursor {
		return len(sh.ix.ops) - 1
	}
	// Everything before the key's position sorts strictly older in
	// newest-first terms.
	return sh.ix.search(createdAt, id) - 1
}
