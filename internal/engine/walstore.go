package engine

// WALStore is the durable Store: the in-memory sharded store for the
// unchanged read path (0-alloc Get, O(limit) cursor List) layered over
// the append-only log in wal.go for persistence.
//
// The one invariant that shapes every mutation below: the log must
// record mutations in the same per-ID order the memory index publishes
// them, or replay could resurrect a stale state. Each mutation
// therefore stages its encoded record into the WAL batch buffer while
// still holding the shard's write lock — apply and enqueue are atomic
// per record. That nests walBatch.mu inside storeShard.mu (the one
// sanctioned lock nesting, policed by lockscope), and it is why writers
// never touch the file themselves: file I/O under a shard lock would
// stall every operation on the shard for an fsync.

import (
	"fmt"
	"log"
	"os"
	"time"

	"opdaemon/internal/core"
)

// WALConfig configures OpenWALStore. Zero values pick the defaults
// documented per field.
type WALConfig struct {
	// Dir is the log directory, created if absent. Required.
	Dir string
	// Sync is the fsync policy (default WALSyncGroup).
	Sync WALSyncMode
	// GroupWindow is how long the committer accumulates a batch before
	// committing it under WALSyncGroup (default 2ms). Larger windows
	// buy bigger batches (fewer fsyncs) at the cost of admission
	// latency.
	GroupWindow time.Duration
	// SegmentBytes rotates the open segment once it exceeds this size
	// (default 16 MiB).
	SegmentBytes int64
	// MaxSegments is how many closed segments may accumulate before
	// the committer folds them into a snapshot (default 8).
	MaxSegments int
	// Shards is the in-memory index's shard count, with the same
	// semantics as NewShardedStore (default DefaultShardCount).
	Shards int
	// Clock returns the current time; overridable in tests.
	Clock func() time.Time
}

// withDefaults resolves the zero values.
func (cfg WALConfig) withDefaults() WALConfig {
	if cfg.Sync == "" {
		cfg.Sync = WALSyncGroup
	}
	if cfg.GroupWindow <= 0 {
		cfg.GroupWindow = 2 * time.Millisecond
	}
	if cfg.SegmentBytes <= 0 {
		cfg.SegmentBytes = 16 << 20
	}
	if cfg.MaxSegments <= 0 {
		cfg.MaxSegments = 8
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return cfg
}

// sweepCompactThreshold is how many evictions one SweepTerminalBefore
// must produce before the store asks the WAL to compact: small steady
// sweeps ride along until segment-count compaction triggers, mass
// evictions reclaim replay time promptly.
const sweepCompactThreshold = 1024

// WALStore is a persistent Store; see the package comment above and
// docs/persistence.md. Close must be called to flush staged records;
// use OpenWALStore to build one.
type WALStore struct {
	inner *shardedStore
	wal   *wal
}

// Compile-time interface checks: a Store the engine can use, and the
// durable extension Engine.Stats surfaces.
var (
	_ Store        = (*WALStore)(nil)
	_ durableStore = (*WALStore)(nil)
)

// OpenWALStore opens (or creates) the log directory, replays snapshot
// plus segment suffix into a fresh in-memory index — repairing a torn
// tail on the way — and starts the group-commit loop. The returned
// store is ready for traffic; the caller owns Close.
func OpenWALStore(cfg WALConfig) (*WALStore, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("wal: WALConfig.Dir must be set")
	}
	if !cfg.Sync.Valid() {
		return nil, fmt.Errorf("wal: unknown sync mode %q (want %s, %s, or %s)",
			cfg.Sync, WALSyncAlways, WALSyncGroup, WALSyncNone)
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating %s: %w", cfg.Dir, err)
	}
	state, layout, err := recoverWALState(cfg.Dir)
	if err != nil {
		return nil, err
	}
	w, err := newWAL(cfg, layout)
	if err != nil {
		return nil, err
	}
	inner := NewShardedStore(cfg.Shards).(*shardedStore)
	if len(state) > 0 {
		ops := make([]*core.Operation, 0, len(state))
		for _, op := range state {
			ops = append(ops, op)
		}
		inner.PutBatch(ops)
	}
	s := &WALStore{inner: inner, wal: w}
	w.snapshotFn = s.dumpState
	w.start()
	return s, nil
}

// Close flushes staged records, stops the committer, and closes the
// open segment. The store must not be used afterwards.
func (s *WALStore) Close() error {
	return s.wal.close()
}

// Flush forces a commit of everything staged so far and waits for it —
// a durability barrier for callers (and tests) that need one outside
// the per-mutation policy.
func (s *WALStore) Flush() error {
	return s.wal.flush()
}

// WALStats reports the log's observability counters; Engine.Stats
// surfaces them when the engine's store is durable.
func (s *WALStore) WALStats() WALStats {
	return s.wal.snapshotStats()
}

// dumpState is the compactor's full-state snapshot source: the
// unbounded listing, which snapshots each shard under its own lock and
// merges lock-free.
func (s *WALStore) dumpState() []*core.Operation {
	ops, err := s.inner.List(ListQuery{})
	if err != nil {
		// The in-memory inner store cannot fail; keep the compactor
		// honest anyway.
		log.Printf("engine: wal snapshot listing state: %v", err)
		return nil
	}
	return ops
}

// Put inserts or replaces the operation and waits out the sync
// policy's admission durability (see WALSyncMode).
func (s *WALStore) Put(op *core.Operation) {
	rec, err := encodeOpRecord(walRecPut, op)
	if err != nil {
		// Memory-only fallback: the mutation still applies (matching
		// the in-memory stores) but will not survive a restart.
		log.Printf("engine: wal: %v; operation is not durable", err)
	}
	sh := s.inner.shard(op.ID)
	sh.mu.Lock()
	sh.putLocked(op)
	g := s.wal.enqueue(rec, 1)
	sh.mu.Unlock()
	s.wal.admitWait(g)
}

// PutBatch inserts or replaces every operation, staging each shard's
// records inside that shard's critical section and waiting for
// durability once for the whole batch.
func (s *WALStore) PutBatch(ops []*core.Operation) {
	if len(ops) == 1 {
		s.Put(ops[0])
		return
	}
	buckets := make([][]*core.Operation, len(s.inner.shards))
	for _, op := range ops {
		i := s.inner.shardIndex(op.ID)
		buckets[i] = append(buckets[i], op)
	}
	var last *walGen
	for i, bucket := range buckets {
		if len(bucket) == 0 {
			continue
		}
		// Encode the bucket outside the lock — the records capture the
		// operations as handed over, which ownership transfer makes
		// stable — and stage them inside it, keeping log order equal
		// to publish order.
		var frames []byte
		recs := 0
		for _, op := range bucket {
			rec, err := encodeOpRecord(walRecPut, op)
			if err != nil {
				log.Printf("engine: wal: %v; operation is not durable", err)
				continue
			}
			frames = append(frames, rec...)
			recs++
		}
		sh := s.inner.shards[i]
		sh.mu.Lock()
		for _, op := range bucket {
			sh.putLocked(op)
		}
		if g := s.wal.enqueue(frames, recs); g != nil {
			last = g
		}
		sh.mu.Unlock()
	}
	// All buckets board the same in-flight generation in practice;
	// waiting on the newest ticket covers every staged record because
	// generations commit in order.
	s.wal.admitWait(last)
}

// Get returns the published snapshot — the unchanged in-memory read
// path.
func (s *WALStore) Get(id string) (*core.Operation, error) {
	return s.inner.Get(id)
}

// List pages the in-memory index; see shardedStore.List.
func (s *WALStore) List(q ListQuery) ([]*core.Operation, error) {
	return s.inner.List(q)
}

// Update applies fn to a private clone under the shard lock, publishes
// the clone, and stages the update record in the same critical
// section. Under WALSyncAlways the caller waits for the fsync; group
// mode logs transitions asynchronously (see WALSyncMode).
func (s *WALStore) Update(id string, fn func(op *core.Operation)) error {
	sh := s.inner.shard(id)
	sh.mu.Lock()
	old, ok := sh.ops[id]
	if !ok {
		sh.mu.Unlock()
		return core.ErrNotFound
	}
	c := old.Clone()
	// Same sanctioned callback-under-lock as storeShard.update: fn
	// mutates a private clone atomically with its publication.
	//lint:allow opdaemon/lockscope Update's clone-mutation callback is the store's core contract
	fn(c)
	// Encode under the lock: the record must capture exactly the
	// published state, in publish order. Marshalling an operation is a
	// few hundred nanoseconds — small next to the fsync this design
	// keeps out of the critical section.
	rec, err := encodeOpRecord(walRecUpdate, c)
	if err != nil {
		log.Printf("engine: wal: %v; update is not durable", err)
	}
	sh.ops[id] = c
	if c.ID == old.ID && c.CreatedAt.Equal(old.CreatedAt) {
		sh.ix.replace(c)
	} else {
		// fn moved the index key (nothing in the engine does): reindex,
		// and log the old ID's disappearance so replay tracks it.
		delete(sh.ops, old.ID)
		sh.ops[c.ID] = c
		sh.ix.remove(old.CreatedAt, old.ID)
		sh.ix.insert(c)
		if c.ID != old.ID {
			rec = append(encodeDeleteRecord(old.ID), rec...)
		}
	}
	g := s.wal.enqueue(rec, 1)
	sh.mu.Unlock()
	s.wal.transitionWait(g)
	return nil
}

// Delete removes the operation and stages its tombstone.
func (s *WALStore) Delete(id string) {
	sh := s.inner.shard(id)
	sh.mu.Lock()
	old, ok := sh.ops[id]
	if !ok {
		// Nothing stored means nothing to tombstone: replay of the
		// existing log already yields absence.
		sh.mu.Unlock()
		return
	}
	delete(sh.ops, id)
	sh.ix.remove(old.CreatedAt, old.ID)
	g := s.wal.enqueue(encodeDeleteRecord(id), 1)
	sh.mu.Unlock()
	s.wal.transitionWait(g)
}

// SweepTerminalBefore evicts expired terminal operations shard by
// shard, staging one tombstone per eviction inside the shard's own
// critical section. A mass eviction additionally requests a compaction
// so the reclaimed history stops costing replay time.
func (s *WALStore) SweepTerminalBefore(cutoff time.Time) int {
	evicted := 0
	var last *walGen
	for _, sh := range s.inner.shards {
		sh.mu.Lock()
		kept := sh.ix.ops[:0]
		var frames []byte
		recs := 0
		for _, op := range sh.ix.ops {
			if op.Status.Terminal() && op.UpdatedAt.Before(cutoff) {
				delete(sh.ops, op.ID)
				frames = appendWALFrame(frames, walRecDelete, []byte(op.ID))
				recs++
				continue
			}
			kept = append(kept, op)
		}
		for i := len(kept); i < len(sh.ix.ops); i++ {
			sh.ix.ops[i] = nil // unpin evicted snapshots
		}
		sh.ix.ops = kept
		if recs > 0 {
			if g := s.wal.enqueue(frames, recs); g != nil {
				last = g
			}
		}
		sh.mu.Unlock()
		evicted += recs
	}
	if evicted >= sweepCompactThreshold {
		s.wal.requestCompact()
	}
	s.wal.transitionWait(last)
	return evicted
}

// Len counts the stored operations.
func (s *WALStore) Len() int {
	return s.inner.Len()
}

// closeAbrupt is the crash-simulation hook for the recovery tests: the
// committer exits without the final flush, dropping staged records the
// way a killed process would.
func (s *WALStore) closeAbrupt() {
	s.wal.abort()
}
