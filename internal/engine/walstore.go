package engine

// WALStore is the durable Store: the in-memory sharded store for the
// unchanged read path (0-alloc Get, O(limit) cursor List) layered over
// the append-only log in wal.go for persistence.
//
// The one invariant that shapes every mutation below: the log must
// record mutations in the same per-ID order the memory index publishes
// them, or replay could resurrect a stale state. Each mutation
// therefore stages its encoded record into the WAL batch buffer while
// still holding the shard's write lock — apply and enqueue are atomic
// per record. That nests walBatch.mu inside storeShard.mu (the one
// sanctioned lock nesting, policed by lockscope), and it is why writers
// never touch the file themselves: file I/O under a shard lock would
// stall every operation on the shard for an fsync.
//
// The second invariant: records are ENCODED before the shard lock is
// taken (lockscope's codec rule machine-enforces it). The lock covers
// only apply + staging of a prepared buffer, so its hold time is a few
// pointer writes and a memcpy, not a marshal. Put and Delete encode
// up front; Update encodes optimistically from a lock-free snapshot
// read and retries on the rare conflicting publish (detected by
// pointer identity — published operations are immutable, so the map
// still holding the same pointer proves nothing intervened).
//
// Updates whose mutation is a pure lifecycle transition log a compact
// delta record (id + mutable fields) instead of a full snapshot.
// Every delta chain is bounded by walDeltaChainMax: the store counts
// consecutive deltas per ID (per-shard maps, mutated only under the
// shard's write lock) and logs a fresh full record when the chain
// would grow past the bound, so replay work and torn-tail blast
// radius per op stay O(1).

import (
	"fmt"
	"log"
	"os"
	"time"

	"opdaemon/internal/core"
)

// WALConfig configures OpenWALStore. Zero values pick the defaults
// documented per field.
type WALConfig struct {
	// Dir is the log directory, created if absent. Required.
	Dir string
	// Sync is the fsync policy (default WALSyncGroup).
	Sync WALSyncMode
	// GroupWindow is how long the committer accumulates a batch before
	// committing it under WALSyncGroup (default 2ms). Larger windows
	// buy bigger batches (fewer fsyncs) at the cost of admission
	// latency.
	GroupWindow time.Duration
	// SegmentBytes rotates the open segment once it exceeds this size
	// (default 16 MiB).
	SegmentBytes int64
	// MaxSegments is how many closed segments may accumulate before
	// the committer folds them into a snapshot (default 8).
	MaxSegments int
	// Shards is the in-memory index's shard count, with the same
	// semantics as NewShardedStore (default DefaultShardCount).
	Shards int
	// Clock returns the current time; overridable in tests.
	Clock func() time.Time
}

// withDefaults resolves the zero values.
func (cfg WALConfig) withDefaults() WALConfig {
	if cfg.Sync == "" {
		cfg.Sync = WALSyncGroup
	}
	if cfg.GroupWindow <= 0 {
		cfg.GroupWindow = 2 * time.Millisecond
	}
	if cfg.SegmentBytes <= 0 {
		cfg.SegmentBytes = 16 << 20
	}
	if cfg.MaxSegments <= 0 {
		cfg.MaxSegments = 8
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return cfg
}

// sweepCompactThreshold is how many evictions one SweepTerminalBefore
// must produce before the store asks the WAL to compact: small steady
// sweeps ride along until segment-count compaction triggers, mass
// evictions reclaim replay time promptly.
const sweepCompactThreshold = 1024

// walDeltaChainMax bounds how many consecutive delta records one
// operation may accumulate before the next update logs a full
// snapshot again. Engine lifecycles log 2–3 updates per op, so the
// bound exists for pathological callers, not the steady state.
const walDeltaChainMax = 16

// WALStore is a persistent Store; see the package comment above and
// docs/persistence.md. Close must be called to flush staged records;
// use OpenWALStore to build one.
type WALStore struct {
	inner *shardedStore
	wal   *wal
	// deltaN counts each live delta chain's length, one map per shard,
	// indexed in lockstep with inner.shards and mutated only under that
	// shard's write lock. An absent entry means "last logged record was
	// a full snapshot".
	deltaN []map[string]uint8
}

// Compile-time interface checks: a Store the engine can use, and the
// durable extension Engine.Stats surfaces.
var (
	_ Store        = (*WALStore)(nil)
	_ durableStore = (*WALStore)(nil)
)

// OpenWALStore opens (or creates) the log directory, replays snapshot
// plus segment suffix into a fresh in-memory index — repairing a torn
// tail on the way — and starts the group-commit loop. The returned
// store is ready for traffic; the caller owns Close.
func OpenWALStore(cfg WALConfig) (*WALStore, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("wal: WALConfig.Dir must be set")
	}
	if !cfg.Sync.Valid() {
		return nil, fmt.Errorf("wal: unknown sync mode %q (want %s, %s, or %s)",
			cfg.Sync, WALSyncAlways, WALSyncGroup, WALSyncNone)
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating %s: %w", cfg.Dir, err)
	}
	state, layout, err := recoverWALState(cfg.Dir)
	if err != nil {
		return nil, err
	}
	w, err := newWAL(cfg, layout)
	if err != nil {
		return nil, err
	}
	inner := NewShardedStore(cfg.Shards).(*shardedStore)
	if len(state) > 0 {
		ops := make([]*core.Operation, 0, len(state))
		for _, op := range state {
			ops = append(ops, op)
		}
		inner.bulkLoad(ops)
	}
	deltaN := make([]map[string]uint8, len(inner.shards))
	for i := range deltaN {
		deltaN[i] = make(map[string]uint8)
	}
	s := &WALStore{inner: inner, wal: w, deltaN: deltaN}
	w.snapshotFn = s.dumpState
	w.start()
	return s, nil
}

// Close flushes staged records, stops the committer, and closes the
// open segment. The store must not be used afterwards.
func (s *WALStore) Close() error {
	return s.wal.close()
}

// Flush forces a commit of everything staged so far and waits for it —
// a durability barrier for callers (and tests) that need one outside
// the per-mutation policy.
func (s *WALStore) Flush() error {
	return s.wal.flush()
}

// WALStats reports the log's observability counters; Engine.Stats
// surfaces them when the engine's store is durable.
func (s *WALStore) WALStats() WALStats {
	return s.wal.snapshotStats()
}

// dumpState is the compactor's full-state snapshot source: the
// unbounded listing, which snapshots each shard under its own lock and
// merges lock-free.
func (s *WALStore) dumpState() []*core.Operation {
	ops, err := s.inner.List(ListQuery{})
	if err != nil {
		// The in-memory inner store cannot fail; keep the compactor
		// honest anyway.
		log.Printf("engine: wal snapshot listing state: %v", err)
		return nil
	}
	return ops
}

// Put inserts or replaces the operation and waits out the sync
// policy's admission durability (see WALSyncMode). The record is
// encoded into a pooled buffer before the lock; the critical section
// is apply + stage only.
func (s *WALStore) Put(op *core.Operation) {
	buf := getEncBuf()
	rec, err := encodeOpRecordV2(*buf, op)
	if err != nil {
		// Memory-only fallback: the mutation still applies (matching
		// the in-memory stores) but will not survive a restart.
		log.Printf("engine: %v; operation is not durable", err)
	}
	i := s.inner.shardIndex(op.ID)
	sh := s.inner.shards[i]
	sh.mu.Lock()
	sh.putLocked(op)
	delete(s.deltaN[i], op.ID)
	g := s.wal.enqueue(rec, 1)
	sh.mu.Unlock()
	*buf = rec
	putEncBuf(buf)
	s.wal.admitWait(g)
}

// PutBatch inserts or replaces every operation, staging each shard's
// records inside that shard's critical section and waiting for
// durability once for the whole batch.
func (s *WALStore) PutBatch(ops []*core.Operation) {
	if len(ops) == 1 {
		s.Put(ops[0])
		return
	}
	buckets := make([][]*core.Operation, len(s.inner.shards))
	for _, op := range ops {
		i := s.inner.shardIndex(op.ID)
		buckets[i] = append(buckets[i], op)
	}
	var last *walGen
	buf := getEncBuf()
	for i, bucket := range buckets {
		if len(bucket) == 0 {
			continue
		}
		// Encode the bucket outside the lock — the records capture the
		// operations as handed over, which ownership transfer makes
		// stable — and stage them inside it, keeping log order equal
		// to publish order.
		frames := (*buf)[:0]
		recs := 0
		for _, op := range bucket {
			next, err := encodeOpRecordV2(frames, op)
			if err != nil {
				log.Printf("engine: %v; operation is not durable", err)
				frames = next // encoder rewound to the frame mark
				continue
			}
			frames = next
			recs++
		}
		sh := s.inner.shards[i]
		sh.mu.Lock()
		for _, op := range bucket {
			sh.putLocked(op)
			delete(s.deltaN[i], op.ID)
		}
		if g := s.wal.enqueue(frames, recs); g != nil {
			last = g
		}
		sh.mu.Unlock()
		*buf = frames
	}
	putEncBuf(buf)
	// All buckets board the same in-flight generation in practice;
	// waiting on the newest ticket covers every staged record because
	// generations commit in order.
	s.wal.admitWait(last)
}

// Get returns the published snapshot — the unchanged in-memory read
// path.
func (s *WALStore) Get(id string) (*core.Operation, error) {
	return s.inner.Get(id)
}

// List pages the in-memory index; see shardedStore.List.
func (s *WALStore) List(q ListQuery) ([]*core.Operation, error) {
	return s.inner.List(q)
}

// Update applies fn to a private clone of the published snapshot,
// encodes the result with no lock held, then publishes clone and
// staged record atomically under the shard's write lock. Conflicts are
// detected optimistically: published snapshots are immutable, so if
// the shard still maps id to the same pointer read before encoding,
// nothing intervened and the publish is ordered correctly; otherwise
// the whole read-mutate-encode round retries against the fresh
// snapshot (so fn may run more than once — see Store.Update's
// contract). Contention on one ID is engine-rare (a transition race
// with Cancel), so retries are too.
//
// A pure lifecycle transition logs a compact delta record; anything
// that touched immutable-by-convention fields — or a delta chain at
// its bound — logs a full snapshot. Under WALSyncAlways the caller
// waits for the fsync; group mode logs transitions asynchronously (see
// WALSyncMode).
func (s *WALStore) Update(id string, fn func(op *core.Operation)) error {
	i := s.inner.shardIndex(id)
	sh := s.inner.shards[i]
	deltas := s.deltaN[i]
	for {
		sh.mu.RLock()
		old, ok := sh.ops[id]
		var chain uint8
		if ok {
			chain = deltas[id]
		}
		sh.mu.RUnlock()
		if !ok {
			return core.ErrNotFound
		}

		c := old.Clone()
		fn(c)
		sameKey := c.ID == old.ID && c.CreatedAt.Equal(old.CreatedAt)
		asDelta := sameKey && chain+1 < walDeltaChainMax && core.DeltaEligible(old, c)

		buf := getEncBuf()
		rec := *buf
		if asDelta {
			rec = encodeDeltaRecordV2(rec, c)
		} else {
			if c.ID != old.ID {
				// fn moved the ID (nothing in the engine does): log the
				// old ID's disappearance so replay tracks it.
				rec = appendDeleteRecord(rec, old.ID)
			}
			var err error
			rec, err = encodeOpRecordV2(rec, c)
			if err != nil {
				log.Printf("engine: %v; update is not durable", err)
			}
		}

		sh.mu.Lock()
		if sh.ops[id] != old {
			// A conflicting publish (another update, a delete, a re-put)
			// landed between snapshot and lock: the clone and record
			// describe a stale base. Drop both and retry.
			sh.mu.Unlock()
			*buf = rec
			putEncBuf(buf)
			continue
		}
		if sameKey {
			sh.ops[id] = c
			sh.ix.replace(c)
		} else {
			delete(sh.ops, old.ID)
			sh.ops[c.ID] = c
			sh.ix.remove(old.CreatedAt, old.ID)
			sh.ix.insert(c)
		}
		if asDelta {
			deltas[id] = chain + 1
		} else {
			delete(deltas, id)
		}
		g := s.wal.enqueue(rec, 1)
		sh.mu.Unlock()
		*buf = rec
		putEncBuf(buf)
		s.wal.transitionWait(g)
		return nil
	}
}

// Delete removes the operation and stages its tombstone. The
// tombstone is encoded up front — wasted work when the operation turns
// out not to exist, but deletes of absent IDs are not a path worth a
// codec call inside the lock.
func (s *WALStore) Delete(id string) {
	buf := getEncBuf()
	rec := appendDeleteRecord(*buf, id)
	i := s.inner.shardIndex(id)
	sh := s.inner.shards[i]
	sh.mu.Lock()
	old, ok := sh.ops[id]
	if !ok {
		// Nothing stored means nothing to tombstone: replay of the
		// existing log already yields absence.
		sh.mu.Unlock()
		*buf = rec
		putEncBuf(buf)
		return
	}
	delete(sh.ops, id)
	delete(s.deltaN[i], id)
	sh.ix.remove(old.CreatedAt, old.ID)
	g := s.wal.enqueue(rec, 1)
	sh.mu.Unlock()
	*buf = rec
	putEncBuf(buf)
	s.wal.transitionWait(g)
}

// SweepTerminalBefore evicts expired terminal operations shard by
// shard. Each shard takes two passes so no tombstone is encoded under
// the lock: a read-locked pass collects eviction candidates, the
// tombstones are encoded lock-free, and a write-locked pass re-checks
// each candidate by pointer identity (a re-Put between the passes
// publishes a different snapshot and is left alone), evicts the
// confirmed ones, and stages their pre-encoded frames. A mass eviction
// additionally requests a compaction so the reclaimed history stops
// costing replay time.
func (s *WALStore) SweepTerminalBefore(cutoff time.Time) int {
	evicted := 0
	var last *walGen
	buf := getEncBuf()
	var cands []*core.Operation
	var offs []int
	for i, sh := range s.inner.shards {
		cands = cands[:0]
		sh.mu.RLock()
		for _, op := range sh.ix.ops {
			if op.Status.Terminal() && op.UpdatedAt.Before(cutoff) {
				cands = append(cands, op)
			}
		}
		sh.mu.RUnlock()
		if len(cands) == 0 {
			continue
		}

		// Encode every candidate's tombstone contiguously, remembering
		// frame boundaries so the confirm pass can stage per-candidate
		// slices.
		rec := (*buf)[:0]
		offs = offs[:0]
		for _, op := range cands {
			offs = append(offs, len(rec))
			rec = appendDeleteRecord(rec, op.ID)
		}
		offs = append(offs, len(rec))
		*buf = rec

		sh.mu.Lock()
		var frames []byte
		recs := 0
		confirmed := make(map[string]bool, len(cands))
		for ci, op := range cands {
			if sh.ops[op.ID] != op {
				continue // republished since the scan; not ours to evict
			}
			delete(sh.ops, op.ID)
			delete(s.deltaN[i], op.ID)
			confirmed[op.ID] = true
			frames = append(frames, rec[offs[ci]:offs[ci+1]]...)
			recs++
		}
		if recs > 0 {
			kept := sh.ix.ops[:0]
			for _, op := range sh.ix.ops {
				if !confirmed[op.ID] {
					kept = append(kept, op)
				}
			}
			for j := len(kept); j < len(sh.ix.ops); j++ {
				sh.ix.ops[j] = nil // unpin evicted snapshots
			}
			sh.ix.ops = kept
			if g := s.wal.enqueue(frames, recs); g != nil {
				last = g
			}
		}
		sh.mu.Unlock()
		evicted += recs
	}
	putEncBuf(buf)
	if evicted >= sweepCompactThreshold {
		s.wal.requestCompact()
	}
	s.wal.transitionWait(last)
	return evicted
}

// Len counts the stored operations.
func (s *WALStore) Len() int {
	return s.inner.Len()
}

// closeAbrupt is the crash-simulation hook for the recovery tests: the
// committer exits without the final flush, dropping staged records the
// way a killed process would.
func (s *WALStore) closeAbrupt() {
	s.wal.abort()
}
