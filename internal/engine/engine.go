// Package engine schedules and executes operations on a bounded worker
// pool, recording their lifecycle in a Store. It is the only writer of
// operation state; the API layer reads snapshots through the engine.
//
// Every operation runs under its own context.Context, derived from the
// engine's run context: cancelling the operation (Cancel), exceeding
// its per-kind deadline, or shutting the engine down all signal the
// handler through that one context, and the engine records the
// corresponding terminal state when the handler returns.
package engine

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math"
	"sync"
	"time"

	"opdaemon/internal/core"
)

// Handler executes one kind of operation. It receives the operation's
// own context — cancelled when the operation is aborted, its deadline
// expires, or the engine shuts down — and the operation's published
// snapshot (immutable and shared; read it, never mutate it), and
// returns a JSON-serialisable result or an error. Handlers that
// honour ctx are cancellable; handlers that ignore it run to
// completion regardless.
type Handler func(ctx context.Context, op *core.Operation) (any, error)

// registration is a handler plus its per-kind execution options.
type registration struct {
	h Handler
	// deadline bounds one execution of this kind; zero falls back to
	// the engine's DefaultDeadline (which may itself be zero:
	// unbounded).
	deadline time.Duration
	// priority is the kind's default scheduling class for submissions
	// that do not set one; empty falls back to core.PriorityNormal.
	priority core.Priority
}

// RegisterOption tunes one kind's registration.
type RegisterOption func(*registration)

// WithDeadline bounds each execution of the kind: the operation's
// context is cancelled after d and the operation is recorded as failed
// with a deadline error. d <= 0 means no per-kind bound.
func WithDeadline(d time.Duration) RegisterOption {
	return func(r *registration) { r.deadline = d }
}

// WithPriority sets the kind's default scheduling class, used when a
// submission does not carry its own. Invalid values are ignored.
func WithPriority(p core.Priority) RegisterOption {
	return func(r *registration) {
		if p.Valid() {
			r.priority = p
		}
	}
}

// Config tunes an Engine. Zero values pick sensible defaults.
type Config struct {
	// Workers is the number of concurrent executors (default 4).
	Workers int
	// QueueDepth bounds the number of queued-but-unstarted
	// operations (default 1024). Submissions beyond it fail fast
	// with core.ErrQueueFull instead of blocking the API.
	QueueDepth int
	// Store holds operation state (default
	// NewShardedStore(DefaultShardCount)).
	Store Store
	// Clock returns the current time; overridable in tests.
	Clock func() time.Time
	// OpTTL is how long terminal operations are retained. Zero keeps
	// them forever; a positive TTL starts a janitor goroutine that
	// evicts terminal operations whose last update is older than the
	// TTL, bounding store memory under sustained load.
	OpTTL time.Duration
	// GCInterval is how often the janitor sweeps (default OpTTL/2,
	// floored at one second). Ignored when OpTTL is zero.
	GCInterval time.Duration
	// DefaultDeadline bounds execution of kinds registered without
	// WithDeadline. Zero means unbounded.
	DefaultDeadline time.Duration
	// NoticeRingSize bounds the state-transition feed (default 4096).
	// Once full, new notices overwrite the oldest; a long-poll cursor
	// that falls off the ring resumes from the oldest retained notice.
	NoticeRingSize int
	// QueuePolicy selects how the scheduler drains priority bands:
	// PolicyStrict (the default) serves the highest non-empty band
	// first, PolicyWeighted gives each band a BandWeights-proportional
	// share. Unknown values fall back to strict.
	QueuePolicy string
	// BandWeights are the per-band dispatch credits (high, normal,
	// low) used by PolicyWeighted; entries < 1 default to {8, 4, 1}.
	BandWeights [3]int
	// DRRQuantum is how many operations one client may dispatch per
	// round-robin turn within a band (default 1: strict per-client
	// alternation).
	DRRQuantum int
	// PromoteAfter is the scheduler's aging threshold: an operation in
	// a band below the one being served that has queued longer is
	// dispatched next (capped at one aged dispatch in four, so aged
	// backlogs cannot invert the bands). Zero picks the 5s default;
	// negative disables aging.
	PromoteAfter time.Duration
	// ShedThreshold is the admission-control knob: a submission or
	// batch that would push queue depth past this fraction of
	// QueueDepth is refused with core.ErrSaturated (HTTP 429 +
	// Retry-After) instead of queueing further — the threshold is a
	// hard depth bound, batches included. Values outside (0, 1)
	// disable shedding, leaving only the hard ErrQueueFull bound.
	ShedThreshold float64
}

// Engine owns the operation lifecycle: it accepts submissions, runs
// them on a worker pool, and exposes read access to their state.
type Engine struct {
	store           Store
	clock           func() time.Time
	workers         int
	defaultDeadline time.Duration
	opTTL           time.Duration
	gcInterval      time.Duration
	// sched holds accepted-but-undispatched operations in priority
	// bands of per-client DRR queues; tokens counts them, one token
	// per scheduled item, so workers block on the channel and never
	// poll the scheduler. Closing tokens (Shutdown) drains the
	// remaining buffered tokens through the workers, emptying sched.
	sched  *schedQueue
	tokens chan struct{}
	// meter tracks the observed drain rate; RetryAfter divides queue
	// depth by it to tell shed clients when to come back.
	meter drainMeter
	// shedAt is the queue depth at which admission control starts
	// refusing submissions with core.ErrSaturated; shedAt >= queue
	// capacity disables shedding.
	shedAt      int
	slots       chan struct{}
	drained     chan struct{}
	janitorStop chan struct{}
	wg          sync.WaitGroup
	runCtx      context.Context
	runStop     context.CancelFunc
	mu          sync.RWMutex
	handlers    map[string]registration
	closed      bool

	// cancels is the sharded registry of in-flight operations' cancel
	// functions. It has its own locks so Cancel never contends with
	// the submission path, and it is sharded so concurrent cancels and
	// worker install/retire traffic rarely contend with each other.
	cancels *cancelRegistry

	// watch is the sharded broadcast hub behind AwaitChange: every
	// published transition wakes exactly the long-poll waiters
	// registered for that operation ID. notices is the bounded
	// transition feed behind Notices/AwaitNotices. Both are fed by
	// publish, the single fan-out point after a state change lands in
	// the store.
	watch   *watchHub
	notices *noticeRing
}

// New builds and starts an engine; workers begin draining the queue
// immediately, and a janitor goroutine starts when OpTTL is set.
func New(cfg Config) *Engine {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	if cfg.Store == nil {
		cfg.Store = NewShardedStore(0)
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.OpTTL > 0 && cfg.GCInterval <= 0 {
		cfg.GCInterval = cfg.OpTTL / 2
		if cfg.GCInterval < time.Second {
			cfg.GCInterval = time.Second
		}
	}
	if cfg.QueuePolicy != PolicyWeighted {
		cfg.QueuePolicy = PolicyStrict
	}
	for i, w := range cfg.BandWeights {
		if w < 1 {
			cfg.BandWeights[i] = []int{8, 4, 1}[i]
		}
	}
	if cfg.DRRQuantum < 1 {
		cfg.DRRQuantum = 1
	}
	switch {
	case cfg.PromoteAfter == 0:
		cfg.PromoteAfter = 5 * time.Second
	case cfg.PromoteAfter < 0:
		cfg.PromoteAfter = 0 // aging disabled
	}
	// Shedding starts at ceil(threshold * capacity) queued operations;
	// outside (0, 1) only the hard ErrQueueFull bound applies.
	shedAt := cfg.QueueDepth + 1
	if cfg.ShedThreshold > 0 && cfg.ShedThreshold < 1 {
		shedAt = int(math.Ceil(cfg.ShedThreshold * float64(cfg.QueueDepth)))
		if shedAt < 1 {
			shedAt = 1
		}
	}
	// The engine's run context is the process-lifetime root that every
	// handler context derives from; it is cancelled by Shutdown, not by
	// any caller, so a detached root is the correct shape here.
	//lint:allow opdaemon/ctxdiscipline engine run-root is owned by Shutdown, not a caller
	ctx, stop := context.WithCancel(context.Background())
	e := &Engine{
		store:           cfg.Store,
		clock:           cfg.Clock,
		workers:         cfg.Workers,
		defaultDeadline: cfg.DefaultDeadline,
		opTTL:           cfg.OpTTL,
		gcInterval:      cfg.GCInterval,
		sched:           newSchedQueue(cfg.QueuePolicy, cfg.BandWeights, cfg.DRRQuantum, cfg.PromoteAfter),
		tokens:          make(chan struct{}, cfg.QueueDepth),
		shedAt:          shedAt,
		slots:           make(chan struct{}, cfg.QueueDepth),
		drained:         make(chan struct{}),
		janitorStop:     make(chan struct{}),
		runCtx:          ctx,
		runStop:         stop,
		handlers:        make(map[string]registration),
		cancels:         newCancelRegistry(0),
		watch:           newWatchHub(0),
		notices:         newNoticeRing(cfg.NoticeRingSize),
	}
	for i := 0; i < cfg.Workers; i++ {
		e.wg.Add(1)
		go e.worker()
	}
	if e.opTTL > 0 {
		go e.janitor()
	}
	return e
}

// Register installs the handler for an operation kind. Registering
// after submissions have started is safe; re-registering replaces the
// previous handler and its options.
func (e *Engine) Register(kind string, h Handler, opts ...RegisterOption) {
	reg := registration{h: h}
	for _, opt := range opts {
		opt(&reg)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.handlers[kind] = reg
}

// Kinds returns the registered operation kinds, for diagnostics.
func (e *Engine) Kinds() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, 0, len(e.handlers))
	for k := range e.handlers {
		out = append(out, k)
	}
	return out
}

func (e *Engine) registration(kind string) (registration, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	reg, ok := e.handlers[kind]
	return reg, ok
}

// Stats is a point-in-time saturation snapshot, cheap enough to serve
// on every health poll.
type Stats struct {
	// Workers is the configured executor count.
	Workers int `json:"workers"`
	// QueueDepth is the number of accepted operations no worker has
	// picked up yet.
	QueueDepth int `json:"queue_depth"`
	// QueueCapacity is the configured queue bound; submissions beyond
	// it fail fast.
	QueueCapacity int `json:"queue_capacity"`
	// StoreLen is the number of operations currently retained.
	StoreLen int `json:"store_len"`
	// WatchWaiters is the number of long-poll waiters currently
	// registered in the broadcast hub.
	WatchWaiters int `json:"watch_waiters"`
	// LastNotice is the newest sequence number assigned in the notices
	// feed (0 before the first transition).
	LastNotice uint64 `json:"last_notice"`
	// QueueBands is the scheduled (not yet dispatched) operation count
	// per priority band.
	QueueBands map[string]int `json:"queue_bands"`
	// QueueClients is the scheduled operation count per client key,
	// aggregated across bands. Anonymous submissions share the ""
	// key.
	QueueClients map[string]int `json:"queue_clients"`
	// Shedding reports whether admission control is currently refusing
	// submissions (queue depth has reached ShedAt).
	Shedding bool `json:"shedding"`
	// ShedAt is the queue depth at which shedding starts; a value
	// above QueueCapacity means shedding is disabled.
	ShedAt int `json:"shed_at"`
	// DrainPerSec is the observed dequeue rate over the trailing
	// window, the denominator of Retry-After.
	DrainPerSec float64 `json:"drain_per_sec"`
	// Durable reports whether the store persists state across
	// restarts (a WAL backend). The WAL fields below are zero when it
	// is false.
	Durable bool `json:"durable"`
	// WALSegments is the number of live log segment files.
	WALSegments int `json:"wal_segments"`
	// WALBatchP50 is the median records per group commit over recent
	// commits — how much work each fsync amortises.
	WALBatchP50 float64 `json:"wal_batch_p50"`
	// FsyncsPerSec is the WAL's observed fsync rate over the trailing
	// window.
	FsyncsPerSec float64 `json:"fsyncs_per_sec"`
}

// durableStore is the optional extension a persistent Store
// implements; Stats surfaces its counters when the engine's store has
// them.
type durableStore interface {
	WALStats() WALStats
}

// Stats reports queue and store saturation. QueueDepth counts reserved
// queue slots, so it includes operations between acceptance and
// dequeue.
func (e *Engine) Stats() Stats {
	bands, clients := e.sched.depths()
	depth := len(e.slots)
	st := Stats{
		Workers:       e.workers,
		QueueDepth:    depth,
		QueueCapacity: cap(e.slots),
		StoreLen:      e.store.Len(),
		WatchWaiters:  e.watch.waiters(),
		LastNotice:    e.notices.last(),
		QueueBands:    bands,
		QueueClients:  clients,
		Shedding:      depth >= e.shedAt,
		ShedAt:        e.shedAt,
		DrainPerSec:   e.meter.rate(e.clock()),
	}
	if ds, ok := e.store.(durableStore); ok {
		ws := ds.WALStats()
		st.Durable = true
		st.WALSegments = ws.Segments
		st.WALBatchP50 = ws.BatchP50
		st.FsyncsPerSec = ws.FsyncsPerSec
	}
	return st
}

// retryCeiling bounds RetryAfter so shed clients never back off for
// longer than the queue could plausibly take to drain.
const retryCeiling = 30 * time.Second

// RetryAfter estimates how long a shed client should wait before
// resubmitting: current queue depth over the observed drain rate,
// clamped to [1s, 30s]. With no observed drain (cold start, wedged
// handlers) it returns the ceiling — the honest answer is "a while".
func (e *Engine) RetryAfter() time.Duration {
	rate := e.meter.rate(e.clock())
	if rate <= 0 {
		return retryCeiling
	}
	d := time.Duration(math.Ceil(float64(len(e.slots))/rate)) * time.Second
	if d < time.Second {
		return time.Second
	}
	if d > retryCeiling {
		return retryCeiling
	}
	return d
}

// BatchItem describes one operation in a batch submission.
type BatchItem struct {
	// Kind selects the registered handler.
	Kind string
	// Params is the handler's input, passed through verbatim.
	Params map[string]any
	// Priority is the item's scheduling class; empty falls back to the
	// submission-level AtPriority option, then the kind's registered
	// default, then normal. Non-empty invalid values fail validation.
	Priority core.Priority
}

// submitOptions collects the per-submission scheduling attributes.
type submitOptions struct {
	client   string
	priority core.Priority
}

// SubmitOption tunes one Submit or SubmitBatch call.
type SubmitOption func(*submitOptions)

// AsClient attributes the submission to a client key; the scheduler's
// fair queueing guarantees each key its share of dispatches, so one
// hot tenant cannot starve the rest. Empty (the default) pools the
// submission with all other anonymous work.
func AsClient(key string) SubmitOption {
	return func(o *submitOptions) { o.client = key }
}

// AtPriority sets the submission's scheduling class, overriding the
// kinds' registered defaults for every item that does not carry its
// own. Empty defers to those defaults; non-empty invalid values fail
// validation.
func AtPriority(p core.Priority) SubmitOption {
	return func(o *submitOptions) { o.priority = p }
}

// Submit validates and enqueues an operation of the given kind,
// returning its queued snapshot. It fails fast with
// core.ErrUnknownKind, core.ErrShuttingDown, core.ErrSaturated (the
// admission-control shed), or core.ErrQueueFull. The context covers
// admission only — a caller that has already given up (request
// aborted, client gone) is rejected with its ctx error instead of
// enqueuing work nobody will read; it does not bound the operation's
// execution, which is governed by the kind's deadline.
func (e *Engine) Submit(ctx context.Context, kind string, params map[string]any, opts ...SubmitOption) (*core.Operation, error) {
	ops, err := e.SubmitBatch(ctx, []BatchItem{{Kind: kind, Params: params}}, opts...)
	if err != nil {
		// A single-item batch rejection carries exactly one item
		// error; surface it directly so callers keep seeing the
		// same ErrUnknownKind / InvalidError values as before
		// batching existed.
		var berr *core.BatchError
		if errors.As(err, &berr) && len(berr.Items) == 1 {
			return nil, berr.Items[0].Err
		}
		return nil, err
	}
	return ops[0], nil
}

// SubmitBatch validates and enqueues a batch of operations atomically:
// either every item is accepted and queued snapshots are returned in
// batch order, or nothing is enqueued. Validation failures are
// reported per item through *core.BatchError; admission, capacity, and
// shutdown failures (core.ErrSaturated, core.ErrQueueFull,
// core.ErrShuttingDown) apply to the batch as a whole. Store writes
// are amortised into a single PutBatch call, so large batches take
// each store lock O(shards) times instead of O(items). The context
// covers admission only (see Submit): once the batch is validated and
// its queue slots are reserved it commits, so a context cancelled
// mid-flight never yields a half-enqueued batch.
func (e *Engine) SubmitBatch(ctx context.Context, items []BatchItem, opts ...SubmitOption) ([]*core.Operation, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(items) == 0 {
		return nil, &core.InvalidError{Field: "batch", Reason: "must contain at least one item"}
	}
	if len(items) > cap(e.slots) {
		// Such a batch can never be accepted, so reject it as a
		// client error rather than ErrQueueFull, whose "retry later"
		// semantics would have the client retry forever.
		return nil, &core.InvalidError{
			Field:  "batch",
			Reason: fmt.Sprintf("size %d exceeds queue capacity %d", len(items), cap(e.slots)),
		}
	}
	var sub submitOptions
	for _, opt := range opts {
		opt(&sub)
	}
	if sub.priority != "" && !sub.priority.Valid() {
		return nil, &core.InvalidError{
			Field:  "priority",
			Reason: fmt.Sprintf("must be low, normal, or high, got %q", sub.priority),
		}
	}

	// Validate every item before touching the queue or store, so a
	// rejected batch leaves no trace and the client learns about all
	// bad items in one round trip. One read-lock covers the whole
	// loop — per-item locking would re-serialize submitters on the
	// engine mutex. The kind's effective deadline and resolved
	// priority are captured here so the operation record carries the
	// attributes it was accepted under, even if the kind is
	// re-registered before a worker picks it up.
	var berr *core.BatchError
	deadlines := make([]time.Duration, len(items))
	priorities := make([]core.Priority, len(items))
	e.mu.RLock()
	for i, it := range items {
		var err error
		switch {
		case it.Kind == "":
			err = &core.InvalidError{Field: "kind", Reason: "must not be empty"}
		case it.Priority != "" && !it.Priority.Valid():
			err = &core.InvalidError{
				Field:  "priority",
				Reason: fmt.Sprintf("must be low, normal, or high, got %q", it.Priority),
			}
		default:
			reg, ok := e.handlers[it.Kind]
			if !ok {
				err = fmt.Errorf("%w: %q", core.ErrUnknownKind, it.Kind)
				break
			}
			deadlines[i] = reg.deadline
			if deadlines[i] <= 0 {
				deadlines[i] = e.defaultDeadline
			}
			// Priority resolution: item, then submission option, then
			// kind default, then normal.
			switch {
			case it.Priority != "":
				priorities[i] = it.Priority
			case sub.priority != "":
				priorities[i] = sub.priority
			case reg.priority != "":
				priorities[i] = reg.priority
			default:
				priorities[i] = core.PriorityNormal
			}
		}
		if err != nil {
			if berr == nil {
				berr = &core.BatchError{Total: len(items)}
			}
			berr.Items = append(berr.Items, core.BatchItemError{Index: i, Err: err})
		}
	}
	e.mu.RUnlock()
	if berr != nil {
		return nil, berr
	}

	now := e.clock()
	ops := make([]*core.Operation, len(items))
	for i, it := range items {
		ops[i] = &core.Operation{
			ID:        core.NewID(),
			Kind:      it.Kind,
			Params:    it.Params,
			Status:    core.StatusQueued,
			Priority:  priorities[i],
			Client:    sub.client,
			Deadline:  deadlines[i],
			CreatedAt: now,
			UpdatedAt: now,
		}
	}

	// Reserve queue slots before storing, so a queue-full rejection
	// is never visible through Get/List (a submission racing
	// Shutdown can still be stored transiently before the second
	// closed-check deletes it), and store outside the lock so a
	// (possibly slow, pluggable) PutBatch doesn't serialize
	// submitters. Workers release slots when they dequeue, which
	// guarantees the reserved sends below cannot block; the lock
	// keeps closed-checks atomic with Shutdown closing the queue.
	// Reservation is all-or-nothing: on a full queue the tokens taken
	// so far are drained back, which cannot block because every other
	// token in the channel is backed by a scheduled operation a worker
	// has not yet dequeued. Admission control runs first and accounts
	// for the batch size, so shedAt is a hard depth bound: a batch
	// that would push depth past the shed threshold is refused whole
	// with ErrSaturated, the typed signal the API turns into 429 +
	// Retry-After. (For a single operation this is the familiar
	// "refuse once depth reached shedAt".)
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, core.ErrShuttingDown
	}
	if len(e.slots)+len(ops) > e.shedAt {
		e.mu.Unlock()
		return nil, core.ErrSaturated
	}
	reserved := 0
	for range ops {
		select {
		case e.slots <- struct{}{}:
			reserved++
		default:
			for ; reserved > 0; reserved-- {
				<-e.slots
			}
			e.mu.Unlock()
			return nil, core.ErrQueueFull
		}
	}
	e.mu.Unlock()

	e.store.PutBatch(ops)

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		for range ops {
			<-e.slots
		}
		for _, op := range ops {
			e.store.Delete(op.ID)
		}
		return nil, core.ErrShuttingDown
	}
	for _, op := range ops {
		e.sched.add(op.ID, sub.client, bandIndex(op.Priority), now)
		e.tokens <- struct{}{}
	}
	e.mu.Unlock()
	// Record the birth transitions in the feed so a notices watcher
	// sees new operations appear, not just settle. No hub notify: a
	// client cannot hold a waiter for an ID it has not been handed yet,
	// and the submit response already carries the queued snapshot.
	for _, op := range ops {
		e.notices.append(op.ID, op.Kind, core.StatusQueued, op.CreatedAt)
	}
	return ops, nil
}

// Get returns the operation's published snapshot, or core.ErrNotFound.
// The snapshot is an immutable shared pointer — it never changes, and
// callers must not mutate it.
func (e *Engine) Get(id string) (*core.Operation, error) {
	return e.store.Get(id)
}

// List returns the page of published snapshots selected by q, newest
// first (ties broken by ascending ID). Pages cost O(limit), not
// O(store size); see ListQuery for cursor and filter semantics.
func (e *Engine) List(q ListQuery) ([]*core.Operation, error) {
	return e.store.List(q)
}

// Cancel aborts the operation and returns its latest snapshot. A
// queued operation moves straight to cancelled and its handler never
// runs; a running operation has its context cancelled with
// core.ErrCancelled and settles as cancelled once the handler
// returns — the returned snapshot may still show it running, so
// callers poll for the terminal state. Cancel returns
// core.ErrNotFound for an unknown ID and core.ErrAlreadyTerminal for
// an operation that already settled (including one whose handler
// finished in the race window before the cancel landed).
func (e *Engine) Cancel(id string) (*core.Operation, error) {
	cancelled, running := false, false
	var kind string
	var at time.Time
	err := e.store.Update(id, func(op *core.Operation) {
		// Update may invoke fn more than once (optimistic stores retry
		// on conflict), so captured state is reset and assigned from
		// this attempt's snapshot alone — never toggled cumulatively.
		cancelled, running = false, false
		switch op.Status {
		case core.StatusQueued:
			// queued → cancelled is always a legal step, so this cannot
			// refuse; Transition stamps UpdatedAt and CancelledAt.
			op.Transition(core.StatusCancelled, e.clock())
			op.Error = core.ErrCancelled.Error()
			cancelled = true
			kind, at = op.Kind, op.UpdatedAt
		case core.StatusRunning:
			// Stamp the request time now — the handler may take a
			// while to unwind, and CancelledAt records when the abort
			// was asked for, not when it finished. The status stays
			// running until the handler returns.
			if op.CancelledAt.IsZero() {
				op.CancelledAt = e.clock()
			}
			running = true
		}
	})
	if err != nil {
		return nil, err
	}
	if cancelled {
		// The queued→cancelled step bypasses transition(), so it
		// publishes here. The running branch does not: stamping
		// CancelledAt is not a status change, and the terminal
		// transition recorded when the handler unwinds publishes then.
		e.publish(id, kind, core.StatusCancelled, at)
	}
	if running {
		// The registry entry is installed before the queued→running
		// transition and removed only after the terminal one, so a
		// store status of running guarantees it is present — unless
		// the handler finished in between, in which case the missing
		// entry (or cancelling the dead context) is a harmless no-op
		// and the poll shows the operation's actual outcome.
		e.cancels.cancel(id, core.ErrCancelled)
	}
	if !cancelled && !running {
		return nil, fmt.Errorf("%w: %s", core.ErrAlreadyTerminal, id)
	}
	return e.store.Get(id)
}

// Shutdown stops accepting submissions, drains queued operations, and
// waits for in-flight handlers to finish. If ctx expires first, the
// handlers' run context is cancelled — and with it every in-flight
// operation's context, the same path Cancel uses — and Shutdown
// returns ctx.Err() immediately; a handler that ignores its context
// may still be running, so the caller decides whether to wait longer
// or exit. Concurrent and repeated calls all observe the same drain.
func (e *Engine) Shutdown(ctx context.Context) error {
	e.mu.Lock()
	if !e.closed {
		e.closed = true
		close(e.tokens)
		close(e.janitorStop)
		go func() {
			e.wg.Wait()
			close(e.drained)
		}()
	}
	e.mu.Unlock()

	select {
	case <-e.drained:
		e.runStop()
		return nil
	case <-ctx.Done():
		e.runStop()
		// Both channels may be ready at once; prefer reporting a
		// completed drain over a coin-flip deadline error.
		select {
		case <-e.drained:
			return nil
		default:
			return ctx.Err()
		}
	}
}

// Recover re-arms the work a freshly opened durable store replayed:
// operations recorded as queued are re-enqueued for dispatch (oldest
// first, so recovered work keeps its original ordering), and
// operations recorded as running are settled as failed with
// core.ErrInterrupted — their handlers' in-memory progress died with
// the previous process, and silently re-executing half-done work is
// worse than an honest failure the client can retry. Call it once,
// after New and handler registration, before serving traffic. It
// returns how many operations were requeued and how many were marked
// interrupted; recovered queued work that no longer fits the queue is
// also marked interrupted rather than dropped. The context bounds the
// walk, not the recovered operations' execution.
func (e *Engine) Recover(ctx context.Context) (requeued, interrupted int, err error) {
	ops, err := e.store.List(ListQuery{})
	if err != nil {
		return 0, 0, fmt.Errorf("listing store for recovery: %w", err)
	}
	// List is newest-first; walk backwards so requeueing preserves the
	// original submission order within each band.
	const logEvery = 50_000
	for i := len(ops) - 1; i >= 0; i-- {
		if cerr := ctx.Err(); cerr != nil {
			return requeued, interrupted, cerr
		}
		if walked := len(ops) - i; walked%logEvery == 0 {
			// A big replayed store takes a while to re-arm; say so
			// instead of booting silently.
			log.Printf("engine: recovery scanned %d/%d operations (%d requeued, %d interrupted)",
				walked, len(ops), requeued, interrupted)
		}
		op := ops[i]
		switch op.Status {
		case core.StatusRunning:
			if e.transition(op.ID, core.StatusFailed, nil, core.ErrInterrupted) {
				interrupted++
			}
		case core.StatusQueued:
			e.mu.Lock()
			if e.closed {
				e.mu.Unlock()
				return requeued, interrupted, core.ErrShuttingDown
			}
			select {
			case e.slots <- struct{}{}:
				// Slot reserved, so the token send cannot block — the
				// same invariant SubmitBatch relies on.
				e.sched.add(op.ID, op.Client, bandIndex(op.Priority), e.clock())
				e.tokens <- struct{}{}
				e.mu.Unlock()
				requeued++
				// Re-announce the queued operation in the (empty after
				// restart) notices feed, mirroring SubmitBatch's birth
				// notice.
				e.notices.append(op.ID, op.Kind, core.StatusQueued, op.CreatedAt)
			default:
				e.mu.Unlock()
				// More recovered work than queue capacity; failing the
				// overflow honestly beats dropping it silently.
				if e.transition(op.ID, core.StatusFailed, nil, core.ErrInterrupted) {
					interrupted++
				}
			}
		}
	}
	return requeued, interrupted, nil
}

// janitor periodically evicts expired terminal operations until
// Shutdown stops it.
func (e *Engine) janitor() {
	t := time.NewTicker(e.gcInterval)
	defer t.Stop()
	for {
		select {
		case <-e.janitorStop:
			return
		case <-t.C:
			if n := e.GC(); n > 0 {
				log.Printf("engine: janitor evicted %d terminal operations older than %s", n, e.opTTL)
			}
		}
	}
}

// GC evicts terminal operations whose last update is older than the
// configured TTL and returns how many it removed. Queued and running
// operations are never evicted — a terminal status can never regress,
// so sweeping by status is race-free. GC is a no-op when no TTL is
// configured; the janitor calls it on every tick, and tests may call
// it directly. The sweep runs inside the store (no clones, no
// sorting), so a large retained history doesn't turn every tick into
// an allocation storm.
func (e *Engine) GC() int {
	if e.opTTL <= 0 {
		return 0
	}
	return e.store.SweepTerminalBefore(e.clock().Add(-e.opTTL))
}

func (e *Engine) worker() {
	defer e.wg.Done()
	// Each token in the channel is backed by exactly one scheduled
	// operation, so every successful receive corresponds to one
	// successful take; which operation is decided here, at dispatch
	// time, by the scheduler's priority/fairness policy rather than by
	// arrival order.
	for range e.tokens {
		<-e.slots
		now := e.clock()
		id, ok := e.sched.take(now)
		if !ok {
			// Unreachable by construction; release the slot rather
			// than leak it if the invariant is ever broken.
			e.slots <- struct{}{}
			continue
		}
		e.meter.record(now)
		e.run(id)
	}
}

func (e *Engine) run(id string) {
	op, err := e.store.Get(id)
	if err != nil {
		// With a pluggable store Get can fail transiently; dropping
		// the op here would strand it in "queued" with no trace.
		log.Printf("engine: loading queued operation %s: %v", id, err)
		e.fail(id, fmt.Errorf("loading operation: %w", err))
		return
	}
	if op.Status.Terminal() {
		// Cancelled while queued; the slot is already released, the
		// store already records the terminal state, nothing runs.
		return
	}
	reg, ok := e.registration(op.Kind)
	if !ok {
		e.fail(id, fmt.Errorf("%w: %q", core.ErrUnknownKind, op.Kind))
		return
	}

	// The operation's own context: child of the engine run context
	// (shutdown deadline), cancellable by Cancel with a cause, and
	// bounded by the deadline fixed at submission.
	ctx, cancel := context.WithCancelCause(e.runCtx)
	defer cancel(nil)
	if op.Deadline > 0 {
		var cancelDeadline context.CancelFunc
		ctx, cancelDeadline = context.WithTimeout(ctx, op.Deadline)
		defer cancelDeadline()
	}

	// Publish the cancel func before the running transition and
	// retire it only after the terminal one, so Cancel observing
	// status running always finds it.
	e.cancels.install(id, cancel)
	defer e.cancels.retire(id)

	if !e.transition(id, core.StatusRunning, nil, nil) {
		// Cancelled between dequeue and start; never run the handler.
		return
	}
	result, err := e.invoke(ctx, reg.h, op)
	if err != nil && errors.Is(context.Cause(ctx), core.ErrCancelled) {
		// The client asked for cancellation and the handler gave up;
		// record cancelled no matter what error it returned. A
		// handler that completed successfully despite the cancel
		// keeps its result instead.
		e.transition(id, core.StatusCancelled, nil, core.ErrCancelled)
		return
	}
	if err != nil {
		e.fail(id, err)
		return
	}
	var raw json.RawMessage
	if result != nil {
		if raw, err = json.Marshal(result); err != nil {
			e.fail(id, fmt.Errorf("result not serializable: %w", err))
			return
		}
	}
	e.transition(id, core.StatusDone, raw, nil)
}

// invoke runs the handler, converting a panic into an error so one
// bad handler fails its operation instead of killing the daemon.
func (e *Engine) invoke(ctx context.Context, h Handler, op *core.Operation) (result any, err error) {
	defer func() {
		if r := recover(); r != nil {
			log.Printf("engine: handler for %s (kind %s) panicked: %v", op.ID, op.Kind, r)
			result, err = nil, fmt.Errorf("handler panicked: %v", r)
		}
	}()
	return h(ctx, op)
}

func (e *Engine) fail(id string, cause error) {
	e.transition(id, core.StatusFailed, nil, cause)
}

// transition atomically moves the operation to next, refusing illegal
// lifecycle steps so terminal states are never overwritten. It reports
// whether the step was applied, so callers can tell a recorded
// transition from one pre-empted by a concurrent cancel. Every applied
// transition is published to the watch hub and the notices feed.
func (e *Engine) transition(id string, next core.Status, result json.RawMessage, cause error) bool {
	applied := false
	// Fields the publish needs are captured into locals inside the
	// callback: Update's contract forbids retaining the clone past the
	// callback's return.
	var kind string
	var at time.Time
	err := e.store.Update(id, func(op *core.Operation) {
		// Transition refuses illegal steps and stamps UpdatedAt; it
		// keeps the request-time CancelledAt stamp Cancel already
		// recorded, backfilling only if a cancel bypassed Cancel
		// (shouldn't happen). applied is assigned, not toggled: Update
		// may invoke fn more than once (optimistic stores retry on
		// conflict), and only the attempt that publishes may stick.
		applied = op.Transition(next, e.clock())
		if !applied {
			return
		}
		if result != nil {
			op.Result = result
		}
		if cause != nil {
			op.Error = cause.Error()
		}
		kind, at = op.Kind, op.UpdatedAt
	})
	if err != nil {
		// A failed write on a pluggable store would otherwise strand
		// the op in its previous state with no trace.
		log.Printf("engine: recording %s transition for %s: %v", next, id, err)
	}
	if applied {
		e.publish(id, kind, next, at)
	}
	return applied
}

// publish fans an applied state change out to the read path: it
// appends a notice to the feed and wakes the operation's long-poll
// waiters with the freshly published snapshot. It runs after the store
// write commits, so a woken waiter re-reading the store can only see
// this state or a newer one — never the one it was waiting out. The
// snapshot is re-read rather than retained from the Update callback
// (whose contract forbids retention); in the rare race where a newer
// transition or a TTL eviction lands in between, waiters get the newer
// snapshot or a nil that makes them fall back to a point Get —
// freshest-wins either way.
func (e *Engine) publish(id, kind string, status core.Status, at time.Time) {
	e.notices.append(id, kind, status, at)
	snap, err := e.store.Get(id)
	if err != nil {
		snap = nil
	}
	e.watch.notify(id, snap)
}
