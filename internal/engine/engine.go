// Package engine schedules and executes operations on a bounded worker
// pool, recording their lifecycle in a Store. It is the only writer of
// operation state; the API layer reads snapshots through the engine.
package engine

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"opdaemon/internal/core"
)

// Handler executes one kind of operation. It receives the engine's run
// context (cancelled on shutdown deadline) and a snapshot of the
// operation, and returns a JSON-serialisable result or an error.
type Handler func(ctx context.Context, op *core.Operation) (any, error)

// Config tunes an Engine. Zero values pick sensible defaults.
type Config struct {
	// Workers is the number of concurrent executors (default 4).
	Workers int
	// QueueDepth bounds the number of queued-but-unstarted
	// operations (default 1024). Submissions beyond it fail fast
	// with core.ErrQueueFull instead of blocking the API.
	QueueDepth int
	// Store holds operation state (default
	// NewShardedStore(DefaultShardCount)).
	Store Store
	// Clock returns the current time; overridable in tests.
	Clock func() time.Time
}

// Engine owns the operation lifecycle: it accepts submissions, runs
// them on a worker pool, and exposes read access to their state.
type Engine struct {
	store    Store
	clock    func() time.Time
	queue    chan string
	slots    chan struct{}
	drained  chan struct{}
	wg       sync.WaitGroup
	runCtx   context.Context
	runStop  context.CancelFunc
	mu       sync.RWMutex
	handlers map[string]Handler
	closed   bool
}

// New builds and starts an engine; workers begin draining the queue
// immediately.
func New(cfg Config) *Engine {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	if cfg.Store == nil {
		cfg.Store = NewShardedStore(DefaultShardCount)
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	ctx, stop := context.WithCancel(context.Background())
	e := &Engine{
		store:    cfg.Store,
		clock:    cfg.Clock,
		queue:    make(chan string, cfg.QueueDepth),
		slots:    make(chan struct{}, cfg.QueueDepth),
		drained:  make(chan struct{}),
		runCtx:   ctx,
		runStop:  stop,
		handlers: make(map[string]Handler),
	}
	for i := 0; i < cfg.Workers; i++ {
		e.wg.Add(1)
		go e.worker()
	}
	return e
}

// Register installs the handler for an operation kind. Registering
// after submissions have started is safe; re-registering replaces the
// previous handler.
func (e *Engine) Register(kind string, h Handler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.handlers[kind] = h
}

// Kinds returns the registered operation kinds, for diagnostics.
func (e *Engine) Kinds() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, 0, len(e.handlers))
	for k := range e.handlers {
		out = append(out, k)
	}
	return out
}

func (e *Engine) handler(kind string) (Handler, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	h, ok := e.handlers[kind]
	return h, ok
}

// BatchItem describes one operation in a batch submission.
type BatchItem struct {
	// Kind selects the registered handler.
	Kind string
	// Params is the handler's input, passed through verbatim.
	Params map[string]any
}

// Submit validates and enqueues an operation of the given kind,
// returning its queued snapshot. It fails fast with
// core.ErrUnknownKind, core.ErrShuttingDown, or core.ErrQueueFull.
func (e *Engine) Submit(kind string, params map[string]any) (*core.Operation, error) {
	ops, err := e.SubmitBatch([]BatchItem{{Kind: kind, Params: params}})
	if err != nil {
		// A single-item batch rejection carries exactly one item
		// error; surface it directly so callers keep seeing the
		// same ErrUnknownKind / InvalidError values as before
		// batching existed.
		var berr *core.BatchError
		if errors.As(err, &berr) && len(berr.Items) == 1 {
			return nil, berr.Items[0].Err
		}
		return nil, err
	}
	return ops[0], nil
}

// SubmitBatch validates and enqueues a batch of operations atomically:
// either every item is accepted and queued snapshots are returned in
// batch order, or nothing is enqueued. Validation failures are
// reported per item through *core.BatchError; capacity and shutdown
// failures (core.ErrQueueFull, core.ErrShuttingDown) apply to the
// batch as a whole. Store writes are amortised into a single PutBatch
// call, so large batches take each store lock O(shards) times instead
// of O(items).
func (e *Engine) SubmitBatch(items []BatchItem) ([]*core.Operation, error) {
	if len(items) == 0 {
		return nil, &core.InvalidError{Field: "batch", Reason: "must contain at least one item"}
	}
	if len(items) > cap(e.slots) {
		// Such a batch can never be accepted, so reject it as a
		// client error rather than ErrQueueFull, whose "retry later"
		// semantics would have the client retry forever.
		return nil, &core.InvalidError{
			Field:  "batch",
			Reason: fmt.Sprintf("size %d exceeds queue capacity %d", len(items), cap(e.slots)),
		}
	}

	// Validate every item before touching the queue or store, so a
	// rejected batch leaves no trace and the client learns about all
	// bad items in one round trip. One read-lock covers the whole
	// loop — per-item locking would re-serialize submitters on the
	// engine mutex.
	var berr *core.BatchError
	e.mu.RLock()
	for i, it := range items {
		var err error
		switch {
		case it.Kind == "":
			err = &core.InvalidError{Field: "kind", Reason: "must not be empty"}
		default:
			if _, ok := e.handlers[it.Kind]; !ok {
				err = fmt.Errorf("%w: %q", core.ErrUnknownKind, it.Kind)
			}
		}
		if err != nil {
			if berr == nil {
				berr = &core.BatchError{Total: len(items)}
			}
			berr.Items = append(berr.Items, core.BatchItemError{Index: i, Err: err})
		}
	}
	e.mu.RUnlock()
	if berr != nil {
		return nil, berr
	}

	now := e.clock()
	ops := make([]*core.Operation, len(items))
	for i, it := range items {
		ops[i] = &core.Operation{
			ID:        core.NewID(),
			Kind:      it.Kind,
			Params:    it.Params,
			Status:    core.StatusQueued,
			CreatedAt: now,
			UpdatedAt: now,
		}
	}

	// Reserve queue slots before storing, so a queue-full rejection
	// is never visible through Get/List (a submission racing
	// Shutdown can still be stored transiently before the second
	// closed-check deletes it), and store outside the lock so a
	// (possibly slow, pluggable) PutBatch doesn't serialize
	// submitters. Workers release slots when they dequeue, which
	// guarantees the reserved sends below cannot block; the lock
	// keeps closed-checks atomic with Shutdown closing the queue.
	// Reservation is all-or-nothing: on a full queue the tokens taken
	// so far are drained back, which cannot block because every other
	// token in the channel is backed by a queued ID a worker has not
	// yet dequeued.
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, core.ErrShuttingDown
	}
	reserved := 0
	for range ops {
		select {
		case e.slots <- struct{}{}:
			reserved++
		default:
			for ; reserved > 0; reserved-- {
				<-e.slots
			}
			e.mu.Unlock()
			return nil, core.ErrQueueFull
		}
	}
	e.mu.Unlock()

	e.store.PutBatch(ops)

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		for range ops {
			<-e.slots
		}
		for _, op := range ops {
			e.store.Delete(op.ID)
		}
		return nil, core.ErrShuttingDown
	}
	for _, op := range ops {
		e.queue <- op.ID
	}
	e.mu.Unlock()
	return ops, nil
}

// Get returns a snapshot of the operation, or core.ErrNotFound.
func (e *Engine) Get(id string) (*core.Operation, error) {
	return e.store.Get(id)
}

// List returns snapshots of all known operations, newest first,
// optionally filtered to one status.
func (e *Engine) List(status core.Status) []*core.Operation {
	ops := e.store.List()
	if status == "" {
		return ops
	}
	out := make([]*core.Operation, 0, len(ops))
	for _, op := range ops {
		if op.Status == status {
			out = append(out, op)
		}
	}
	return out
}

// Shutdown stops accepting submissions, drains queued operations, and
// waits for in-flight handlers to finish. If ctx expires first, the
// handlers' run context is cancelled and Shutdown returns ctx.Err()
// immediately — a handler that ignores its context may still be
// running, so the caller decides whether to wait longer or exit.
// Concurrent and repeated calls all observe the same drain.
func (e *Engine) Shutdown(ctx context.Context) error {
	e.mu.Lock()
	if !e.closed {
		e.closed = true
		close(e.queue)
		go func() {
			e.wg.Wait()
			close(e.drained)
		}()
	}
	e.mu.Unlock()

	select {
	case <-e.drained:
		e.runStop()
		return nil
	case <-ctx.Done():
		e.runStop()
		// Both channels may be ready at once; prefer reporting a
		// completed drain over a coin-flip deadline error.
		select {
		case <-e.drained:
			return nil
		default:
			return ctx.Err()
		}
	}
}

func (e *Engine) worker() {
	defer e.wg.Done()
	for id := range e.queue {
		<-e.slots
		e.run(id)
	}
}

func (e *Engine) run(id string) {
	op, err := e.store.Get(id)
	if err != nil {
		// With a pluggable store Get can fail transiently; dropping
		// the op here would strand it in "queued" with no trace.
		log.Printf("engine: loading queued operation %s: %v", id, err)
		e.fail(id, fmt.Errorf("loading operation: %w", err))
		return
	}
	h, ok := e.handler(op.Kind)
	if !ok {
		e.fail(id, fmt.Errorf("%w: %q", core.ErrUnknownKind, op.Kind))
		return
	}

	e.transition(id, core.StatusRunning, nil, nil)
	result, err := e.invoke(h, op)
	if err != nil {
		e.fail(id, err)
		return
	}
	var raw json.RawMessage
	if result != nil {
		if raw, err = json.Marshal(result); err != nil {
			e.fail(id, fmt.Errorf("result not serializable: %w", err))
			return
		}
	}
	e.transition(id, core.StatusDone, raw, nil)
}

// invoke runs the handler, converting a panic into an error so one
// bad handler fails its operation instead of killing the daemon.
func (e *Engine) invoke(h Handler, op *core.Operation) (result any, err error) {
	defer func() {
		if r := recover(); r != nil {
			log.Printf("engine: handler for %s (kind %s) panicked: %v", op.ID, op.Kind, r)
			result, err = nil, fmt.Errorf("handler panicked: %v", r)
		}
	}()
	return h(e.runCtx, op)
}

func (e *Engine) fail(id string, cause error) {
	e.transition(id, core.StatusFailed, nil, cause)
}

// transition atomically moves the operation to next, refusing illegal
// lifecycle steps so terminal states are never overwritten.
func (e *Engine) transition(id string, next core.Status, result json.RawMessage, cause error) {
	err := e.store.Update(id, func(op *core.Operation) {
		if !op.Status.CanTransition(next) {
			return
		}
		op.Status = next
		op.UpdatedAt = e.clock()
		if result != nil {
			op.Result = result
		}
		if cause != nil {
			op.Error = cause.Error()
		}
	})
	if err != nil {
		// A failed write on a pluggable store would otherwise strand
		// the op in its previous state with no trace.
		log.Printf("engine: recording %s transition for %s: %v", next, id, err)
	}
}
