package engine

import (
	"context"
	"hash/maphash"
	"sync"
)

// cancelRegistry maps in-flight operation IDs to their context cancel
// functions, partitioned into power-of-two shards by the same maphash
// the sharded store uses. Workers install/retire an entry around every
// execution and Cancel looks entries up under client-driven load;
// sharding keeps those paths from serializing on one registry-wide
// mutex the way they did when the registry was a single locked map.
type cancelRegistry struct {
	shards []cancelShard
	mask   uint32
}

// cancelShard is one partition of the registry.
type cancelShard struct {
	mu sync.Mutex
	m  map[string]context.CancelCauseFunc
}

// newCancelRegistry builds a registry with n shards, normalized by the
// same policy as the sharded store (GOMAXPROCS-scaled default for
// n <= 0, power-of-two round-up, clamp).
func newCancelRegistry(n int) *cancelRegistry {
	n = normalizeShardCount(n)
	r := &cancelRegistry{
		shards: make([]cancelShard, n),
		mask:   uint32(n - 1),
	}
	for i := range r.shards {
		r.shards[i].m = make(map[string]context.CancelCauseFunc)
	}
	return r
}

func (r *cancelRegistry) shard(id string) *cancelShard {
	return &r.shards[uint32(maphash.String(shardSeed, id))&r.mask]
}

// install publishes the operation's cancel function for cancel to
// find.
func (r *cancelRegistry) install(id string, fn context.CancelCauseFunc) {
	sh := r.shard(id)
	sh.mu.Lock()
	sh.m[id] = fn
	sh.mu.Unlock()
}

// retire removes the operation's cancel function once it has settled.
func (r *cancelRegistry) retire(id string) {
	sh := r.shard(id)
	sh.mu.Lock()
	delete(sh.m, id)
	sh.mu.Unlock()
}

// cancel invokes the operation's cancel function with the given cause,
// reporting whether an entry was present. A missing entry means the
// operation settled in the race window; the caller treats that as a
// harmless no-op.
func (r *cancelRegistry) cancel(id string, cause error) bool {
	sh := r.shard(id)
	sh.mu.Lock()
	fn, ok := sh.m[id]
	sh.mu.Unlock()
	if ok {
		// Invoke outside the shard lock: context cancellation fans out
		// to registered children and need not serialize other
		// operations' installs and retires on this shard.
		fn(cause)
	}
	return ok
}
