package engine

// Codec-generation tests: the v1→v2 migration contract (mixed logs
// replay), the delta-chain bound, and fuzzing of the binary bodies.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"opdaemon/internal/core"
)

// TestWALMixedFormatReplay proves the migration story: a log whose
// oldest segment was written by the v1 JSON codec replays together
// with v2 segments appended by the current store, and a second reopen
// (all-v2 after compaction-free append) converges on the same state.
func TestWALMixedFormatReplay(t *testing.T) {
	dir := t.TempDir()
	t0 := time.Unix(1000, 0)

	// Hand-write a v1 segment the way the previous generation did:
	// JSON puts, a JSON full-record update, and a tombstone.
	var seg []byte
	for i := 0; i < 5; i++ {
		rec, err := encodeOpRecord(walRecPut, mkOp(fmt.Sprintf("v1-%02d", i), t0.Add(time.Duration(i)*time.Second)))
		if err != nil {
			t.Fatal(err)
		}
		seg = append(seg, rec...)
	}
	upd := mkOp("v1-02", t0.Add(2*time.Second))
	upd.Status = core.StatusDone
	upd.UpdatedAt = t0.Add(time.Minute)
	rec, err := encodeOpRecord(walRecUpdate, upd)
	if err != nil {
		t.Fatal(err)
	}
	seg = append(seg, rec...)
	seg = append(seg, encodeDeleteRecord("v1-04")...)
	if err := os.WriteFile(filepath.Join(dir, walSegName(1)), seg, 0o644); err != nil {
		t.Fatal(err)
	}

	s := openWAL(t, dir, WALConfig{Sync: WALSyncAlways})
	if n := s.Len(); n != 4 {
		t.Fatalf("v1 segment replayed to %d ops, want 4", n)
	}
	got, err := s.Get("v1-02")
	if err != nil || got.Status != core.StatusDone {
		t.Fatalf("Get(v1-02) = (%v, %v), want done op", got, err)
	}
	if _, err := s.Get("v1-04"); err == nil {
		t.Fatal("v1 tombstone ignored: v1-04 survived replay")
	}

	// Append v2 records on top: new puts, a delta-eligible update of a
	// v1-era op, and a delete of another.
	for i := 0; i < 3; i++ {
		s.Put(mkOp(fmt.Sprintf("v2-%02d", i), t0.Add(time.Hour+time.Duration(i)*time.Second)))
	}
	if err := s.Update("v1-01", func(op *core.Operation) {
		op.Status = core.StatusRunning
		op.UpdatedAt = t0.Add(2 * time.Minute)
	}); err != nil {
		t.Fatal(err)
	}
	s.Delete("v1-03")
	want := listAll(t, s)
	s.closeAbrupt()

	r := openWAL(t, dir, WALConfig{Sync: WALSyncAlways})
	defer r.Close()
	sameOps(t, listAll(t, r), want)
	if got, err := r.Get("v1-01"); err != nil || got.Status != core.StatusRunning {
		t.Fatalf("v2 delta on v1 base: Get(v1-01) = (%v, %v), want running", got, err)
	}
}

// countWALRecordTypes replays every segment in dir and tallies record
// types across them.
func countWALRecordTypes(t *testing.T, dir string) map[byte]int {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[byte]int)
	for _, e := range entries {
		var i int
		if !parseWALName(e.Name(), "wal-%08d.log", &i) {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := walReplay(data, func(typ byte, _ []byte) error {
			counts[typ]++
			return nil
		}); err != nil {
			t.Fatalf("replaying %s: %v", e.Name(), err)
		}
	}
	return counts
}

// TestWALDeltaChainBound checks both halves of the delta policy:
// mutable-field updates log compact deltas, and every
// walDeltaChainMax-th consecutive delta is replaced by a full record
// so recovery never folds an unbounded chain.
func TestWALDeltaChainBound(t *testing.T) {
	dir := t.TempDir()
	t0 := time.Unix(1000, 0)
	s := openWAL(t, dir, WALConfig{Sync: WALSyncAlways})

	s.Put(mkOp("chained", t0))
	const updates = 2*walDeltaChainMax + 3
	for i := 0; i < updates; i++ {
		if err := s.Update("chained", func(op *core.Operation) {
			op.Error = fmt.Sprintf("attempt %d", i)
			op.UpdatedAt = t0.Add(time.Duration(i+1) * time.Second)
		}); err != nil {
			t.Fatal(err)
		}
	}
	want := listAll(t, s)
	s.closeAbrupt()

	counts := countWALRecordTypes(t, dir)
	// One full record for the Put plus one per chain bound; everything
	// else must have gone out as deltas.
	wantFull := 1 + updates/walDeltaChainMax
	if counts[walRecOpV2] != wantFull {
		t.Errorf("full v2 records = %d, want %d (chain bound %d over %d updates)",
			counts[walRecOpV2], wantFull, walDeltaChainMax, updates)
	}
	if counts[walRecDeltaV2] != updates-updates/walDeltaChainMax {
		t.Errorf("delta records = %d, want %d", counts[walRecDeltaV2], updates-updates/walDeltaChainMax)
	}
	if counts[walRecPut] != 0 || counts[walRecUpdate] != 0 {
		t.Errorf("fresh log contains legacy v1 records: %v", counts)
	}

	r := openWAL(t, dir, WALConfig{Sync: WALSyncAlways})
	defer r.Close()
	sameOps(t, listAll(t, r), want)
	got, err := r.Get("chained")
	if err != nil || got.Error != fmt.Sprintf("attempt %d", updates-1) {
		t.Fatalf("Get(chained) = (%+v, %v), want final delta applied", got, err)
	}
}

// TestWALImmutableChangeLogsFullRecord: an update that touches an
// immutable field (here Deadline) is not delta-eligible and must log a
// full record.
func TestWALImmutableChangeLogsFullRecord(t *testing.T) {
	dir := t.TempDir()
	t0 := time.Unix(1000, 0)
	s := openWAL(t, dir, WALConfig{Sync: WALSyncAlways})

	s.Put(mkOp("imm", t0))
	if err := s.Update("imm", func(op *core.Operation) {
		op.Deadline = time.Hour
		op.UpdatedAt = t0.Add(time.Second)
	}); err != nil {
		t.Fatal(err)
	}
	s.closeAbrupt()

	counts := countWALRecordTypes(t, dir)
	if counts[walRecOpV2] != 2 || counts[walRecDeltaV2] != 0 {
		t.Errorf("record counts = %v, want 2 full v2 and no deltas", counts)
	}

	r := openWAL(t, dir, WALConfig{Sync: WALSyncAlways})
	defer r.Close()
	got, err := r.Get("imm")
	if err != nil || got.Deadline != time.Hour {
		t.Fatalf("Get(imm) = (%+v, %v), want deadline recovered", got, err)
	}
}

// FuzzWALCodecBinary fuzzes the binary bodies directly: decoding
// arbitrary bytes never panics, anything that decodes cleanly
// re-encodes to a decodable body, and re-encoding reaches a fixed
// point after one pass (a crafted record may set a presence flag on a
// zero value, so the first re-encode may normalise, but no more).
func FuzzWALCodecBinary(f *testing.F) {
	t0 := time.Unix(1000, 0)
	op := mkOp("fuzz-seed", t0)
	op.Params = map[string]any{"k": "v"}
	op.Priority = core.PriorityHigh
	op.Error = "boom"
	op.Result = json.RawMessage(`{"ok":true}`)
	full, err := op.AppendBinary(nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(full, true)
	f.Add(op.AppendBinaryDelta(nil), false)
	f.Add([]byte{}, true)
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF}, false)

	f.Fuzz(func(t *testing.T, data []byte, asOp bool) {
		if asOp {
			dec, err := core.DecodeBinaryOperation(data)
			if err != nil {
				return
			}
			enc1, err := dec.AppendBinary(nil)
			if err != nil {
				t.Fatalf("re-encode of decoded op failed: %v", err)
			}
			dec2, err := core.DecodeBinaryOperation(enc1)
			if err != nil {
				t.Fatalf("re-encoded op body does not decode: %v", err)
			}
			enc2, err := dec2.AppendBinary(nil)
			if err != nil {
				t.Fatalf("second re-encode failed: %v", err)
			}
			if string(enc2) != string(enc1) {
				t.Fatalf("op codec has no fixed point:\n enc1 %x\n enc2 %x", enc1, enc2)
			}
			if dec2.ID != dec.ID || dec2.Status != dec.Status || !dec2.UpdatedAt.Equal(dec.UpdatedAt) {
				t.Fatalf("re-encode lost fields: %+v vs %+v", dec2, dec)
			}
		} else {
			dec, err := core.DecodeBinaryDelta(data)
			if err != nil {
				return
			}
			enc1 := dec.AppendBinary(nil)
			dec2, err := core.DecodeBinaryDelta(enc1)
			if err != nil {
				t.Fatalf("re-encoded delta body does not decode: %v", err)
			}
			if string(dec2.AppendBinary(nil)) != string(enc1) {
				t.Fatalf("delta codec has no fixed point for %x", data)
			}
		}
	})
}
