package engine

// Benchmarks comparing the single-mutex memStore against the sharded
// store. The serial variants establish that sharding costs nothing
// when there is no contention; the parallel variants are the ones the
// sharded store exists to win. Run via `make bench` or:
//
//	go test -bench=. -benchtime=100x -run '^$' ./internal/engine/
//
// CI runs the 100x variant on every push so a perf regression is
// visible in the logs next to the test results.

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"opdaemon/internal/core"
)

// benchImpls pairs each Store implementation with a label; sharded
// runs at the default count the daemon ships with.
func benchImpls() []struct {
	name string
	mk   func() Store
} {
	return []struct {
		name string
		mk   func() Store
	}{
		{"mem", NewMemStore},
		{fmt.Sprintf("sharded-%d", DefaultShardCount), func() Store { return NewShardedStore(DefaultShardCount) }},
	}
}

// prepopulate fills the store with n operations and returns them so
// benchmark loops can reuse the IDs without allocating.
func prepopulate(s Store, n int) []*core.Operation {
	t0 := time.Unix(1000, 0)
	ops := make([]*core.Operation, n)
	for i := range ops {
		ops[i] = mkOp(core.NewID(), t0.Add(time.Duration(i)*time.Millisecond))
	}
	s.PutBatch(ops)
	return ops
}

// BenchmarkStoreGetPut measures the uncontended single-goroutine
// Put+Get round trip — the floor sharding must not regress.
func BenchmarkStoreGetPut(b *testing.B) {
	for _, impl := range benchImpls() {
		b.Run(impl.name, func(b *testing.B) {
			s := impl.mk()
			ops := prepopulate(s, 1024)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				op := ops[i%len(ops)]
				s.Put(op)
				if _, err := s.Get(op.ID); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStoreGetPutParallel hammers Put+Get from GOMAXPROCS
// goroutines over a shared key set — the contention profile of many
// API clients submitting and polling at once. This is the benchmark
// the sharded store must win against memStore.
func BenchmarkStoreGetPutParallel(b *testing.B) {
	for _, impl := range benchImpls() {
		b.Run(impl.name, func(b *testing.B) {
			s := impl.mk()
			ops := prepopulate(s, 4096)
			var next atomic.Uint64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				// Stride goroutines across the key space so they
				// touch different shards, as real distinct operations
				// do.
				i := int(next.Add(1)) * 31
				for pb.Next() {
					op := ops[i%len(ops)]
					i++
					s.Put(op)
					if _, err := s.Get(op.ID); err != nil {
						// b.Fatal must not run on a RunParallel
						// worker goroutine.
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkStoreUpdateParallel measures contended read-modify-write
// transitions, the engine's hot path when workers complete operations
// while clients poll.
func BenchmarkStoreUpdateParallel(b *testing.B) {
	for _, impl := range benchImpls() {
		b.Run(impl.name, func(b *testing.B) {
			s := impl.mk()
			ops := prepopulate(s, 4096)
			var next atomic.Uint64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := int(next.Add(1)) * 31
				for pb.Next() {
					op := ops[i%len(ops)]
					i++
					err := s.Update(op.ID, func(op *core.Operation) {
						op.UpdatedAt = op.UpdatedAt.Add(time.Nanosecond)
					})
					if err != nil {
						// b.Fatal must not run on a RunParallel
						// worker goroutine.
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkStorePutBatch measures the amortised batch write path the
// batch submission API rides on, at the batch size the acceptance
// criteria use.
func BenchmarkStorePutBatch(b *testing.B) {
	const batchSize = 100
	for _, impl := range benchImpls() {
		b.Run(impl.name, func(b *testing.B) {
			s := impl.mk()
			ops := prepopulate(s, batchSize)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.PutBatch(ops)
			}
		})
	}
}

// BenchmarkStoreList measures the merged snapshot over a populated
// store; the sharded implementation pays a per-shard lock plus one
// global sort.
func BenchmarkStoreList(b *testing.B) {
	for _, impl := range benchImpls() {
		b.Run(impl.name, func(b *testing.B) {
			s := impl.mk()
			prepopulate(s, 4096)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := len(s.List()); got != 4096 {
					b.Fatalf("List returned %d ops, want 4096", got)
				}
			}
		})
	}
}
