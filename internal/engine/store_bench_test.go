package engine

// Benchmarks comparing the single-lock memStore against the sharded
// store. The serial variants establish that sharding costs nothing
// when there is no contention; the parallel variants are the ones the
// sharded store exists to win. Run via `make bench` or:
//
//	go test -bench=. -benchtime=100x -run '^$' ./internal/engine/
//
// CI runs the 100x variant on every push so a perf regression is
// visible in the logs next to the test results.
//
// The read-path criteria to watch: BenchmarkStoreGet must report
// 0 allocs/op (copy-on-write snapshots hand out shared pointers), and
// BenchmarkStoreList/limit=50 must report the same allocs/op at every
// store size (the ordered index makes a page O(limit), not O(n)).

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"opdaemon/internal/core"
)

// benchImpls pairs each Store implementation with a label; sharded
// runs at the count the daemon ships with on this hardware.
func benchImpls() []struct {
	name string
	mk   func() Store
} {
	return []struct {
		name string
		mk   func() Store
	}{
		{"mem", NewMemStore},
		{fmt.Sprintf("sharded-%d", DefaultShardCount()), func() Store { return NewShardedStore(0) }},
	}
}

// prepopulate fills the store with n operations and returns them so
// benchmark loops can reuse the IDs without allocating.
func prepopulate(s Store, n int) []*core.Operation {
	t0 := time.Unix(1000, 0)
	ops := make([]*core.Operation, n)
	for i := range ops {
		ops[i] = mkOp(core.NewID(), t0.Add(time.Duration(i)*time.Millisecond))
	}
	s.PutBatch(ops)
	return ops
}

// BenchmarkStoreGet measures the poll hot path. The acceptance bar is
// 0 allocs/op: Get returns the published snapshot pointer, never a
// clone.
func BenchmarkStoreGet(b *testing.B) {
	for _, impl := range benchImpls() {
		b.Run(impl.name, func(b *testing.B) {
			s := impl.mk()
			ops := prepopulate(s, 4096)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Get(ops[i%len(ops)].ID); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStoreGetPut measures the uncontended single-goroutine
// Put+Get round trip — the floor sharding must not regress.
func BenchmarkStoreGetPut(b *testing.B) {
	for _, impl := range benchImpls() {
		b.Run(impl.name, func(b *testing.B) {
			s := impl.mk()
			ops := prepopulate(s, 1024)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				op := ops[i%len(ops)]
				s.Put(op)
				if _, err := s.Get(op.ID); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStoreGetPutParallel hammers Put+Get from GOMAXPROCS
// goroutines over a shared key set — the contention profile of many
// API clients submitting and polling at once. This is the benchmark
// the sharded store must win against memStore.
func BenchmarkStoreGetPutParallel(b *testing.B) {
	for _, impl := range benchImpls() {
		b.Run(impl.name, func(b *testing.B) {
			s := impl.mk()
			ops := prepopulate(s, 4096)
			var next atomic.Uint64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				// Stride goroutines across the key space so they
				// touch different shards, as real distinct operations
				// do.
				i := int(next.Add(1)) * 31
				for pb.Next() {
					op := ops[i%len(ops)]
					i++
					s.Put(op)
					if _, err := s.Get(op.ID); err != nil {
						// b.Fatal must not run on a RunParallel
						// worker goroutine.
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkStoreUpdateParallel measures contended read-modify-write
// transitions, the engine's hot path when workers complete operations
// while clients poll. Copy-on-write moved the snapshot allocation
// here, off the read path — expect exactly one alloc/op.
func BenchmarkStoreUpdateParallel(b *testing.B) {
	for _, impl := range benchImpls() {
		b.Run(impl.name, func(b *testing.B) {
			s := impl.mk()
			ops := prepopulate(s, 4096)
			var next atomic.Uint64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := int(next.Add(1)) * 31
				for pb.Next() {
					op := ops[i%len(ops)]
					i++
					err := s.Update(op.ID, func(op *core.Operation) {
						op.UpdatedAt = op.UpdatedAt.Add(time.Nanosecond)
					})
					if err != nil {
						// b.Fatal must not run on a RunParallel
						// worker goroutine.
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkStorePutBatch measures the amortised batch write path the
// batch submission API rides on, at the batch size the acceptance
// criteria use.
func BenchmarkStorePutBatch(b *testing.B) {
	const batchSize = 100
	for _, impl := range benchImpls() {
		b.Run(impl.name, func(b *testing.B) {
			s := impl.mk()
			ops := prepopulate(s, batchSize)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.PutBatch(ops)
			}
		})
	}
}

// walBenchModes are the sync policies the WAL benchmarks compare:
// always is the per-write fsync floor, group is the group-commit
// design point, none isolates the framing/staging overhead from disk.
var walBenchModes = []WALSyncMode{WALSyncAlways, WALSyncGroup, WALSyncNone}

// openBenchWAL builds a WAL store in a fresh per-benchmark directory.
func openBenchWAL(b *testing.B, mode WALSyncMode) *WALStore {
	b.Helper()
	s, err := OpenWALStore(WALConfig{Dir: b.TempDir(), Sync: mode})
	if err != nil {
		b.Fatalf("OpenWALStore: %v", err)
	}
	b.Cleanup(func() {
		if err := s.Close(); err != nil {
			b.Errorf("WALStore.Close: %v", err)
		}
	})
	return s
}

// BenchmarkStoreWALPut measures the single-writer durable admission
// path per sync mode. always pays a full fsync round trip per op
// (group commit cannot amortise a lone writer); compare against
// BenchmarkStoreGetPut's in-memory floor for the durability tax.
func BenchmarkStoreWALPut(b *testing.B) {
	for _, mode := range walBenchModes {
		b.Run(string(mode), func(b *testing.B) {
			s := openBenchWAL(b, mode)
			ops := prepopulate(s, 1024)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Put(ops[i%len(ops)])
			}
		})
	}
}

// BenchmarkStoreWALPutParallel is the group-commit demonstration:
// concurrent writers board the same batch and share one fsync, so
// group's per-op cost collapses toward always's divided by the batch
// size while always still serialises one fsync per generation.
func BenchmarkStoreWALPutParallel(b *testing.B) {
	for _, mode := range walBenchModes {
		b.Run(string(mode), func(b *testing.B) {
			s := openBenchWAL(b, mode)
			ops := prepopulate(s, 4096)
			var next atomic.Uint64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := int(next.Add(1)) * 31
				for pb.Next() {
					s.Put(ops[i%len(ops)])
					i++
				}
			})
		})
	}
}

// BenchmarkStoreWALUpdateParallel measures contended transitions
// against the log. Under group mode updates do not wait for the fsync
// (recovery semantics absorb the loss window), so this should track
// the in-memory BenchmarkStoreUpdateParallel plus encoding cost.
func BenchmarkStoreWALUpdateParallel(b *testing.B) {
	for _, mode := range walBenchModes {
		b.Run(string(mode), func(b *testing.B) {
			s := openBenchWAL(b, mode)
			ops := prepopulate(s, 4096)
			var next atomic.Uint64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := int(next.Add(1)) * 31
				for pb.Next() {
					op := ops[i%len(ops)]
					i++
					err := s.Update(op.ID, func(op *core.Operation) {
						op.UpdatedAt = op.UpdatedAt.Add(time.Nanosecond)
					})
					if err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkWALRecovery measures boot-time replay: open a log holding
// 100k operations, rebuild the index, close. This is the cost a
// restart pays and the number BENCH_9.json tracks; compaction exists
// to bound it.
func BenchmarkWALRecovery(b *testing.B) {
	const n = 100_000
	dir := b.TempDir()
	s, err := OpenWALStore(WALConfig{Dir: dir, Sync: WALSyncNone})
	if err != nil {
		b.Fatalf("OpenWALStore: %v", err)
	}
	prepopulate(s, n)
	if err := s.Close(); err != nil {
		b.Fatalf("Close: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := OpenWALStore(WALConfig{Dir: dir, Sync: WALSyncNone})
		if err != nil {
			b.Fatalf("OpenWALStore (recovery): %v", err)
		}
		if r.Len() != n {
			b.Fatalf("recovered %d ops, want %d", r.Len(), n)
		}
		if err := r.Close(); err != nil {
			b.Fatalf("Close: %v", err)
		}
	}
}

// BenchmarkStoreList measures a snapd-style poll page — limit=50,
// newest first — at growing store sizes. The ordered per-shard index
// makes both time and allocations independent of store size; compare
// the 1k and 10k rows to verify.
func BenchmarkStoreList(b *testing.B) {
	const limit = 50
	for _, impl := range benchImpls() {
		for _, size := range []int{1_000, 10_000} {
			b.Run(fmt.Sprintf("%s/limit=%d/size=%d", impl.name, limit, size), func(b *testing.B) {
				s := impl.mk()
				prepopulate(s, size)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					page, err := s.List(ListQuery{Limit: limit})
					if err != nil {
						b.Fatal(err)
					}
					if len(page) != limit {
						b.Fatalf("List returned %d ops, want %d", len(page), limit)
					}
				}
			})
		}
	}
}

// BenchmarkStoreListAll measures the unbounded listing (no limit) —
// the worst case the cursor API exists to let clients avoid.
func BenchmarkStoreListAll(b *testing.B) {
	const size = 4096
	for _, impl := range benchImpls() {
		b.Run(impl.name, func(b *testing.B) {
			s := impl.mk()
			prepopulate(s, size)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				page, err := s.List(ListQuery{})
				if err != nil {
					b.Fatal(err)
				}
				if len(page) != size {
					b.Fatalf("List returned %d ops, want %d", len(page), size)
				}
			}
		})
	}
}
