package engine

// The broadcast hub behind the push read path: every applied state
// transition wakes exactly the waiters registered for that operation
// ID — no scan over other operations, no polling timers. The hub is
// partitioned into power-of-two shards by the same maphash scheme as
// the store and the cancel registry, so long-poll subscribe/wake
// traffic on different operations almost never contends.
//
// Race discipline (pinned by watch_conformance_test.go):
//
//   - Waiters subscribe BEFORE checking current state, never after.
//     AwaitChange registers its waiter, then reads the snapshot; a
//     transition that publishes before the read is seen by the read,
//     and one that publishes after it must run notify after the
//     subscribe, so it finds the waiter. Check-then-subscribe would
//     leave a window where a transition slips between the check and
//     the registration and the waiter sleeps forever.
//   - notify detaches the waiter list under the shard lock and sends
//     only after unlock (the lockscope analyzer forbids channel
//     operations inside watchShard critical sections). The sends can
//     never block: a watcher's channel has capacity one, and once
//     detached from the map no other notify or unsubscribe can reach
//     it, so each watcher sees at most one send in its lifetime.
//   - unsubscribe is idempotent and safe after a wake already consumed
//     the watcher: it removes the watcher only if still registered.

import (
	"context"
	"hash/maphash"
	"sync"

	"opdaemon/internal/core"
)

// watcher is one registered long-poll waiter: a one-shot channel that
// receives the snapshot published by the transition that woke it (nil
// if the operation vanished before the snapshot could be loaded).
type watcher struct {
	ch chan *core.Operation
}

// watchShard is one partition of the hub: a short-critical-section
// mutex over the waiter lists plus a count so Stats never walks the
// map. Its name places its critical sections under the lockscope
// analyzer's no-channel-ops-under-lock contract.
type watchShard struct {
	mu sync.Mutex
	m  map[string][]*watcher
	n  int
}

// watchHub maps operation IDs to their waiter lists across
// power-of-two shards.
type watchHub struct {
	shards []watchShard
	mask   uint32
}

// newWatchHub builds a hub with n shards, normalized by the shared
// shard-geometry policy (GOMAXPROCS-scaled default for n <= 0,
// power-of-two round-up, clamp).
func newWatchHub(n int) *watchHub {
	n = normalizeShardCount(n)
	h := &watchHub{
		shards: make([]watchShard, n),
		mask:   uint32(n - 1),
	}
	for i := range h.shards {
		h.shards[i].m = make(map[string][]*watcher)
	}
	return h
}

func (h *watchHub) shard(id string) *watchShard {
	return &h.shards[uint32(maphash.String(shardSeed, id))&h.mask]
}

// subscribe registers a one-shot waiter for the operation's next
// transition. The caller must either receive from the watcher's
// channel or call unsubscribe (calling both is safe).
func (h *watchHub) subscribe(id string) *watcher {
	w := &watcher{ch: make(chan *core.Operation, 1)}
	sh := h.shard(id)
	sh.mu.Lock()
	sh.m[id] = append(sh.m[id], w)
	sh.n++
	sh.mu.Unlock()
	return w
}

// unsubscribe removes the waiter if it is still registered. A no-op
// when a notify already detached it (the pending buffered send is
// simply never received and gets collected with the watcher).
func (h *watchHub) unsubscribe(id string, w *watcher) {
	sh := h.shard(id)
	sh.mu.Lock()
	ws := sh.m[id]
	for i, x := range ws {
		if x == w {
			ws[i] = ws[len(ws)-1]
			ws[len(ws)-1] = nil // unpin the detached watcher
			ws = ws[:len(ws)-1]
			if len(ws) == 0 {
				delete(sh.m, id)
			} else {
				sh.m[id] = ws
			}
			sh.n--
			break
		}
	}
	sh.mu.Unlock()
}

// notify wakes every waiter registered for the operation with the
// freshly published snapshot (nil if the operation disappeared before
// it could be loaded; receivers fall back to a point Get). The waiter
// list is detached under the lock and woken after it, so a slow
// receiver can never stall the shard.
func (h *watchHub) notify(id string, snap *core.Operation) {
	sh := h.shard(id)
	sh.mu.Lock()
	ws := sh.m[id]
	if len(ws) == 0 {
		sh.mu.Unlock()
		return
	}
	delete(sh.m, id)
	sh.n -= len(ws)
	sh.mu.Unlock()
	for _, w := range ws {
		// Cannot block: capacity-one channel, and detaching under the
		// lock made this the only send the watcher will ever see.
		w.ch <- snap
	}
}

// waiters returns the number of registered waiters across all shards,
// for Stats and the conformance suite's leak checks.
func (h *watchHub) waiters() int {
	n := 0
	for i := range h.shards {
		sh := &h.shards[i]
		sh.mu.Lock()
		n += sh.n
		sh.mu.Unlock()
	}
	return n
}

// AwaitChange blocks until the operation's published status differs
// from seen, returning the fresh snapshot. It returns immediately when
// the current status already differs or is terminal (a terminal status
// can never change, so waiting on one would sleep forever), and it
// returns core.ErrNotFound for an unknown ID — including one evicted
// while waiting. Cancelling ctx returns its error; the waiter is always
// deregistered before AwaitChange returns, so abandoned long-polls
// leave no trace in the hub.
func (e *Engine) AwaitChange(ctx context.Context, id string, seen core.Status) (*core.Operation, error) {
	// Subscribe-then-check: registering first makes the later snapshot
	// read a linearization point — any transition it misses must
	// publish afterwards and therefore finds this waiter.
	w := e.watch.subscribe(id)
	defer e.watch.unsubscribe(id, w)
	op, err := e.store.Get(id)
	if err != nil {
		return nil, err
	}
	if op.Status != seen || op.Status.Terminal() {
		return op, nil
	}
	select {
	case snap := <-w.ch:
		if snap == nil {
			// The operation vanished between the transition and the
			// snapshot load (TTL eviction in the race window); report
			// what a fresh Get would.
			return e.store.Get(id)
		}
		return snap, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}
