//go:build race

package engine

// raceEnabled reports that this test binary was built with the race
// detector, whose instrumentation allocates and would invalidate the
// AllocsPerRun regression tests.
const raceEnabled = true
