package engine

// Crash-recovery, compaction, and observability tests for the WAL
// store, plus the engine-level Recover contract. The crash tests use
// closeAbrupt — the committer exits without the final flush, like a
// killed process — and byte-level corruption injection to simulate
// torn writes.

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"opdaemon/internal/core"
)

// openWAL opens a store over dir with test-friendly defaults, failing
// the test on error. The caller owns Close (or closeAbrupt).
func openWAL(t *testing.T, dir string, cfg WALConfig) *WALStore {
	t.Helper()
	cfg.Dir = dir
	s, err := OpenWALStore(cfg)
	if err != nil {
		t.Fatalf("OpenWALStore(%s): %v", dir, err)
	}
	return s
}

// sameOps asserts two listings are equal on every field replay must
// preserve.
func sameOps(t *testing.T, got, want []*core.Operation) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("listing has %d ops, want %d\ngot:  %v\nwant: %v",
			len(got), len(want), listIDs(got), listIDs(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.ID != w.ID || g.Kind != w.Kind || g.Status != w.Status {
			t.Errorf("op[%d] = {%s %s %s}, want {%s %s %s}",
				i, g.ID, g.Kind, g.Status, w.ID, w.Kind, w.Status)
		}
		if !g.CreatedAt.Equal(w.CreatedAt) || !g.UpdatedAt.Equal(w.UpdatedAt) {
			t.Errorf("op[%d] %s times = (%v, %v), want (%v, %v)",
				i, g.ID, g.CreatedAt, g.UpdatedAt, w.CreatedAt, w.UpdatedAt)
		}
	}
}

// TestWALStoreRecoversAfterCrash is the core durability claim: under
// WALSyncAlways every returned mutation survives an abrupt exit, so
// the recovered index is byte-for-byte the pre-crash index.
func TestWALStoreRecoversAfterCrash(t *testing.T) {
	dir := t.TempDir()
	t0 := time.Unix(1000, 0)
	s := openWAL(t, dir, WALConfig{Sync: WALSyncAlways})

	for i := 0; i < 10; i++ {
		s.Put(mkOp(fmt.Sprintf("op-%02d", i), t0.Add(time.Duration(i)*time.Second)))
	}
	for i := 0; i < 10; i += 2 {
		id := fmt.Sprintf("op-%02d", i)
		if err := s.Update(id, func(op *core.Operation) {
			op.Status = core.StatusDone
			op.UpdatedAt = t0.Add(time.Minute)
		}); err != nil {
			t.Fatalf("Update(%s): %v", id, err)
		}
	}
	s.Delete("op-03")
	s.Delete("op-07")
	want := listAll(t, s)

	s.closeAbrupt()

	r := openWAL(t, dir, WALConfig{Sync: WALSyncAlways})
	defer r.Close()
	sameOps(t, listAll(t, r), want)
}

// TestWALStoreRecoversTornTail simulates a crash mid-append: garbage
// after the last complete frame. Recovery must truncate the segment
// back to its valid prefix and lose nothing that was committed.
func TestWALStoreRecoversTornTail(t *testing.T) {
	dir := t.TempDir()
	t0 := time.Unix(1000, 0)
	s := openWAL(t, dir, WALConfig{Sync: WALSyncAlways})
	for i := 0; i < 5; i++ {
		s.Put(mkOp(fmt.Sprintf("op-%d", i), t0.Add(time.Duration(i)*time.Second)))
	}
	want := listAll(t, s)
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// The first open wrote segment 0. Tear its tail: a length prefix
	// promising more bytes than exist, the shape an interrupted
	// write+crash leaves behind.
	seg := filepath.Join(dir, walSegName(0))
	intact, err := os.Stat(seg)
	if err != nil {
		t.Fatalf("stat segment: %v", err)
	}
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatalf("open segment for tearing: %v", err)
	}
	if _, err := f.Write([]byte{0xEE, 0x01, 0, 0, 0xde, 0xad, 0xbe, 0xef, 0x42}); err != nil {
		t.Fatalf("tearing segment: %v", err)
	}
	f.Close()

	r := openWAL(t, dir, WALConfig{Sync: WALSyncAlways})
	defer r.Close()
	sameOps(t, listAll(t, r), want)
	repaired, err := os.Stat(seg)
	if err != nil {
		t.Fatalf("stat repaired segment: %v", err)
	}
	if repaired.Size() != intact.Size() {
		t.Errorf("repaired segment is %d bytes, want %d (truncated to valid prefix)",
			repaired.Size(), intact.Size())
	}
}

// TestWALStoreRecoversCorruptMiddle flips a byte inside an earlier
// record: the valid prefix ends there, and recovery must converge on
// exactly the operations before the flip — deterministic state, not
// best-effort scavenging.
func TestWALStoreRecoversCorruptMiddle(t *testing.T) {
	dir := t.TempDir()
	t0 := time.Unix(1000, 0)
	s := openWAL(t, dir, WALConfig{Sync: WALSyncAlways})
	ops := make([]*core.Operation, 6)
	offset := 0 // byte offset of each op's frame in segment 0
	corruptAt := -1
	const corruptIdx = 3
	for i := range ops {
		ops[i] = mkOp(fmt.Sprintf("op-%d", i), t0.Add(time.Duration(i)*time.Second))
		if i == corruptIdx {
			corruptAt = offset
		}
		rec, err := encodeOpRecordV2(nil, ops[i])
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		offset += len(rec)
		s.Put(ops[i])
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	seg := filepath.Join(dir, walSegName(0))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatalf("reading segment: %v", err)
	}
	data[corruptAt+walFrameHeader+2] ^= 0xFF // payload bit-flip → CRC mismatch
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatalf("writing corrupted segment: %v", err)
	}

	r := openWAL(t, dir, WALConfig{Sync: WALSyncAlways})
	defer r.Close()
	got := listAll(t, r)
	if len(got) != corruptIdx {
		t.Fatalf("recovered %d ops (%v), want the %d before the corrupt frame",
			len(got), listIDs(got), corruptIdx)
	}
	for _, op := range got {
		if _, err := r.Get(op.ID); err != nil {
			t.Errorf("Get(%s): %v", op.ID, err)
		}
	}
}

// TestWALStoreFlushBarrier: group mode logs transitions asynchronously,
// but Flush is a hard durability barrier — everything staged before it
// must survive a crash immediately after it.
func TestWALStoreFlushBarrier(t *testing.T) {
	dir := t.TempDir()
	t0 := time.Unix(1000, 0)
	s := openWAL(t, dir, WALConfig{Sync: WALSyncGroup, GroupWindow: time.Millisecond})
	s.Put(mkOp("a", t0))
	if err := s.Update("a", func(op *core.Operation) {
		op.Status = core.StatusDone
		op.UpdatedAt = t0.Add(time.Minute)
	}); err != nil {
		t.Fatalf("Update: %v", err)
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	s.closeAbrupt()

	r := openWAL(t, dir, WALConfig{Sync: WALSyncGroup})
	defer r.Close()
	got, err := r.Get("a")
	if err != nil {
		t.Fatalf("Get after recovery: %v", err)
	}
	if got.Status != core.StatusDone {
		t.Errorf("recovered status = %s, want done (flushed update lost)", got.Status)
	}
}

// TestWALStoreCompaction drives segment rotation until the committer
// folds closed segments into a snapshot, then proves the snapshot is
// sufficient: a reopen recovers the full state from it plus the
// surviving suffix.
func TestWALStoreCompaction(t *testing.T) {
	dir := t.TempDir()
	t0 := time.Unix(1000, 0)
	// Every commit overflows the 1-byte segment bound, so each Put
	// rotates; two closed segments trigger compaction.
	s := openWAL(t, dir, WALConfig{Sync: WALSyncAlways, SegmentBytes: 1, MaxSegments: 2})
	const n = 12
	for i := 0; i < n; i++ {
		s.Put(mkOp(fmt.Sprintf("op-%02d", i), t0.Add(time.Duration(i)*time.Second)))
	}
	// Compaction runs asynchronously; wait for a snapshot to land.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.wal")); len(snaps) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no snapshot appeared after 12 rotations with MaxSegments=2")
		}
		time.Sleep(5 * time.Millisecond)
	}
	want := listAll(t, s)
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(segs) >= n {
		t.Errorf("%d segments survive after compaction, want far fewer than %d", len(segs), n)
	}

	r := openWAL(t, dir, WALConfig{Sync: WALSyncAlways})
	defer r.Close()
	sameOps(t, listAll(t, r), want)
}

// TestWALStoreStats exercises the observability counters end to end:
// the store reports them and Engine.Stats surfaces them when its store
// is durable.
func TestWALStoreStats(t *testing.T) {
	dir := t.TempDir()
	t0 := time.Unix(1000, 0)
	s := openWAL(t, dir, WALConfig{Sync: WALSyncAlways})
	for i := 0; i < 4; i++ {
		s.Put(mkOp(fmt.Sprintf("op-%d", i), t0))
	}
	ws := s.WALStats()
	if ws.Segments < 1 {
		t.Errorf("WALStats.Segments = %d, want >= 1", ws.Segments)
	}
	if ws.BatchP50 < 1 {
		t.Errorf("WALStats.BatchP50 = %v, want >= 1 after committed batches", ws.BatchP50)
	}
	if ws.FsyncsPerSec <= 0 {
		t.Errorf("WALStats.FsyncsPerSec = %v, want > 0 under WALSyncAlways", ws.FsyncsPerSec)
	}

	e := New(Config{Workers: 1, Store: s})
	st := e.Stats()
	if !st.Durable {
		t.Error("Engine.Stats().Durable = false with a WAL store")
	}
	if st.WALSegments != ws.Segments {
		t.Errorf("Engine.Stats().WALSegments = %d, want %d", st.WALSegments, ws.Segments)
	}
	if err := e.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	mem := New(Config{Workers: 1})
	defer mem.Shutdown(context.Background())
	if mem.Stats().Durable {
		t.Error("Engine.Stats().Durable = true with an in-memory store")
	}
}

// TestOpenWALStoreValidates rejects a missing directory and an unknown
// sync mode up front.
func TestOpenWALStoreValidates(t *testing.T) {
	if _, err := OpenWALStore(WALConfig{}); err == nil {
		t.Error("OpenWALStore without Dir succeeded, want error")
	}
	if _, err := OpenWALStore(WALConfig{Dir: t.TempDir(), Sync: "sometimes"}); err == nil {
		t.Error("OpenWALStore with bad sync mode succeeded, want error")
	}
}

// TestEngineRecover is the boot-time contract: queued operations found
// in a recovered store are resubmitted and run; operations that were
// running when the old process died are failed with ErrInterrupted.
func TestEngineRecover(t *testing.T) {
	t0 := time.Unix(1000, 0)
	store := NewShardedStore(4)

	queued := []string{"q-old", "q-mid", "q-new"}
	for i, id := range queued {
		op := mkOp(id, t0.Add(time.Duration(i)*time.Second))
		op.Kind = "echo"
		store.Put(op)
	}
	running := mkOp("was-running", t0)
	running.Kind = "echo"
	running.Status = core.StatusRunning
	store.Put(running)
	done := mkOp("already-done", t0)
	done.Kind = "echo"
	done.Status = core.StatusDone
	store.Put(done)

	e := New(Config{Workers: 2, Store: store})
	defer e.Shutdown(context.Background())
	e.Register("echo", func(_ context.Context, op *core.Operation) (any, error) {
		return op.ID, nil
	})

	requeued, interrupted, err := e.Recover(context.Background())
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if requeued != len(queued) || interrupted != 1 {
		t.Fatalf("Recover = (%d requeued, %d interrupted), want (%d, 1)",
			requeued, interrupted, len(queued))
	}

	for _, id := range queued {
		op := waitStatus(t, e, id)
		if op.Status != core.StatusDone {
			t.Errorf("requeued %s finished as %s, want done (err=%s)", id, op.Status, op.Error)
		}
	}
	op, err := e.Get("was-running")
	if err != nil {
		t.Fatal(err)
	}
	if op.Status != core.StatusFailed || op.Error != core.ErrInterrupted.Error() {
		t.Errorf("was-running = (%s, %q), want (failed, %q)", op.Status, op.Error, core.ErrInterrupted)
	}
	if op, _ := e.Get("already-done"); op.Status != core.StatusDone {
		t.Errorf("already-done touched by Recover: %s", op.Status)
	}
}

// TestEngineRecoverOverflow: more queued survivors than the queue can
// hold. The overflow must fail loudly as interrupted, never block boot
// or vanish. With one worker parked on a blocking handler at most
// queue-capacity+1 operations can be requeued; the rest must be
// interrupted.
func TestEngineRecoverOverflow(t *testing.T) {
	t0 := time.Unix(1000, 0)
	store := NewShardedStore(4)
	const n = 6
	for i := 0; i < n; i++ {
		op := mkOp(fmt.Sprintf("q-%d", i), t0.Add(time.Duration(i)*time.Second))
		op.Kind = "block"
		store.Put(op)
	}

	e := New(Config{Workers: 1, QueueDepth: 1, Store: store})
	release := make(chan struct{})
	e.Register("block", func(ctx context.Context, _ *core.Operation) (any, error) {
		select {
		case <-release:
			return nil, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})

	requeued, interrupted, err := e.Recover(context.Background())
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if requeued+interrupted != n {
		t.Fatalf("Recover = (%d, %d), want counts summing to %d", requeued, interrupted, n)
	}
	if requeued < 1 || requeued > 2 {
		t.Errorf("requeued = %d, want 1 or 2 (queue depth 1, one blocked worker)", requeued)
	}
	if interrupted < n-2 {
		t.Errorf("interrupted = %d, want >= %d", interrupted, n-2)
	}
	close(release)
	if err := e.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// FuzzWALReplay fuzzes the codec's central promise: replay never
// panics, the reported valid prefix is within bounds, and replaying
// that prefix alone is clean and converges on the identical state.
func FuzzWALReplay(f *testing.F) {
	t0 := time.Unix(1000, 0)
	var valid []byte
	for i := 0; i < 3; i++ {
		rec, err := encodeOpRecord(walRecPut, mkOp(fmt.Sprintf("op-%d", i), t0))
		if err != nil {
			f.Fatal(err)
		}
		valid = append(valid, rec...)
	}
	valid = append(valid, encodeDeleteRecord("op-1")...)
	f.Add([]byte{})
	f.Add(valid)
	f.Add(valid[:len(valid)-5]) // torn tail
	flipped := append([]byte(nil), valid...)
	flipped[11] ^= 0x80 // checksum mismatch in the first record
	f.Add(flipped)
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0}) // impossible length

	f.Fuzz(func(t *testing.T, data []byte) {
		state := make(map[string]*core.Operation)
		n, err := walReplay(data, func(typ byte, body []byte) error {
			return applyWALRecord(state, typ, body)
		})
		if n < 0 || n > len(data) {
			t.Fatalf("valid prefix %d out of bounds [0, %d]", n, len(data))
		}
		if err == nil && n != len(data) {
			t.Fatalf("clean replay consumed %d of %d bytes", n, len(data))
		}
		// The prefix property recovery depends on: truncating to the
		// reported prefix yields a clean replay with the same state.
		again := make(map[string]*core.Operation)
		m, err2 := walReplay(data[:n], func(typ byte, body []byte) error {
			return applyWALRecord(again, typ, body)
		})
		if err2 != nil || m != n {
			t.Fatalf("replay of valid prefix = (%d, %v), want (%d, nil)", m, err2, n)
		}
		if len(again) != len(state) {
			t.Fatalf("prefix replay state has %d ops, want %d", len(again), len(state))
		}
		for id, op := range state {
			got, ok := again[id]
			if !ok || got.Status != op.Status || !got.UpdatedAt.Equal(op.UpdatedAt) {
				t.Fatalf("prefix replay diverges on %s", id)
			}
		}
	})
}
