package engine

import (
	"sort"
	"sync"

	"opdaemon/internal/core"
)

// Store persists operation state. The engine talks to storage only
// through this interface so a sharded or durable implementation can
// replace the in-memory one without touching scheduling code.
//
// Implementations must be safe for concurrent use and must return
// snapshots: callers may not observe later mutations through a
// returned *core.Operation.
type Store interface {
	// Put inserts or replaces the operation keyed by op.ID. The
	// store must not retain op itself — copy before storing — since
	// the caller keeps using the pointer after Put returns.
	Put(op *core.Operation)
	// Get returns a snapshot of the operation, or core.ErrNotFound.
	Get(id string) (*core.Operation, error)
	// List returns snapshots of all operations, newest first.
	List() []*core.Operation
	// Update applies fn to the stored operation under the store's
	// lock, making read-modify-write transitions atomic. Returns
	// core.ErrNotFound if the ID is unknown.
	Update(id string, fn func(op *core.Operation)) error
	// Delete removes the operation; deleting an unknown ID is a
	// no-op.
	Delete(id string)
	// Len returns the number of stored operations.
	Len() int
}

// memStore is the default mutex-guarded in-memory Store.
type memStore struct {
	mu  sync.RWMutex
	ops map[string]*core.Operation
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() Store {
	return &memStore{ops: make(map[string]*core.Operation)}
}

func (s *memStore) Put(op *core.Operation) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ops[op.ID] = op.Clone()
}

func (s *memStore) Get(id string) (*core.Operation, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	op, ok := s.ops[id]
	if !ok {
		return nil, core.ErrNotFound
	}
	return op.Clone(), nil
}

func (s *memStore) List() []*core.Operation {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*core.Operation, 0, len(s.ops))
	for _, op := range s.ops {
		out = append(out, op.Clone())
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].CreatedAt.Equal(out[j].CreatedAt) {
			return out[i].CreatedAt.After(out[j].CreatedAt)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

func (s *memStore) Update(id string, fn func(op *core.Operation)) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	op, ok := s.ops[id]
	if !ok {
		return core.ErrNotFound
	}
	fn(op)
	return nil
}

func (s *memStore) Delete(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.ops, id)
}

func (s *memStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.ops)
}
