package engine

import (
	"time"

	"opdaemon/internal/core"
)

// ListQuery selects a page of operations from a Store.
type ListQuery struct {
	// Status filters the page to one lifecycle state; empty matches
	// all.
	Status core.Status
	// Cursor resumes listing strictly after the operation with this ID
	// in newest-first order; empty starts at the newest operation. A
	// cursor naming an operation the store no longer holds (TTL
	// eviction, deletion) yields an empty page: the caller fell behind
	// retention and must restart from the top.
	Cursor string
	// Limit caps the page size; <= 0 means unbounded.
	Limit int
}

// Store persists operation state. The engine talks to storage only
// through this interface so a sharded or durable implementation can
// replace the in-memory one without touching scheduling code.
//
// Implementations must be safe for concurrent use and must honour the
// copy-on-write immutability contract: every *core.Operation that
// crosses this interface is an immutable published snapshot.
//
//   - Put/PutBatch take ownership of their arguments; the caller must
//     not mutate an operation after handing it over (reading it is
//     always safe — it never changes).
//   - Get/List return shared pointers to published snapshots, never
//     clones. Callers may hold them forever and will never observe a
//     later transition through them; callers must not mutate them.
//   - Update is the only mutation path: it clones the stored snapshot,
//     applies fn to the private clone, and publishes the clone
//     atomically. fn must not retain the operation past its return.
//
// The conformance suite in store_conformance_test.go holds every
// implementation to this contract.
type Store interface {
	// Put inserts or replaces the operation keyed by op.ID, taking
	// ownership of op.
	Put(op *core.Operation)
	// PutBatch inserts or replaces every operation, amortising lock
	// acquisitions across the batch where the implementation allows.
	// Ownership of each element transfers as with Put.
	PutBatch(ops []*core.Operation)
	// Get returns the published snapshot, or core.ErrNotFound.
	Get(id string) (*core.Operation, error)
	// List returns the page of published snapshots selected by q, in
	// newest-first order (ties broken by ascending ID). The page costs
	// O(limit), not O(store size); an unknown cursor yields an empty
	// page (see ListQuery.Cursor). The error is reserved for fallible
	// backends; in-memory implementations always return nil.
	List(q ListQuery) ([]*core.Operation, error)
	// Update applies fn to a clone of the stored operation and
	// atomically publishes the clone, making read-modify-write
	// transitions atomic. fn must not change the operation's ID.
	// Returns core.ErrNotFound if the ID is unknown.
	//
	// Implementations may be optimistic: fn can be invoked more than
	// once against successive snapshots before one publish wins (the
	// WAL store retries on a conflicting concurrent publish). fn must
	// therefore be effectively pure — derive everything from the clone
	// it is handed, and ASSIGN any captured variables from that
	// attempt's state rather than toggling them cumulatively, so the
	// attempt that publishes fully determines what the caller observes.
	Update(id string, fn func(op *core.Operation)) error
	// Delete removes the operation; deleting an unknown ID is a
	// no-op.
	Delete(id string)
	// SweepTerminalBefore deletes every operation whose status is
	// terminal and whose UpdatedAt is before cutoff, returning how
	// many were removed. Non-terminal operations are never touched.
	// The janitor calls this on every tick, so implementations scan
	// in place rather than snapshotting the store.
	SweepTerminalBefore(cutoff time.Time) int
	// Len returns the number of stored operations.
	Len() int
}

// memStore is the single-lock in-memory Store: one storeShard without
// the hashing. It is the simplest correct implementation, kept as the
// conformance reference and the benchmark baseline that shardedStore
// must beat under contention.
type memStore struct {
	shard storeShard
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() Store {
	return &memStore{shard: storeShard{ops: make(map[string]*core.Operation)}}
}

func (s *memStore) Put(op *core.Operation) {
	s.shard.put(op)
}

func (s *memStore) PutBatch(ops []*core.Operation) {
	s.shard.mu.Lock()
	for _, op := range ops {
		s.shard.putLocked(op)
	}
	s.shard.mu.Unlock()
}

func (s *memStore) Get(id string) (*core.Operation, error) {
	return s.shard.get(id)
}

func (s *memStore) List(q ListQuery) ([]*core.Operation, error) {
	sh := &s.shard
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	hasCursor := q.Cursor != ""
	var key *core.Operation
	if hasCursor {
		var ok bool
		if key, ok = sh.ops[q.Cursor]; !ok {
			return []*core.Operation{}, nil
		}
	}
	cursors := []listCursor{{ops: sh.ix.ops, pos: startPosFor(sh, key)}}
	return collectNewest(cursors, q), nil
}

// startPosFor adapts storeShard.startPos to an optional cursor key.
func startPosFor(sh *storeShard, key *core.Operation) int {
	if key == nil {
		return sh.startPos(false, time.Time{}, "")
	}
	return sh.startPos(true, key.CreatedAt, key.ID)
}

func (s *memStore) Update(id string, fn func(op *core.Operation)) error {
	return s.shard.update(id, fn)
}

func (s *memStore) Delete(id string) {
	s.shard.delete(id)
}

func (s *memStore) SweepTerminalBefore(cutoff time.Time) int {
	return s.shard.sweepTerminalBefore(cutoff)
}

func (s *memStore) Len() int {
	return s.shard.len()
}
