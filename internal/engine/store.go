package engine

import (
	"sort"
	"sync"
	"time"

	"opdaemon/internal/core"
)

// Store persists operation state. The engine talks to storage only
// through this interface so a sharded or durable implementation can
// replace the in-memory one without touching scheduling code.
//
// Implementations must be safe for concurrent use and must return
// snapshots: callers may not observe later mutations through a
// returned *core.Operation.
type Store interface {
	// Put inserts or replaces the operation keyed by op.ID. The
	// store must not retain op itself — copy before storing — since
	// the caller keeps using the pointer after Put returns.
	Put(op *core.Operation)
	// PutBatch inserts or replaces every operation, amortising lock
	// acquisitions across the batch where the implementation allows.
	// The same no-retention rule as Put applies to each element.
	PutBatch(ops []*core.Operation)
	// Get returns a snapshot of the operation, or core.ErrNotFound.
	Get(id string) (*core.Operation, error)
	// List returns snapshots of all operations, newest first.
	List() []*core.Operation
	// Update applies fn to the stored operation under the store's
	// lock, making read-modify-write transitions atomic. Returns
	// core.ErrNotFound if the ID is unknown.
	Update(id string, fn func(op *core.Operation)) error
	// Delete removes the operation; deleting an unknown ID is a
	// no-op.
	Delete(id string)
	// SweepTerminalBefore deletes every operation whose status is
	// terminal and whose UpdatedAt is before cutoff, returning how
	// many were removed. Non-terminal operations are never touched.
	// The janitor calls this on every tick, so implementations scan
	// in place rather than snapshotting the store.
	SweepTerminalBefore(cutoff time.Time) int
	// Len returns the number of stored operations.
	Len() int
}

// memStore is the single-mutex in-memory Store: the simplest correct
// implementation, kept as the conformance reference and the benchmark
// baseline that shardedStore must beat under contention.
type memStore struct {
	mu  sync.RWMutex
	ops map[string]*core.Operation
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() Store {
	return &memStore{ops: make(map[string]*core.Operation)}
}

func (s *memStore) Put(op *core.Operation) {
	// Clone outside the critical section: the copy is per-operation
	// work, only the map assignment needs the lock.
	c := op.Clone()
	s.mu.Lock()
	s.ops[c.ID] = c
	s.mu.Unlock()
}

func (s *memStore) PutBatch(ops []*core.Operation) {
	if len(ops) == 1 {
		s.Put(ops[0])
		return
	}
	clones := make([]*core.Operation, len(ops))
	for i, op := range ops {
		clones[i] = op.Clone()
	}
	s.mu.Lock()
	for _, c := range clones {
		s.ops[c.ID] = c
	}
	s.mu.Unlock()
}

func (s *memStore) Get(id string) (*core.Operation, error) {
	// Allocate the snapshot before taking the lock so the critical
	// section is a fixed-size copy, never a trip through the
	// allocator (which can stall on GC assist).
	out := new(core.Operation)
	s.mu.RLock()
	op, ok := s.ops[id]
	if ok {
		*out = *op
	}
	s.mu.RUnlock()
	if !ok {
		return nil, core.ErrNotFound
	}
	return out, nil
}

func (s *memStore) List() []*core.Operation {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*core.Operation, 0, len(s.ops))
	for _, op := range s.ops {
		out = append(out, op.Clone())
	}
	sortNewestFirst(out)
	return out
}

// sortNewestFirst orders operations newest first, breaking CreatedAt
// ties by ID so List output is stable. Shared by every Store
// implementation so they agree on ordering exactly.
func sortNewestFirst(ops []*core.Operation) {
	sort.Slice(ops, func(i, j int) bool {
		if !ops[i].CreatedAt.Equal(ops[j].CreatedAt) {
			return ops[i].CreatedAt.After(ops[j].CreatedAt)
		}
		return ops[i].ID < ops[j].ID
	})
}

func (s *memStore) Update(id string, fn func(op *core.Operation)) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	op, ok := s.ops[id]
	if !ok {
		return core.ErrNotFound
	}
	fn(op)
	return nil
}

func (s *memStore) Delete(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.ops, id)
}

func (s *memStore) SweepTerminalBefore(cutoff time.Time) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	evicted := 0
	for id, op := range s.ops {
		if op.Status.Terminal() && op.UpdatedAt.Before(cutoff) {
			delete(s.ops, id)
			evicted++
		}
	}
	return evicted
}

func (s *memStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.ops)
}
