package engine

// The write-ahead log behind WALStore: an append-only sequence of
// framed records (see walcodec.go) in rotating segment files, made
// cheap by group commit.
//
// The perf-critical shape mirrors the watch hub's detach-then-notify
// protocol, and lockscope polices it the same way: writers only ever
// append encoded records to an in-memory staging buffer (walBatch)
// under its mutex — never touching the file — and a single committer
// goroutine detaches the buffer under that mutex, then performs the
// one write+fsync for the whole batch strictly after the lock is
// released. Writers that need durability park on the batch's commit
// ticket (walGen), which the committer resolves once the fsync lands;
// one disk flush is amortised across every writer that boarded the
// batch.

import (
	"bufio"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"opdaemon/internal/core"
)

// WALSyncMode selects when the committer calls fsync and who waits for
// it; see the WALConfig.Sync docs for the durability each mode buys.
type WALSyncMode string

const (
	// WALSyncAlways fsyncs every batch and makes every mutation —
	// puts, updates, deletes — wait for its commit ticket. Maximum
	// durability, one fsync round-trip on every write path.
	WALSyncAlways WALSyncMode = "always"
	// WALSyncGroup (the default) accumulates records for the group
	// window, then writes and fsyncs them as one batch. Admissions
	// (Put/PutBatch) wait for durability; transitions (Update/Delete)
	// are logged asynchronously — recovery semantics make the loss
	// window principled (see docs/persistence.md).
	WALSyncGroup WALSyncMode = "group"
	// WALSyncNone never fsyncs and nobody waits; durability is
	// whatever the OS page cache survives. For tests and benchmarks.
	WALSyncNone WALSyncMode = "none"
)

// Valid reports whether m names a known sync mode.
func (m WALSyncMode) Valid() bool {
	switch m {
	case WALSyncAlways, WALSyncGroup, WALSyncNone:
		return true
	}
	return false
}

// walGroupEagerRecords is the staged-record count at which the group
// committer skips the accumulation window and commits immediately: a
// batch this size already amortises its fsync well, so the window
// would only add latency. The window earns its keep at low and
// moderate concurrency, where it turns a trickle of lone writers into
// one shared fsync.
const walGroupEagerRecords = 96

// walGen is one commit generation's ticket: every writer that appended
// into the generation's batch shares it. done closes after the batch's
// write+fsync completes; err is written before the close and read only
// after it.
type walGen struct {
	done chan struct{}
	err  error
}

// walBatch is the group-commit staging buffer. Its mutex is policed by
// lockscope as a nested-acquisition lock: writers may take it while
// holding a storeShard lock (that nesting is what keeps log order equal
// to publish order), but nothing may block or perform file I/O while
// holding it — the committer detaches buf and gen under the lock and
// does the write+fsync after releasing it.
type walBatch struct {
	mu sync.Mutex
	// buf accumulates encoded frames; n counts the records in them.
	buf []byte
	n   int
	// gen is the current generation's ticket, created lazily by the
	// first writer to board the batch.
	gen *walGen
}

// walStatsCounters aggregates the observability counters the health
// endpoint surfaces. Plain mutex over a tiny ring; not a policed type.
type walStatsCounters struct {
	// fsyncs feeds the fsyncs-per-second rate; drainMeter already
	// implements exactly the trailing-window counter needed.
	fsyncs drainMeter

	mu sync.Mutex
	// sizes is a ring of recent commit batch sizes (records per
	// commit) from which the p50 is computed on demand.
	sizes [64]int
	next  int
	count int
}

// recordBatch notes one committed batch of n records.
func (c *walStatsCounters) recordBatch(n int) {
	c.mu.Lock()
	c.sizes[c.next] = n
	c.next = (c.next + 1) % len(c.sizes)
	if c.count < len(c.sizes) {
		c.count++
	}
	c.mu.Unlock()
}

// batchP50 returns the median records-per-commit over the retained
// ring, 0 before the first commit.
func (c *walStatsCounters) batchP50() float64 {
	c.mu.Lock()
	n := c.count
	recent := make([]int, n)
	for i := 0; i < n; i++ {
		recent[i] = c.sizes[i]
	}
	c.mu.Unlock()
	if n == 0 {
		return 0
	}
	sort.Ints(recent)
	if n%2 == 1 {
		return float64(recent[n/2])
	}
	return float64(recent[n/2-1]+recent[n/2]) / 2
}

// WALStats is the point-in-time WAL snapshot surfaced through
// Engine.Stats and /v1/health.
type WALStats struct {
	// Segments is the number of live log segment files (closed plus
	// the one being appended to).
	Segments int
	// BatchP50 is the median records per commit over recent commits —
	// the direct measure of how much work each fsync amortises.
	BatchP50 float64
	// FsyncsPerSec is the observed fsync rate over the trailing
	// window.
	FsyncsPerSec float64
}

// wal owns the on-disk log: the staging buffer, the committer
// goroutine, segment rotation, and snapshot compaction.
type wal struct {
	dir      string
	mode     WALSyncMode
	window   time.Duration
	segBytes int64
	maxSegs  int
	clock    func() time.Time

	batch walBatch
	// kick wakes the committer; capacity 1 so boarding writers can
	// always try-send without blocking (a pending kick is as good as
	// many).
	kick chan struct{}

	stop     chan struct{}
	stopOnce sync.Once
	// die is the crash-simulation hook: closing it makes the committer
	// return without the final flush, exactly as if the process had
	// been killed. Tests only.
	die     chan struct{}
	dieOnce sync.Once
	done    chan struct{}
	// closeErr is the final-flush outcome, written by the committer
	// before done closes.
	closeErr error

	// Committer-goroutine-owned; no locks.
	f        *os.File
	segIndex int
	segSize  int64
	// spare recycles the detached batch buffer across commits.
	spare []byte

	// segMu guards the segment bookkeeping shared between the
	// committer (rotation appends) and the compactor (pruning
	// removes).
	segMu sync.Mutex
	segs  []int // sorted live segment indexes, including the open one
	// snapSeg is the highest segment index covered by the newest
	// snapshot; -1 before any snapshot exists.
	snapSeg int

	// compacting serialises snapshot compactions; compactReq asks the
	// committer to force one (the janitor sets it after a large
	// sweep).
	compacting atomic.Bool
	compactReq atomic.Bool
	compactWG  sync.WaitGroup
	// snapshotFn dumps the full store state for compaction; installed
	// by WALStore before the committer starts.
	snapshotFn func() []*core.Operation

	stats walStatsCounters
}

func walSegName(i int) string  { return fmt.Sprintf("wal-%08d.log", i) }
func walSnapName(i int) string { return fmt.Sprintf("snap-%08d.wal", i) }

// newWAL builds the log over an already-recovered directory layout and
// opens a fresh segment; the caller installs snapshotFn and then calls
// start.
func newWAL(cfg WALConfig, layout walLayout) (*wal, error) {
	w := &wal{
		dir:      cfg.Dir,
		mode:     cfg.Sync,
		window:   cfg.GroupWindow,
		segBytes: cfg.SegmentBytes,
		maxSegs:  cfg.MaxSegments,
		clock:    cfg.Clock,
		kick:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
		die:      make(chan struct{}),
		done:     make(chan struct{}),
		segs:     layout.segs,
		snapSeg:  layout.snapSeg,
	}
	if err := w.openSegment(layout.maxSeg + 1); err != nil {
		return nil, err
	}
	return w, nil
}

// start launches the committer; the wal accepts enqueues from this
// point on.
func (w *wal) start() {
	go w.committer()
}

// openSegment creates segment i and makes it the append target.
// Committer goroutine (or pre-start setup) only.
func (w *wal) openSegment(i int) error {
	f, err := os.OpenFile(filepath.Join(w.dir, walSegName(i)), os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: opening segment %d: %w", i, err)
	}
	w.f = f
	w.segIndex = i
	w.segSize = 0
	w.segMu.Lock()
	w.segs = append(w.segs, i)
	w.segMu.Unlock()
	return nil
}

// enqueue boards one or more already-framed records (recs counts them)
// onto the current batch and wakes the committer, returning the
// generation ticket the caller may wait on. Callers may hold a
// storeShard lock: enqueue only appends to the staging buffer; all file
// I/O happens on the committer goroutine.
func (w *wal) enqueue(frames []byte, recs int) *walGen {
	if len(frames) == 0 {
		return nil
	}
	b := &w.batch
	b.mu.Lock()
	if b.gen == nil {
		b.gen = &walGen{done: make(chan struct{})}
	}
	g := b.gen
	b.buf = append(b.buf, frames...)
	b.n += recs
	b.mu.Unlock()
	select {
	case w.kick <- struct{}{}:
	default:
	}
	return g
}

// admitWait parks the caller until its admission record is durable —
// the group-commit ticket wait — under the modes that promise durable
// admission. Under WALSyncNone nobody waits.
func (w *wal) admitWait(g *walGen) {
	if g == nil || w.mode == WALSyncNone {
		return
	}
	w.waitCommit(g)
}

// transitionWait parks the caller for a transition record only under
// WALSyncAlways; group mode logs transitions asynchronously (recovery
// resubmits or fails what the loss window eats — see
// docs/persistence.md).
func (w *wal) transitionWait(g *walGen) {
	if g == nil || w.mode != WALSyncAlways {
		return
	}
	w.waitCommit(g)
}

// waitCommit blocks until the generation's commit completes. Commit
// errors are logged once by the committer; waiters just proceed — the
// Store interface has no error channel for writes, and the in-memory
// state (the API's source of truth until restart) already holds the
// mutation.
func (w *wal) waitCommit(g *walGen) {
	<-g.done
}

// stagedRecords reads the current batch size, for the committer's
// skip-the-window decision.
func (w *wal) stagedRecords() int {
	b := &w.batch
	b.mu.Lock()
	n := b.n
	b.mu.Unlock()
	return n
}

// flush forces a commit of everything staged so far and waits for it,
// returning the commit's write/fsync outcome.
func (w *wal) flush() error {
	b := &w.batch
	b.mu.Lock()
	g := b.gen
	b.mu.Unlock()
	if g == nil {
		return nil
	}
	select {
	case w.kick <- struct{}{}:
	default:
	}
	<-g.done
	return g.err
}

// close flushes staged records, stops the committer, waits for any
// in-flight compaction, and closes the segment file.
func (w *wal) close() error {
	w.stopOnce.Do(func() { close(w.stop) })
	<-w.done
	w.compactWG.Wait()
	return w.closeErr
}

// abort is the crash-simulation close: the committer exits immediately,
// dropping whatever is staged but not yet committed, and the segment
// file is left un-flushed — the closest a live process gets to
// kill -9. Tests only.
func (w *wal) abort() {
	w.dieOnce.Do(func() { close(w.die) })
	<-w.done
	w.compactWG.Wait()
}

// committer is the single goroutine that turns staged batches into
// write+fsync calls. Waking on a kick, it rides out the accumulation
// window (group mode only) so concurrent writers can board the batch,
// then commits whatever accumulated: that one fsync resolves every
// boarded ticket.
func (w *wal) committer() {
	defer close(w.done)
	for {
		select {
		case <-w.die:
			return
		case <-w.stop:
			w.closeErr = w.finalize()
			return
		case <-w.kick:
		}
		if w.mode == WALSyncGroup && w.window > 0 {
			w.accumulate()
		}
		w.commit()
		w.maybeCompact()
	}
}

// accumulate is the group window: admission latency traded for batch
// size. The kick that woke the committer fires on the FIRST record
// staged after the previous commit, so the batch is nearly always tiny
// at wake time and sleeping the full window blind would tax every
// cycle with the window even under load heavy enough to fill a batch
// in a fraction of it. Instead the committer keeps consuming kicks —
// enqueue sends one per append — and leaves as soon as the batch
// reaches walGroupEagerRecords, falling back to the window expiry when
// writers trickle in too slowly to ever fill one. Lone writers still
// pay the full window; a saturating fleet commits the moment the fsync
// is worth its price.
func (w *wal) accumulate() {
	// Poll in a few slices rather than waking per kick: at tens of
	// thousands of enqueues per second a kick-driven wait would context
	// switch the committer on every append, which costs more than the
	// fsync it is trying to amortise. Four checks per window bound the
	// early-exit error at a quarter window.
	const slices = 4
	for i := 0; i < slices; i++ {
		if w.stagedRecords() >= walGroupEagerRecords {
			return
		}
		time.Sleep(w.window / slices)
	}
}

// commit detaches the staged batch and performs its write+fsync. The
// detach happens under the batch lock; the file I/O strictly after its
// release — the invariant lockscope's file-I/O rule enforces.
func (w *wal) commit() {
	b := &w.batch
	b.mu.Lock()
	if b.n == 0 {
		b.mu.Unlock()
		return
	}
	buf, gen, n := b.buf, b.gen, b.n
	b.buf = w.spare[:0]
	b.gen = nil
	b.n = 0
	b.mu.Unlock()

	err := w.writeAndSync(buf)
	w.spare = buf[:0]
	gen.err = err
	close(gen.done)
	w.stats.recordBatch(n)
	if err != nil {
		// The Store interface has no write-error channel, so this log
		// line is the operator's signal that durability is degraded;
		// the in-memory state remains correct until restart.
		log.Printf("engine: wal commit of %d records failed: %v", n, err)
	}
}

// writeAndSync appends one batch to the open segment, fsyncing per the
// sync mode, and rotates the segment once it outgrows its bound.
func (w *wal) writeAndSync(buf []byte) error {
	if _, err := w.f.Write(buf); err != nil {
		return fmt.Errorf("wal: appending to segment %d: %w", w.segIndex, err)
	}
	w.segSize += int64(len(buf))
	if w.mode != WALSyncNone {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("wal: fsync segment %d: %w", w.segIndex, err)
		}
		w.stats.fsyncs.record(w.clock())
	}
	if w.segSize >= w.segBytes {
		if err := w.rotate(); err != nil {
			return err
		}
	}
	return nil
}

// rotate closes the open segment and starts the next one.
func (w *wal) rotate() error {
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("wal: closing segment %d: %w", w.segIndex, err)
	}
	return w.openSegment(w.segIndex + 1)
}

// maybeCompact decides, after a commit, whether to fold the closed
// segments into a snapshot: either enough of them accumulated
// (maxSegs), or a sweep requested it (compactReq). One compaction runs
// at a time, on its own goroutine so the committer keeps absorbing
// writes while the snapshot is dumped.
func (w *wal) maybeCompact() {
	if w.compacting.Load() {
		return
	}
	forced := w.compactReq.Load()
	w.segMu.Lock()
	closed := 0
	for _, s := range w.segs {
		if s != w.segIndex && s > w.snapSeg {
			closed++
		}
	}
	w.segMu.Unlock()
	if !forced && closed < w.maxSegs {
		return
	}
	if forced && closed == 0 && w.segSize == 0 {
		// Nothing to fold: the request is moot.
		w.compactReq.Store(false)
		return
	}
	if forced && w.segSize > 0 {
		// Force the open segment closed so the snapshot can cover the
		// swept deletions sitting in it.
		if err := w.rotate(); err != nil {
			log.Printf("engine: wal rotation for compaction failed: %v", err)
			return
		}
	}
	w.compactReq.Store(false)
	through := w.segIndex - 1
	if through <= w.snapSegLoad() {
		return
	}
	if !w.compacting.CompareAndSwap(false, true) {
		return
	}
	w.compactWG.Add(1)
	go w.compact(through)
}

func (w *wal) snapSegLoad() int {
	w.segMu.Lock()
	defer w.segMu.Unlock()
	return w.snapSeg
}

// compact dumps the full store state to a snapshot covering every
// segment up to and including through, then prunes the segments and
// snapshots it obsoletes. The memory state is always ahead of the log,
// so a snapshot taken after the covered segments closed is a superset
// of them; replay idempotency makes the overlap with newer segments
// harmless.
func (w *wal) compact(through int) {
	defer w.compactWG.Done()
	defer w.compacting.Store(false)
	ops := w.snapshotFn()
	if err := writeWALSnapshot(w.dir, through, ops); err != nil {
		log.Printf("engine: wal snapshot through segment %d failed: %v", through, err)
		return
	}
	w.segMu.Lock()
	oldSnap := w.snapSeg
	w.snapSeg = through
	kept := w.segs[:0]
	var drop []int
	for _, s := range w.segs {
		if s <= through {
			drop = append(drop, s)
			continue
		}
		kept = append(kept, s)
	}
	w.segs = kept
	w.segMu.Unlock()
	for _, s := range drop {
		if err := os.Remove(filepath.Join(w.dir, walSegName(s))); err != nil {
			log.Printf("engine: wal pruning segment %d: %v", s, err)
		}
	}
	if oldSnap >= 0 && oldSnap != through {
		if err := os.Remove(filepath.Join(w.dir, walSnapName(oldSnap))); err != nil {
			log.Printf("engine: wal pruning snapshot %d: %v", oldSnap, err)
		}
	}
}

// writeWALSnapshot atomically installs a snapshot of ops covering
// segments <= through: written to a temp file, fsynced, renamed into
// place, directory fsynced — the standard crash-safe install sequence.
func writeWALSnapshot(dir string, through int, ops []*core.Operation) error {
	tmpPath := filepath.Join(dir, "snap.tmp")
	f, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	var rec []byte
	for _, op := range ops {
		var err error
		rec, err = encodeOpRecordV2(rec[:0], op)
		if err != nil {
			// Skip the unserialisable op rather than abort the whole
			// snapshot; it was never durable to begin with.
			log.Printf("engine: wal snapshot skipping %s: %v", op.ID, err)
			continue
		}
		if _, err := bw.Write(rec); err != nil {
			f.Close()
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpPath, filepath.Join(dir, walSnapName(through))); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs the directory so entry creations and renames are
// themselves durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// requestCompact asks the committer to fold the log into a snapshot at
// its next convenient point; WALStore calls it after a large terminal
// sweep so deleted history stops occupying replay time.
func (w *wal) requestCompact() {
	w.compactReq.Store(true)
	select {
	case w.kick <- struct{}{}:
	default:
	}
}

// finalize is the clean-shutdown path: commit anything staged, fsync
// regardless of mode (a clean close should be durable even under
// none/group), and close the segment.
func (w *wal) finalize() error {
	w.commit()
	var err error
	if w.f != nil {
		if serr := w.f.Sync(); serr != nil {
			err = serr
		}
		if cerr := w.f.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// snapshotStats assembles the health-endpoint counters.
func (w *wal) snapshotStats() WALStats {
	w.segMu.Lock()
	segs := len(w.segs)
	w.segMu.Unlock()
	return WALStats{
		Segments:     segs,
		BatchP50:     w.stats.batchP50(),
		FsyncsPerSec: w.stats.fsyncs.rate(w.clock()),
	}
}
