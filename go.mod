module opdaemon

go 1.24
