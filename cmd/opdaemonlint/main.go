// Command opdaemonlint runs the project's custom static-analysis suite
// over Go packages. It machine-enforces the engine's concurrency and
// immutability contracts:
//
//	opmutate         no field writes to published *core.Operation snapshots
//	lockscope        no blocking or re-entrant calls inside shard critical sections
//	ctxdiscipline    no detached context roots; ctx-first blocking exports
//	statustransition Status changes flow through core's guarded Transition
//
// Usage:
//
//	opdaemonlint [-tests=false] [-only=name,name] [packages]
//
// Packages default to ./... relative to the working directory. Exits 1
// when any diagnostic is reported, 2 on usage or load errors.
// Intentional violations are suppressed in-source with
// `//lint:allow opdaemon/<name> <justification>` on or immediately
// above the offending line; a bare directive with no justification is
// itself a diagnostic.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"opdaemon/internal/analysis/ctxdiscipline"
	"opdaemon/internal/analysis/lintkit"
	"opdaemon/internal/analysis/lockscope"
	"opdaemon/internal/analysis/opmutate"
	"opdaemon/internal/analysis/statustransition"
)

// suite is every analyzer the project ships, in report order.
var suite = []*lintkit.Analyzer{
	opmutate.Analyzer,
	lockscope.Analyzer,
	ctxdiscipline.Analyzer,
	statustransition.Analyzer,
}

func main() {
	os.Exit(run())
}

func run() int {
	tests := flag.Bool("tests", true, "also analyze test files and test packages")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list the analyzers in the suite and exit")
	flag.Parse()

	if *list {
		for _, a := range suite {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "opdaemonlint:", err)
		return 2
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := lintkit.Load(lintkit.LoadConfig{Tests: *tests}, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "opdaemonlint:", err)
		return 2
	}

	diags, err := lintkit.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "opdaemonlint:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Println(d.String())
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// selectAnalyzers resolves the -only flag against the suite.
func selectAnalyzers(only string) ([]*lintkit.Analyzer, error) {
	if only == "" {
		return suite, nil
	}
	byName := make(map[string]*lintkit.Analyzer, len(suite))
	for _, a := range suite {
		byName[a.Name] = a
	}
	var picked []*lintkit.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (use -list to see the suite)", name)
		}
		picked = append(picked, a)
	}
	if len(picked) == 0 {
		return nil, fmt.Errorf("-only selected no analyzers")
	}
	return picked, nil
}
