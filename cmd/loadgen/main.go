// Command loadgen drives an opdaemon instance hard and reports what it
// measured: request and operation throughput, latency percentiles, and
// a breakdown of response codes. It is the measurement half of every
// performance change — run it against a daemon before and after, and
// keep the numbers in the PR.
//
// Usage:
//
//	loadgen -addr 127.0.0.1:8712 -concurrency 16 -duration 10s \
//	        -batch 10 -kinds noop=3,echo=1 -cancel-frac 0.1
//
// Each worker goroutine loops until the duration expires: it picks
// operation kinds from the weighted mix, submits them (as a single
// object when -batch=1, as a JSON array otherwise), and records the
// request latency. Latency covers submission only — the daemon
// acknowledges with 202 before executing — so the numbers isolate the
// API + store + queue path that batching and sharding optimise.
//
// With -cancel-frac > 0, each accepted operation is cancelled via
// DELETE /v1/operations/{id} with that probability, and the report
// breaks down cancel outcomes: 202 (cancel accepted) vs 409 (the
// operation won the race and finished first). This exercises the
// daemon's cancellation path under the same load as submission.
//
// With -observe, each accepted operation is additionally followed to
// its terminal state and the report gains the read-path economics:
// GET requests spent per completed operation and the time from
// acceptance to observing the terminal state. -observe poll loops
// plain GETs every -poll-interval (the classic poll-until-terminal
// client); -observe watch replaces the loop with ?wait=true
// long-polls. Run both against the same daemon to measure what the
// watch path saves — that comparison is what BENCH_7.json records.
//
// With -clients N, workers identify themselves to the daemon via
// X-Client-Id so the scheduler's per-client fair queueing applies, and
// the report breaks latency down per client. -greedy-frac F marks that
// fraction of workers as one shared "greedy" client that submits
// without observing (fire-and-forget flood); the remaining workers are
// the victims, spread across the other N-1 client IDs. The per-client
// to-terminal percentiles of the victims against the greedy flood are
// the fairness metric BENCH_8.json records.
//
// 429 responses (the daemon shedding load at its admission threshold)
// are counted separately from errors: the report shows the shed count
// and a histogram of the Retry-After hints received, and a run that
// was fully shed still exits 0 — being told to back off is the daemon
// working, not the bench failing.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8712", "daemon address (host:port)")
		concurrency = flag.Int("concurrency", 16, "number of concurrent submitter goroutines")
		duration    = flag.Duration("duration", 10*time.Second, "how long to generate load")
		batch       = flag.Int("batch", 1, "operations per request (1 sends a single object, >1 a JSON array)")
		kinds       = flag.String("kinds", "noop=1", "weighted kind mix, e.g. noop=3,echo=1")
		params      = flag.String("params", "", "optional JSON object sent as params with every operation")
		timeout     = flag.Duration("timeout", 5*time.Second, "per-request timeout")
		seed        = flag.Int64("seed", 1, "seed for the kind-mix random source")
		cancelFrac  = flag.Float64("cancel-frac", 0, "fraction (0..1) of accepted operations to cancel via DELETE")
		listEvery   = flag.Int("list-every", 0, "issue GET /v1/operations?limit=50 after every N submissions per worker (0 disables); exercises the daemon's read path under load")
		observe     = flag.String("observe", "", "follow each accepted operation to its terminal state: 'poll' loops plain GETs at -poll-interval, 'watch' uses ?wait=true long-polls; empty disables")
		pollInt     = flag.Duration("poll-interval", 25*time.Millisecond, "delay between GETs in -observe poll mode")
		observeTO   = flag.Duration("observe-timeout", 30*time.Second, "max time to follow one operation to terminal (also sent as the long-poll timeout in watch mode)")
		clients     = flag.Int("clients", 0, "number of distinct X-Client-Id values to spread workers across (0 sends no header)")
		greedyFrac  = flag.Float64("greedy-frac", 0, "fraction (0..1) of workers assigned to one shared fire-and-forget 'greedy' client; requires -clients >= 2")
		jsonPath    = flag.String("json", "", "also write the report as JSON to this path (schema in docs/loadgen.md), for the BENCH_*.json perf trajectory")
	)
	flag.Parse()

	cfg, err := newRunConfig(runFlags{
		addr:           *addr,
		concurrency:    *concurrency,
		duration:       *duration,
		batch:          *batch,
		kinds:          *kinds,
		params:         *params,
		timeout:        *timeout,
		cancelFrac:     *cancelFrac,
		listEvery:      *listEvery,
		observe:        *observe,
		pollInterval:   *pollInt,
		observeTimeout: *observeTO,
		clients:        *clients,
		greedyFrac:     *greedyFrac,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(2)
	}
	report := cfg.run(*seed)
	fmt.Print(report.format(cfg))
	if *jsonPath != "" {
		if err := report.writeJSON(*jsonPath, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
	}
	// List and observe failures gate the exit status like transport
	// errors do: a scripted bench run must not record a broken read
	// path as green. Shed (429) responses do not: a daemon refusing
	// load at its admission threshold is behaving, so a run that got
	// nothing accepted but was told to back off still exits 0.
	if report.transportErrs > 0 || report.listErrs > 0 || report.observeErrs > 0 ||
		(report.accepted == 0 && report.sheds == 0) {
		os.Exit(1)
	}
}

// runFlags carries the raw flag values into newRunConfig; a struct so
// call sites name what they set instead of threading 14 positionals.
type runFlags struct {
	addr           string
	concurrency    int
	duration       time.Duration
	batch          int
	kinds          string
	params         string
	timeout        time.Duration
	cancelFrac     float64
	listEvery      int
	observe        string
	pollInterval   time.Duration
	observeTimeout time.Duration
	clients        int
	greedyFrac     float64
}

// runConfig is a validated loadgen run: where to send load, how much,
// and what shape.
type runConfig struct {
	url         string
	concurrency int
	duration    time.Duration
	batch       int
	mix         kindMix
	params      map[string]any
	timeout     time.Duration
	cancelFrac  float64
	listEvery   int
	// observe selects the follow-to-terminal mode: "" (off), "poll"
	// (GET loop at pollInterval), or "watch" (?wait=true long-polls).
	observe        string
	pollInterval   time.Duration
	observeTimeout time.Duration
	// clients is the number of distinct X-Client-Id values; 0 sends no
	// header. greedyWorkers is how many workers (from index 0) share
	// the "greedy" client, derived from -greedy-frac.
	clients       int
	greedyFrac    float64
	greedyWorkers int
}

// greedyClient is the client ID shared by the fire-and-forget workers
// of an adversarial mix.
const greedyClient = "greedy"

// clientFor assigns worker i its client ID: the first greedyWorkers
// workers share the greedy client, the rest spread round-robin across
// the remaining IDs c1..cK.
func (cfg *runConfig) clientFor(i int) string {
	if cfg.clients <= 0 {
		return ""
	}
	if i < cfg.greedyWorkers {
		return greedyClient
	}
	rest := cfg.clients
	if cfg.greedyWorkers > 0 {
		rest--
	}
	return "c" + strconv.Itoa((i-cfg.greedyWorkers)%rest+1)
}

// newRunConfig validates flags into a runConfig, rejecting values that
// would make the run meaningless (zero concurrency, empty mix, ...).
func newRunConfig(f runFlags) (*runConfig, error) {
	if f.concurrency < 1 {
		return nil, fmt.Errorf("concurrency must be >= 1, got %d", f.concurrency)
	}
	if f.batch < 1 {
		return nil, fmt.Errorf("batch must be >= 1, got %d", f.batch)
	}
	if f.duration <= 0 {
		return nil, fmt.Errorf("duration must be positive, got %s", f.duration)
	}
	if f.cancelFrac < 0 || f.cancelFrac > 1 {
		return nil, fmt.Errorf("cancel-frac must be within [0, 1], got %g", f.cancelFrac)
	}
	if f.listEvery < 0 {
		return nil, fmt.Errorf("list-every must be >= 0, got %d", f.listEvery)
	}
	switch f.observe {
	case "", "poll", "watch":
	default:
		return nil, fmt.Errorf("observe must be empty, poll, or watch, got %q", f.observe)
	}
	if f.observe == "poll" && f.pollInterval <= 0 {
		return nil, fmt.Errorf("poll-interval must be positive in poll mode, got %s", f.pollInterval)
	}
	if f.observe != "" && f.observeTimeout <= 0 {
		return nil, fmt.Errorf("observe-timeout must be positive, got %s", f.observeTimeout)
	}
	if f.clients < 0 {
		return nil, fmt.Errorf("clients must be >= 0, got %d", f.clients)
	}
	if f.greedyFrac < 0 || f.greedyFrac > 1 {
		return nil, fmt.Errorf("greedy-frac must be within [0, 1], got %g", f.greedyFrac)
	}
	greedyWorkers := 0
	if f.greedyFrac > 0 {
		// A greedy mix needs at least one victim client to contrast
		// against, and at least one worker on each side.
		if f.clients < 2 {
			return nil, fmt.Errorf("greedy-frac needs -clients >= 2, got %d", f.clients)
		}
		greedyWorkers = int(f.greedyFrac*float64(f.concurrency) + 0.5)
		if greedyWorkers < 1 {
			greedyWorkers = 1
		}
		if greedyWorkers >= f.concurrency {
			return nil, fmt.Errorf("greedy-frac %g leaves no victim workers at concurrency %d", f.greedyFrac, f.concurrency)
		}
	}
	mix, err := parseKindMix(f.kinds)
	if err != nil {
		return nil, err
	}
	var p map[string]any
	if f.params != "" {
		if err := json.Unmarshal([]byte(f.params), &p); err != nil {
			return nil, fmt.Errorf("parsing -params: %w", err)
		}
	}
	return &runConfig{
		url:            "http://" + f.addr + "/v1/operations",
		concurrency:    f.concurrency,
		duration:       f.duration,
		batch:          f.batch,
		mix:            mix,
		params:         p,
		timeout:        f.timeout,
		cancelFrac:     f.cancelFrac,
		listEvery:      f.listEvery,
		observe:        f.observe,
		pollInterval:   f.pollInterval,
		observeTimeout: f.observeTimeout,
		clients:        f.clients,
		greedyFrac:     f.greedyFrac,
		greedyWorkers:  greedyWorkers,
	}, nil
}

// kindWeight is one entry of a kind mix.
type kindWeight struct {
	kind   string
	weight int
}

// kindMix is a weighted set of operation kinds to submit.
type kindMix struct {
	entries []kindWeight
	total   int
}

// parseKindMix parses "noop=3,echo=1" into a kindMix. A bare kind
// without "=weight" gets weight 1.
func parseKindMix(s string) (kindMix, error) {
	var mix kindMix
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kind, weightStr, found := strings.Cut(part, "=")
		weight := 1
		if found {
			w, err := strconv.Atoi(weightStr)
			if err != nil || w < 1 {
				return kindMix{}, fmt.Errorf("kind %q: weight must be a positive integer, got %q", kind, weightStr)
			}
			weight = w
		}
		if kind == "" {
			return kindMix{}, fmt.Errorf("empty kind in mix %q", s)
		}
		mix.entries = append(mix.entries, kindWeight{kind: kind, weight: weight})
		mix.total += weight
	}
	if mix.total == 0 {
		return kindMix{}, fmt.Errorf("kind mix %q selects nothing", s)
	}
	return mix, nil
}

// pick returns one kind drawn from the mix, weighted.
func (m kindMix) pick(r *rand.Rand) string {
	n := r.Intn(m.total)
	for _, e := range m.entries {
		if n < e.weight {
			return e.kind
		}
		n -= e.weight
	}
	// Unreachable: n < total and weights sum to total.
	return m.entries[len(m.entries)-1].kind
}

// String renders the mix back in flag syntax for the report header.
func (m kindMix) String() string {
	parts := make([]string, len(m.entries))
	for i, e := range m.entries {
		parts[i] = fmt.Sprintf("%s=%d", e.kind, e.weight)
	}
	return strings.Join(parts, ",")
}

// submitRequest mirrors the daemon's POST /v1/operations item shape.
type submitRequest struct {
	Kind   string         `json:"kind"`
	Params map[string]any `json:"params,omitempty"`
}

// workerStats accumulates one worker's measurements; workers never
// share stats, so the hot loop takes no locks.
type workerStats struct {
	// client is the X-Client-Id this worker submits under ("" for
	// none); fixed at spawn, so per-worker stats merge per-client.
	client          string
	latencies       []time.Duration
	listLatencies   []time.Duration
	requests        int64
	accepted        int64
	listRequests    int64
	listErrs        int64
	codes           map[int]int64
	transportErrs   int64
	sheds           int64
	retryAfter      map[int]int64
	cancelRequested int64
	cancelled       int64
	cancelConflicts int64
	cancelErrs      int64
	observeGets     int64
	observed        int64
	observeErrs     int64
	// observeLatencies holds time from 202-acceptance to the terminal
	// state being observed, one sample per followed operation.
	observeLatencies []time.Duration
}

// clientReport is one client's slice of the merged run: enough to
// compute the per-client fairness percentiles the adversarial mixes
// exist to measure.
type clientReport struct {
	requests         int64
	accepted         int64
	sheds            int64
	latencies        []time.Duration
	observeLatencies []time.Duration
}

// report is the merged result of a run.
type report struct {
	elapsed       time.Duration
	requests      int64
	accepted      int64
	latencies     []time.Duration
	listRequests  int64
	listErrs      int64
	listLatencies []time.Duration
	codes         map[int]int64
	transportErrs int64
	// sheds counts 429 responses (daemon admission control refusing
	// load); retryAfter histograms the Retry-After hints (seconds)
	// those responses carried, -1 binning a missing/unparsable header.
	sheds            int64
	retryAfter       map[int]int64
	perClient        map[string]*clientReport
	cancelRequested  int64
	cancelled        int64
	cancelConflicts  int64
	cancelErrs       int64
	observeGets      int64
	observed         int64
	observeErrs      int64
	observeLatencies []time.Duration
}

// run fires cfg.concurrency workers at the daemon until the duration
// expires, then merges their stats.
func (cfg *runConfig) run(seed int64) *report {
	client := &http.Client{
		Timeout: cfg.timeout,
		Transport: &http.Transport{
			// Every worker keeps its connection alive; without this
			// the default (2 idle conns per host) forces most workers
			// into TCP handshakes and measures the kernel, not the
			// daemon.
			MaxIdleConnsPerHost: cfg.concurrency,
		},
	}
	// Observe requests get their own client: a watch-mode long-poll
	// legitimately holds the connection for up to observeTimeout, which
	// the tight submission timeout would cut short.
	var observeClient *http.Client
	if cfg.observe != "" {
		observeClient = &http.Client{
			Timeout: cfg.observeTimeout + 5*time.Second,
			Transport: &http.Transport{
				MaxIdleConnsPerHost: cfg.concurrency,
			},
		}
	}
	deadline := time.Now().Add(cfg.duration)
	stats := make([]*workerStats, cfg.concurrency)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < cfg.concurrency; i++ {
		wg.Add(1)
		stats[i] = &workerStats{
			client:     cfg.clientFor(i),
			codes:      make(map[int]int64),
			retryAfter: make(map[int]int64),
		}
		go func(ws *workerStats, workerSeed int64) {
			defer wg.Done()
			cfg.worker(client, observeClient, ws, deadline, workerSeed)
		}(stats[i], seed+int64(i))
	}
	wg.Wait()
	elapsed := time.Since(start)

	merged := &report{
		elapsed:    elapsed,
		codes:      make(map[int]int64),
		retryAfter: make(map[int]int64),
		perClient:  make(map[string]*clientReport),
	}
	for _, ws := range stats {
		merged.requests += ws.requests
		merged.accepted += ws.accepted
		merged.listRequests += ws.listRequests
		merged.listErrs += ws.listErrs
		merged.transportErrs += ws.transportErrs
		merged.sheds += ws.sheds
		merged.cancelRequested += ws.cancelRequested
		merged.cancelled += ws.cancelled
		merged.cancelConflicts += ws.cancelConflicts
		merged.cancelErrs += ws.cancelErrs
		merged.observeGets += ws.observeGets
		merged.observed += ws.observed
		merged.observeErrs += ws.observeErrs
		merged.latencies = append(merged.latencies, ws.latencies...)
		merged.listLatencies = append(merged.listLatencies, ws.listLatencies...)
		merged.observeLatencies = append(merged.observeLatencies, ws.observeLatencies...)
		for code, n := range ws.codes {
			merged.codes[code] += n
		}
		for secs, n := range ws.retryAfter {
			merged.retryAfter[secs] += n
		}
		if ws.client != "" {
			cr := merged.perClient[ws.client]
			if cr == nil {
				cr = &clientReport{}
				merged.perClient[ws.client] = cr
			}
			cr.requests += ws.requests
			cr.accepted += ws.accepted
			cr.sheds += ws.sheds
			cr.latencies = append(cr.latencies, ws.latencies...)
			cr.observeLatencies = append(cr.observeLatencies, ws.observeLatencies...)
		}
	}
	sort.Slice(merged.latencies, func(i, j int) bool { return merged.latencies[i] < merged.latencies[j] })
	sort.Slice(merged.listLatencies, func(i, j int) bool { return merged.listLatencies[i] < merged.listLatencies[j] })
	sort.Slice(merged.observeLatencies, func(i, j int) bool { return merged.observeLatencies[i] < merged.observeLatencies[j] })
	for _, cr := range merged.perClient {
		sort.Slice(cr.latencies, func(i, j int) bool { return cr.latencies[i] < cr.latencies[j] })
		sort.Slice(cr.observeLatencies, func(i, j int) bool { return cr.observeLatencies[i] < cr.observeLatencies[j] })
	}
	return merged
}

// worker is one submitter loop: build a body from the mix, POST it,
// record the outcome, repeat until the deadline.
func (cfg *runConfig) worker(client, observeClient *http.Client, ws *workerStats, deadline time.Time, seed int64) {
	r := rand.New(rand.NewSource(seed))
	submits := 0
	// The greedy client floods: it never follows its operations, so
	// its submission rate is bounded by the daemon, not by observe
	// round trips. Victims observe and measure to-terminal latency.
	observing := cfg.observe != "" && ws.client != greedyClient
	for time.Now().Before(deadline) {
		body, err := cfg.buildBody(r)
		if err != nil {
			// A mix that cannot marshal is a config bug; every
			// iteration would fail identically, so stop this worker.
			log.Printf("loadgen: building request body: %v", err)
			ws.transportErrs++
			return
		}
		req, err := http.NewRequest(http.MethodPost, cfg.url, bytes.NewReader(body))
		if err != nil {
			ws.transportErrs++
			return
		}
		req.Header.Set("Content-Type", "application/json")
		if ws.client != "" {
			req.Header.Set("X-Client-Id", ws.client)
		}
		begin := time.Now()
		resp, err := client.Do(req)
		took := time.Since(begin)
		ws.requests++
		if err != nil {
			ws.transportErrs++
			continue
		}
		// The reply body is only needed when cancellation or observe
		// must learn the accepted IDs; otherwise drain it unread to
		// keep the submission hot loop allocation-light.
		needIDs := cfg.cancelFrac > 0 || observing
		var replyBody []byte
		if needIDs && resp.StatusCode == http.StatusAccepted {
			replyBody, _ = io.ReadAll(resp.Body)
		} else {
			io.Copy(io.Discard, resp.Body)
		}
		retryHeader := resp.Header.Get("Retry-After")
		resp.Body.Close()
		ws.latencies = append(ws.latencies, took)
		ws.codes[resp.StatusCode]++
		switch resp.StatusCode {
		case http.StatusAccepted:
			// Batch validation is atomic, so a 202 means every item
			// was accepted.
			ws.accepted += int64(cfg.batch)
			if needIDs {
				ids, err := extractIDs(replyBody, cfg.batch > 1)
				if err != nil {
					ws.observeErrs++
					continue
				}
				if cfg.cancelFrac > 0 {
					cfg.cancelSome(client, ws, r, ids)
				}
				if observing {
					for _, id := range ids {
						cfg.observeOne(observeClient, ws, id, begin)
					}
				}
			}
		case http.StatusTooManyRequests:
			// The daemon shed this submission at its admission
			// threshold; count it and the Retry-After hint instead of
			// folding it into generic errors.
			ws.sheds++
			secs, err := strconv.Atoi(retryHeader)
			if err != nil {
				secs = -1
			}
			ws.retryAfter[secs]++
		}
		if submits++; cfg.listEvery > 0 && submits%cfg.listEvery == 0 {
			cfg.listOnce(client, ws)
		}
	}
}

// observeReply is the slice of the GET envelope observation needs.
type observeReply struct {
	Result struct {
		Status string `json:"status"`
	} `json:"result"`
}

// terminalStatus mirrors core.Status.Terminal for the wire strings.
func terminalStatus(s string) bool {
	return s == "done" || s == "failed" || s == "cancelled"
}

// observeOne follows a single accepted operation to its terminal state
// and records the cost: every GET issued counts toward observeGets, and
// the time from acceptance to the terminal observation lands in
// observeLatencies. In watch mode each GET is a ?wait=true long-poll —
// the server holds the request until the next state change — so an
// operation typically costs one or two GETs; in poll mode the loop
// sleeps pollInterval between plain GETs, the classic client the watch
// path exists to replace.
func (cfg *runConfig) observeOne(client *http.Client, ws *workerStats, id string, accepted time.Time) {
	url := cfg.url + "/" + id
	if cfg.observe == "watch" {
		url += "?wait=true&timeout=" + cfg.observeTimeout.String()
	}
	deadline := accepted.Add(cfg.observeTimeout)
	for time.Now().Before(deadline) {
		resp, err := client.Get(url)
		ws.observeGets++
		if err != nil {
			ws.observeErrs++
			return
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			ws.observeErrs++
			return
		}
		var reply observeReply
		if err := json.Unmarshal(body, &reply); err != nil {
			ws.observeErrs++
			return
		}
		if terminalStatus(reply.Result.Status) {
			ws.observed++
			ws.observeLatencies = append(ws.observeLatencies, time.Since(accepted))
			return
		}
		if cfg.observe == "poll" {
			time.Sleep(cfg.pollInterval)
		}
	}
	// Ran out of observe budget without seeing a terminal state.
	ws.observeErrs++
}

// listOnce issues one poll-style page request — the read path snapd
// clients hammer — and records its latency separately from submission
// latency so the two paths stay individually comparable across runs.
func (cfg *runConfig) listOnce(client *http.Client, ws *workerStats) {
	begin := time.Now()
	resp, err := client.Get(cfg.url + "?limit=50")
	took := time.Since(begin)
	ws.listRequests++
	if err != nil {
		ws.listErrs++
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		ws.listErrs++
		return
	}
	ws.listLatencies = append(ws.listLatencies, took)
}

// cancelSome draws each accepted ID against the cancel fraction and
// issues DELETE for the selected ones, tallying the outcomes.
func (cfg *runConfig) cancelSome(client *http.Client, ws *workerStats, r *rand.Rand, ids []string) {
	for _, id := range ids {
		if r.Float64() >= cfg.cancelFrac {
			continue
		}
		ws.cancelRequested++
		req, err := http.NewRequest(http.MethodDelete, cfg.url+"/"+id, nil)
		if err != nil {
			ws.cancelErrs++
			continue
		}
		resp, err := client.Do(req)
		if err != nil {
			ws.cancelErrs++
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted:
			ws.cancelled++
		case http.StatusConflict:
			// The operation reached a terminal state before the
			// cancel landed — expected under load, not an error.
			ws.cancelConflicts++
		default:
			ws.cancelErrs++
		}
	}
}

// submitReplyOp is the slice of an operation snapshot loadgen needs.
type submitReplyOp struct {
	ID string `json:"id"`
}

// extractIDs pulls the accepted operation IDs out of a 202 reply body:
// the single envelope's result for object submissions, each per-item
// envelope's result for batch submissions.
func extractIDs(body []byte, batch bool) ([]string, error) {
	if batch {
		var reply struct {
			Result []struct {
				Result submitReplyOp `json:"result"`
			} `json:"result"`
		}
		if err := json.Unmarshal(body, &reply); err != nil {
			return nil, fmt.Errorf("parsing batch reply: %w", err)
		}
		ids := make([]string, 0, len(reply.Result))
		for _, item := range reply.Result {
			if item.Result.ID != "" {
				ids = append(ids, item.Result.ID)
			}
		}
		return ids, nil
	}
	var reply struct {
		Result submitReplyOp `json:"result"`
	}
	if err := json.Unmarshal(body, &reply); err != nil {
		return nil, fmt.Errorf("parsing reply: %w", err)
	}
	if reply.Result.ID == "" {
		return nil, nil
	}
	return []string{reply.Result.ID}, nil
}

// buildBody marshals the next request: a single object at batch size
// 1 (exercising the daemon's object path), a JSON array otherwise.
func (cfg *runConfig) buildBody(r *rand.Rand) ([]byte, error) {
	if cfg.batch == 1 {
		return json.Marshal(submitRequest{Kind: cfg.mix.pick(r), Params: cfg.params})
	}
	reqs := make([]submitRequest, cfg.batch)
	for i := range reqs {
		reqs[i] = submitRequest{Kind: cfg.mix.pick(r), Params: cfg.params}
	}
	return json.Marshal(reqs)
}

// percentile returns the p-th percentile (0 < p <= 100) of sorted
// latencies using nearest-rank, or 0 for an empty sample.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// format renders the human-readable run report.
func (rep *report) format(cfg *runConfig) string {
	var b strings.Builder
	secs := rep.elapsed.Seconds()
	fmt.Fprintf(&b, "loadgen: %s against %s (concurrency=%d batch=%d kinds=%s)\n",
		rep.elapsed.Round(time.Millisecond), cfg.url, cfg.concurrency, cfg.batch, cfg.mix)
	fmt.Fprintf(&b, "requests:   %d (%.1f/s)\n", rep.requests, float64(rep.requests)/secs)
	fmt.Fprintf(&b, "operations: %d accepted (%.1f/s)\n", rep.accepted, float64(rep.accepted)/secs)
	if len(rep.latencies) > 0 {
		fmt.Fprintf(&b, "latency:    p50=%s p90=%s p99=%s max=%s\n",
			percentile(rep.latencies, 50).Round(time.Microsecond),
			percentile(rep.latencies, 90).Round(time.Microsecond),
			percentile(rep.latencies, 99).Round(time.Microsecond),
			rep.latencies[len(rep.latencies)-1].Round(time.Microsecond))
	}
	if rep.listRequests > 0 {
		fmt.Fprintf(&b, "lists:      %d (%.1f/s) p50=%s p90=%s p99=%s\n",
			rep.listRequests, float64(rep.listRequests)/secs,
			percentile(rep.listLatencies, 50).Round(time.Microsecond),
			percentile(rep.listLatencies, 90).Round(time.Microsecond),
			percentile(rep.listLatencies, 99).Round(time.Microsecond))
		if rep.listErrs > 0 {
			fmt.Fprintf(&b, "list errors: %d\n", rep.listErrs)
		}
	}
	codes := make([]int, 0, len(rep.codes))
	for code := range rep.codes {
		codes = append(codes, code)
	}
	sort.Ints(codes)
	for _, code := range codes {
		fmt.Fprintf(&b, "http %d:   %d\n", code, rep.codes[code])
	}
	if rep.sheds > 0 {
		perOp := float64(rep.sheds) / float64(rep.requests)
		fmt.Fprintf(&b, "sheds:      %d (429, %.3f shed/req), retry-after: %s\n",
			rep.sheds, perOp, formatRetryHistogram(rep.retryAfter))
	}
	if len(rep.perClient) > 0 {
		fmt.Fprintf(&b, "per-client:\n")
		for _, key := range sortedClientKeys(rep.perClient) {
			cr := rep.perClient[key]
			fmt.Fprintf(&b, "  %-8s ops=%d sheds=%d submit p50=%s p90=%s p99=%s",
				key, cr.accepted, cr.sheds,
				percentile(cr.latencies, 50).Round(time.Microsecond),
				percentile(cr.latencies, 90).Round(time.Microsecond),
				percentile(cr.latencies, 99).Round(time.Microsecond))
			if len(cr.observeLatencies) > 0 {
				fmt.Fprintf(&b, " to-terminal p50=%s p90=%s p99=%s",
					percentile(cr.observeLatencies, 50).Round(time.Microsecond),
					percentile(cr.observeLatencies, 90).Round(time.Microsecond),
					percentile(cr.observeLatencies, 99).Round(time.Microsecond))
			}
			b.WriteByte('\n')
		}
	}
	if rep.cancelRequested > 0 || cfg.cancelFrac > 0 {
		fmt.Fprintf(&b, "cancels:    %d requested, %d cancelled (202), %d conflict (409)\n",
			rep.cancelRequested, rep.cancelled, rep.cancelConflicts)
		if rep.cancelErrs > 0 {
			fmt.Fprintf(&b, "cancel errors: %d\n", rep.cancelErrs)
		}
	}
	if cfg.observe != "" {
		getsPerOp := 0.0
		if rep.observed > 0 {
			getsPerOp = float64(rep.observeGets) / float64(rep.observed)
		}
		fmt.Fprintf(&b, "observe:    mode=%s %d observed, %d gets (%.2f gets/op)\n",
			cfg.observe, rep.observed, rep.observeGets, getsPerOp)
		if len(rep.observeLatencies) > 0 {
			fmt.Fprintf(&b, "to-terminal: p50=%s p90=%s p99=%s max=%s\n",
				percentile(rep.observeLatencies, 50).Round(time.Microsecond),
				percentile(rep.observeLatencies, 90).Round(time.Microsecond),
				percentile(rep.observeLatencies, 99).Round(time.Microsecond),
				rep.observeLatencies[len(rep.observeLatencies)-1].Round(time.Microsecond))
		}
		if rep.observeErrs > 0 {
			fmt.Fprintf(&b, "observe errors: %d\n", rep.observeErrs)
		}
	}
	if rep.transportErrs > 0 {
		fmt.Fprintf(&b, "transport errors: %d\n", rep.transportErrs)
	}
	return b.String()
}

// sortedClientKeys orders the per-client breakdown: greedy first (it
// is the aggressor the rest are measured against), then the victims in
// name order.
func sortedClientKeys(m map[string]*clientReport) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if (keys[i] == greedyClient) != (keys[j] == greedyClient) {
			return keys[i] == greedyClient
		}
		return keys[i] < keys[j]
	})
	return keys
}

// formatRetryHistogram renders the Retry-After histogram as
// "1s×42 2s×3"; the -1 bin (missing or unparsable header) renders as
// "none×N" so a daemon that sheds without a hint is visible.
func formatRetryHistogram(h map[int]int64) string {
	if len(h) == 0 {
		return "none"
	}
	secs := make([]int, 0, len(h))
	for s := range h {
		secs = append(secs, s)
	}
	sort.Ints(secs)
	parts := make([]string, 0, len(secs))
	for _, s := range secs {
		label := strconv.Itoa(s) + "s"
		if s < 0 {
			label = "none"
		}
		parts = append(parts, fmt.Sprintf("%s×%d", label, h[s]))
	}
	return strings.Join(parts, " ")
}

// jsonPercentiles is the latency block of the JSON report, in
// milliseconds for cross-run arithmetic without duration parsing.
type jsonPercentiles struct {
	P50Ms float64 `json:"p50_ms"`
	P90Ms float64 `json:"p90_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
}

func toJSONPercentiles(sorted []time.Duration) jsonPercentiles {
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	var max time.Duration
	if len(sorted) > 0 {
		max = sorted[len(sorted)-1]
	}
	return jsonPercentiles{
		P50Ms: ms(percentile(sorted, 50)),
		P90Ms: ms(percentile(sorted, 90)),
		P99Ms: ms(percentile(sorted, 99)),
		MaxMs: ms(max),
	}
}

// jsonReport is the machine-readable run record written by -json; one
// of these per run is what a BENCH_*.json trajectory entry holds. The
// schema field versions the shape so future fields can be added
// without breaking consumers; see docs/loadgen.md.
type jsonReport struct {
	Schema string `json:"schema"`
	Config struct {
		URL             string  `json:"url"`
		Concurrency     int     `json:"concurrency"`
		DurationSeconds float64 `json:"duration_seconds"`
		Batch           int     `json:"batch"`
		Kinds           string  `json:"kinds"`
		CancelFrac      float64 `json:"cancel_frac"`
		ListEvery       int     `json:"list_every"`
		Observe         string  `json:"observe,omitempty"`
		PollIntervalMs  float64 `json:"poll_interval_ms,omitempty"`
		ObserveTimeoutS float64 `json:"observe_timeout_seconds,omitempty"`
		Clients         int     `json:"clients,omitempty"`
		GreedyFrac      float64 `json:"greedy_frac,omitempty"`
	} `json:"config"`
	ElapsedSeconds      float64          `json:"elapsed_seconds"`
	Requests            int64            `json:"requests"`
	RequestsPerSecond   float64          `json:"requests_per_second"`
	OperationsAccepted  int64            `json:"operations_accepted"`
	OperationsPerSecond float64          `json:"operations_per_second"`
	SubmitLatency       jsonPercentiles  `json:"submit_latency"`
	ListRequests        int64            `json:"list_requests,omitempty"`
	ListLatency         *jsonPercentiles `json:"list_latency,omitempty"`
	ListErrors          int64            `json:"list_errors,omitempty"`
	HTTPCodes           map[string]int64 `json:"http_codes"`
	CancelsRequested    int64            `json:"cancels_requested,omitempty"`
	Cancelled           int64            `json:"cancelled,omitempty"`
	CancelConflicts     int64            `json:"cancel_conflicts,omitempty"`
	CancelErrors        int64            `json:"cancel_errors,omitempty"`
	OpsObserved         int64            `json:"ops_observed,omitempty"`
	ObserveGets         int64            `json:"observe_gets,omitempty"`
	GetsPerOp           float64          `json:"gets_per_op,omitempty"`
	TimeToTerminal      *jsonPercentiles `json:"time_to_terminal,omitempty"`
	ObserveErrors       int64            `json:"observe_errors,omitempty"`
	Sheds               int64            `json:"sheds,omitempty"`
	RetryAfterHistogram map[string]int64 `json:"retry_after_histogram,omitempty"`
	PerClient           []jsonClient     `json:"per_client,omitempty"`
	TransportErrors     int64            `json:"transport_errors"`
}

// jsonClient is one client's row of the fairness breakdown; the
// "retry_after_histogram" key mirrors formatRetryHistogram's "none"
// bin as the string "none".
type jsonClient struct {
	Client         string           `json:"client"`
	Requests       int64            `json:"requests"`
	Accepted       int64            `json:"accepted"`
	Sheds          int64            `json:"sheds,omitempty"`
	SubmitLatency  jsonPercentiles  `json:"submit_latency"`
	TimeToTerminal *jsonPercentiles `json:"time_to_terminal,omitempty"`
}

// writeJSON renders the run as indented JSON at path.
func (rep *report) writeJSON(path string, cfg *runConfig) error {
	var jr jsonReport
	jr.Schema = "opdaemon-loadgen/1"
	jr.Config.URL = cfg.url
	jr.Config.Concurrency = cfg.concurrency
	jr.Config.DurationSeconds = cfg.duration.Seconds()
	jr.Config.Batch = cfg.batch
	jr.Config.Kinds = cfg.mix.String()
	jr.Config.CancelFrac = cfg.cancelFrac
	jr.Config.ListEvery = cfg.listEvery
	if cfg.observe != "" {
		jr.Config.Observe = cfg.observe
		if cfg.observe == "poll" {
			jr.Config.PollIntervalMs = float64(cfg.pollInterval) / float64(time.Millisecond)
		}
		jr.Config.ObserveTimeoutS = cfg.observeTimeout.Seconds()
	}
	jr.Config.Clients = cfg.clients
	jr.Config.GreedyFrac = cfg.greedyFrac
	secs := rep.elapsed.Seconds()
	jr.ElapsedSeconds = secs
	jr.Requests = rep.requests
	jr.RequestsPerSecond = float64(rep.requests) / secs
	jr.OperationsAccepted = rep.accepted
	jr.OperationsPerSecond = float64(rep.accepted) / secs
	jr.SubmitLatency = toJSONPercentiles(rep.latencies)
	if rep.listRequests > 0 {
		jr.ListRequests = rep.listRequests
		lp := toJSONPercentiles(rep.listLatencies)
		jr.ListLatency = &lp
		jr.ListErrors = rep.listErrs
	}
	jr.HTTPCodes = make(map[string]int64, len(rep.codes))
	for code, n := range rep.codes {
		jr.HTTPCodes[strconv.Itoa(code)] = n
	}
	jr.CancelsRequested = rep.cancelRequested
	jr.Cancelled = rep.cancelled
	jr.CancelConflicts = rep.cancelConflicts
	jr.CancelErrors = rep.cancelErrs
	if cfg.observe != "" {
		jr.OpsObserved = rep.observed
		jr.ObserveGets = rep.observeGets
		if rep.observed > 0 {
			jr.GetsPerOp = float64(rep.observeGets) / float64(rep.observed)
		}
		op := toJSONPercentiles(rep.observeLatencies)
		jr.TimeToTerminal = &op
		jr.ObserveErrors = rep.observeErrs
	}
	if rep.sheds > 0 {
		jr.Sheds = rep.sheds
		jr.RetryAfterHistogram = make(map[string]int64, len(rep.retryAfter))
		for secs, n := range rep.retryAfter {
			key := strconv.Itoa(secs)
			if secs < 0 {
				key = "none"
			}
			jr.RetryAfterHistogram[key] = n
		}
	}
	for _, key := range sortedClientKeys(rep.perClient) {
		cr := rep.perClient[key]
		jc := jsonClient{
			Client:        key,
			Requests:      cr.requests,
			Accepted:      cr.accepted,
			Sheds:         cr.sheds,
			SubmitLatency: toJSONPercentiles(cr.latencies),
		}
		if len(cr.observeLatencies) > 0 {
			tt := toJSONPercentiles(cr.observeLatencies)
			jc.TimeToTerminal = &tt
		}
		jr.PerClient = append(jr.PerClient, jc)
	}
	jr.TransportErrors = rep.transportErrs
	out, err := json.MarshalIndent(&jr, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
