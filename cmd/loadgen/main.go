// Command loadgen drives an opdaemon instance hard and reports what it
// measured: request and operation throughput, latency percentiles, and
// a breakdown of response codes. It is the measurement half of every
// performance change — run it against a daemon before and after, and
// keep the numbers in the PR.
//
// Usage:
//
//	loadgen -addr 127.0.0.1:8712 -concurrency 16 -duration 10s \
//	        -batch 10 -kinds noop=3,echo=1 -cancel-frac 0.1
//
// Each worker goroutine loops until the duration expires: it picks
// operation kinds from the weighted mix, submits them (as a single
// object when -batch=1, as a JSON array otherwise), and records the
// request latency. Latency covers submission only — the daemon
// acknowledges with 202 before executing — so the numbers isolate the
// API + store + queue path that batching and sharding optimise.
//
// With -cancel-frac > 0, each accepted operation is cancelled via
// DELETE /v1/operations/{id} with that probability, and the report
// breaks down cancel outcomes: 202 (cancel accepted) vs 409 (the
// operation won the race and finished first). This exercises the
// daemon's cancellation path under the same load as submission.
//
// With -observe, each accepted operation is additionally followed to
// its terminal state and the report gains the read-path economics:
// GET requests spent per completed operation and the time from
// acceptance to observing the terminal state. -observe poll loops
// plain GETs every -poll-interval (the classic poll-until-terminal
// client); -observe watch replaces the loop with ?wait=true
// long-polls. Run both against the same daemon to measure what the
// watch path saves — that comparison is what BENCH_7.json records.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8712", "daemon address (host:port)")
		concurrency = flag.Int("concurrency", 16, "number of concurrent submitter goroutines")
		duration    = flag.Duration("duration", 10*time.Second, "how long to generate load")
		batch       = flag.Int("batch", 1, "operations per request (1 sends a single object, >1 a JSON array)")
		kinds       = flag.String("kinds", "noop=1", "weighted kind mix, e.g. noop=3,echo=1")
		params      = flag.String("params", "", "optional JSON object sent as params with every operation")
		timeout     = flag.Duration("timeout", 5*time.Second, "per-request timeout")
		seed        = flag.Int64("seed", 1, "seed for the kind-mix random source")
		cancelFrac  = flag.Float64("cancel-frac", 0, "fraction (0..1) of accepted operations to cancel via DELETE")
		listEvery   = flag.Int("list-every", 0, "issue GET /v1/operations?limit=50 after every N submissions per worker (0 disables); exercises the daemon's read path under load")
		observe     = flag.String("observe", "", "follow each accepted operation to its terminal state: 'poll' loops plain GETs at -poll-interval, 'watch' uses ?wait=true long-polls; empty disables")
		pollInt     = flag.Duration("poll-interval", 25*time.Millisecond, "delay between GETs in -observe poll mode")
		observeTO   = flag.Duration("observe-timeout", 30*time.Second, "max time to follow one operation to terminal (also sent as the long-poll timeout in watch mode)")
		jsonPath    = flag.String("json", "", "also write the report as JSON to this path (schema in docs/loadgen.md), for the BENCH_*.json perf trajectory")
	)
	flag.Parse()

	cfg, err := newRunConfig(*addr, *concurrency, *duration, *batch, *kinds, *params, *timeout, *cancelFrac, *listEvery, *observe, *pollInt, *observeTO)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(2)
	}
	report := cfg.run(*seed)
	fmt.Print(report.format(cfg))
	if *jsonPath != "" {
		if err := report.writeJSON(*jsonPath, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
	}
	// List and observe failures gate the exit status like transport
	// errors do: a scripted bench run must not record a broken read
	// path as green.
	if report.transportErrs > 0 || report.listErrs > 0 || report.observeErrs > 0 || report.accepted == 0 {
		os.Exit(1)
	}
}

// runConfig is a validated loadgen run: where to send load, how much,
// and what shape.
type runConfig struct {
	url         string
	concurrency int
	duration    time.Duration
	batch       int
	mix         kindMix
	params      map[string]any
	timeout     time.Duration
	cancelFrac  float64
	listEvery   int
	// observe selects the follow-to-terminal mode: "" (off), "poll"
	// (GET loop at pollInterval), or "watch" (?wait=true long-polls).
	observe        string
	pollInterval   time.Duration
	observeTimeout time.Duration
}

// newRunConfig validates flags into a runConfig, rejecting values that
// would make the run meaningless (zero concurrency, empty mix, ...).
func newRunConfig(addr string, concurrency int, duration time.Duration, batch int, kinds, params string, timeout time.Duration, cancelFrac float64, listEvery int, observe string, pollInterval, observeTimeout time.Duration) (*runConfig, error) {
	if concurrency < 1 {
		return nil, fmt.Errorf("concurrency must be >= 1, got %d", concurrency)
	}
	if batch < 1 {
		return nil, fmt.Errorf("batch must be >= 1, got %d", batch)
	}
	if duration <= 0 {
		return nil, fmt.Errorf("duration must be positive, got %s", duration)
	}
	if cancelFrac < 0 || cancelFrac > 1 {
		return nil, fmt.Errorf("cancel-frac must be within [0, 1], got %g", cancelFrac)
	}
	if listEvery < 0 {
		return nil, fmt.Errorf("list-every must be >= 0, got %d", listEvery)
	}
	switch observe {
	case "", "poll", "watch":
	default:
		return nil, fmt.Errorf("observe must be empty, poll, or watch, got %q", observe)
	}
	if observe == "poll" && pollInterval <= 0 {
		return nil, fmt.Errorf("poll-interval must be positive in poll mode, got %s", pollInterval)
	}
	if observe != "" && observeTimeout <= 0 {
		return nil, fmt.Errorf("observe-timeout must be positive, got %s", observeTimeout)
	}
	mix, err := parseKindMix(kinds)
	if err != nil {
		return nil, err
	}
	var p map[string]any
	if params != "" {
		if err := json.Unmarshal([]byte(params), &p); err != nil {
			return nil, fmt.Errorf("parsing -params: %w", err)
		}
	}
	return &runConfig{
		url:            "http://" + addr + "/v1/operations",
		concurrency:    concurrency,
		duration:       duration,
		batch:          batch,
		mix:            mix,
		params:         p,
		timeout:        timeout,
		cancelFrac:     cancelFrac,
		listEvery:      listEvery,
		observe:        observe,
		pollInterval:   pollInterval,
		observeTimeout: observeTimeout,
	}, nil
}

// kindWeight is one entry of a kind mix.
type kindWeight struct {
	kind   string
	weight int
}

// kindMix is a weighted set of operation kinds to submit.
type kindMix struct {
	entries []kindWeight
	total   int
}

// parseKindMix parses "noop=3,echo=1" into a kindMix. A bare kind
// without "=weight" gets weight 1.
func parseKindMix(s string) (kindMix, error) {
	var mix kindMix
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kind, weightStr, found := strings.Cut(part, "=")
		weight := 1
		if found {
			w, err := strconv.Atoi(weightStr)
			if err != nil || w < 1 {
				return kindMix{}, fmt.Errorf("kind %q: weight must be a positive integer, got %q", kind, weightStr)
			}
			weight = w
		}
		if kind == "" {
			return kindMix{}, fmt.Errorf("empty kind in mix %q", s)
		}
		mix.entries = append(mix.entries, kindWeight{kind: kind, weight: weight})
		mix.total += weight
	}
	if mix.total == 0 {
		return kindMix{}, fmt.Errorf("kind mix %q selects nothing", s)
	}
	return mix, nil
}

// pick returns one kind drawn from the mix, weighted.
func (m kindMix) pick(r *rand.Rand) string {
	n := r.Intn(m.total)
	for _, e := range m.entries {
		if n < e.weight {
			return e.kind
		}
		n -= e.weight
	}
	// Unreachable: n < total and weights sum to total.
	return m.entries[len(m.entries)-1].kind
}

// String renders the mix back in flag syntax for the report header.
func (m kindMix) String() string {
	parts := make([]string, len(m.entries))
	for i, e := range m.entries {
		parts[i] = fmt.Sprintf("%s=%d", e.kind, e.weight)
	}
	return strings.Join(parts, ",")
}

// submitRequest mirrors the daemon's POST /v1/operations item shape.
type submitRequest struct {
	Kind   string         `json:"kind"`
	Params map[string]any `json:"params,omitempty"`
}

// workerStats accumulates one worker's measurements; workers never
// share stats, so the hot loop takes no locks.
type workerStats struct {
	latencies       []time.Duration
	listLatencies   []time.Duration
	requests        int64
	accepted        int64
	listRequests    int64
	listErrs        int64
	codes           map[int]int64
	transportErrs   int64
	cancelRequested int64
	cancelled       int64
	cancelConflicts int64
	cancelErrs      int64
	observeGets     int64
	observed        int64
	observeErrs     int64
	// observeLatencies holds time from 202-acceptance to the terminal
	// state being observed, one sample per followed operation.
	observeLatencies []time.Duration
}

// report is the merged result of a run.
type report struct {
	elapsed          time.Duration
	requests         int64
	accepted         int64
	latencies        []time.Duration
	listRequests     int64
	listErrs         int64
	listLatencies    []time.Duration
	codes            map[int]int64
	transportErrs    int64
	cancelRequested  int64
	cancelled        int64
	cancelConflicts  int64
	cancelErrs       int64
	observeGets      int64
	observed         int64
	observeErrs      int64
	observeLatencies []time.Duration
}

// run fires cfg.concurrency workers at the daemon until the duration
// expires, then merges their stats.
func (cfg *runConfig) run(seed int64) *report {
	client := &http.Client{
		Timeout: cfg.timeout,
		Transport: &http.Transport{
			// Every worker keeps its connection alive; without this
			// the default (2 idle conns per host) forces most workers
			// into TCP handshakes and measures the kernel, not the
			// daemon.
			MaxIdleConnsPerHost: cfg.concurrency,
		},
	}
	// Observe requests get their own client: a watch-mode long-poll
	// legitimately holds the connection for up to observeTimeout, which
	// the tight submission timeout would cut short.
	var observeClient *http.Client
	if cfg.observe != "" {
		observeClient = &http.Client{
			Timeout: cfg.observeTimeout + 5*time.Second,
			Transport: &http.Transport{
				MaxIdleConnsPerHost: cfg.concurrency,
			},
		}
	}
	deadline := time.Now().Add(cfg.duration)
	stats := make([]*workerStats, cfg.concurrency)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < cfg.concurrency; i++ {
		wg.Add(1)
		stats[i] = &workerStats{codes: make(map[int]int64)}
		go func(ws *workerStats, workerSeed int64) {
			defer wg.Done()
			cfg.worker(client, observeClient, ws, deadline, workerSeed)
		}(stats[i], seed+int64(i))
	}
	wg.Wait()
	elapsed := time.Since(start)

	merged := &report{elapsed: elapsed, codes: make(map[int]int64)}
	for _, ws := range stats {
		merged.requests += ws.requests
		merged.accepted += ws.accepted
		merged.listRequests += ws.listRequests
		merged.listErrs += ws.listErrs
		merged.transportErrs += ws.transportErrs
		merged.cancelRequested += ws.cancelRequested
		merged.cancelled += ws.cancelled
		merged.cancelConflicts += ws.cancelConflicts
		merged.cancelErrs += ws.cancelErrs
		merged.observeGets += ws.observeGets
		merged.observed += ws.observed
		merged.observeErrs += ws.observeErrs
		merged.latencies = append(merged.latencies, ws.latencies...)
		merged.listLatencies = append(merged.listLatencies, ws.listLatencies...)
		merged.observeLatencies = append(merged.observeLatencies, ws.observeLatencies...)
		for code, n := range ws.codes {
			merged.codes[code] += n
		}
	}
	sort.Slice(merged.latencies, func(i, j int) bool { return merged.latencies[i] < merged.latencies[j] })
	sort.Slice(merged.listLatencies, func(i, j int) bool { return merged.listLatencies[i] < merged.listLatencies[j] })
	sort.Slice(merged.observeLatencies, func(i, j int) bool { return merged.observeLatencies[i] < merged.observeLatencies[j] })
	return merged
}

// worker is one submitter loop: build a body from the mix, POST it,
// record the outcome, repeat until the deadline.
func (cfg *runConfig) worker(client, observeClient *http.Client, ws *workerStats, deadline time.Time, seed int64) {
	r := rand.New(rand.NewSource(seed))
	submits := 0
	for time.Now().Before(deadline) {
		body, err := cfg.buildBody(r)
		if err != nil {
			// A mix that cannot marshal is a config bug; every
			// iteration would fail identically, so stop this worker.
			log.Printf("loadgen: building request body: %v", err)
			ws.transportErrs++
			return
		}
		begin := time.Now()
		resp, err := client.Post(cfg.url, "application/json", bytes.NewReader(body))
		took := time.Since(begin)
		ws.requests++
		if err != nil {
			ws.transportErrs++
			continue
		}
		// The reply body is only needed when cancellation or observe
		// must learn the accepted IDs; otherwise drain it unread to
		// keep the submission hot loop allocation-light.
		needIDs := cfg.cancelFrac > 0 || cfg.observe != ""
		var replyBody []byte
		if needIDs && resp.StatusCode == http.StatusAccepted {
			replyBody, _ = io.ReadAll(resp.Body)
		} else {
			io.Copy(io.Discard, resp.Body)
		}
		resp.Body.Close()
		ws.latencies = append(ws.latencies, took)
		ws.codes[resp.StatusCode]++
		if resp.StatusCode == http.StatusAccepted {
			// Batch validation is atomic, so a 202 means every item
			// was accepted.
			ws.accepted += int64(cfg.batch)
			if needIDs {
				ids, err := extractIDs(replyBody, cfg.batch > 1)
				if err != nil {
					ws.observeErrs++
					continue
				}
				if cfg.cancelFrac > 0 {
					cfg.cancelSome(client, ws, r, ids)
				}
				if cfg.observe != "" {
					for _, id := range ids {
						cfg.observeOne(observeClient, ws, id, begin)
					}
				}
			}
		}
		if submits++; cfg.listEvery > 0 && submits%cfg.listEvery == 0 {
			cfg.listOnce(client, ws)
		}
	}
}

// observeReply is the slice of the GET envelope observation needs.
type observeReply struct {
	Result struct {
		Status string `json:"status"`
	} `json:"result"`
}

// terminalStatus mirrors core.Status.Terminal for the wire strings.
func terminalStatus(s string) bool {
	return s == "done" || s == "failed" || s == "cancelled"
}

// observeOne follows a single accepted operation to its terminal state
// and records the cost: every GET issued counts toward observeGets, and
// the time from acceptance to the terminal observation lands in
// observeLatencies. In watch mode each GET is a ?wait=true long-poll —
// the server holds the request until the next state change — so an
// operation typically costs one or two GETs; in poll mode the loop
// sleeps pollInterval between plain GETs, the classic client the watch
// path exists to replace.
func (cfg *runConfig) observeOne(client *http.Client, ws *workerStats, id string, accepted time.Time) {
	url := cfg.url + "/" + id
	if cfg.observe == "watch" {
		url += "?wait=true&timeout=" + cfg.observeTimeout.String()
	}
	deadline := accepted.Add(cfg.observeTimeout)
	for time.Now().Before(deadline) {
		resp, err := client.Get(url)
		ws.observeGets++
		if err != nil {
			ws.observeErrs++
			return
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			ws.observeErrs++
			return
		}
		var reply observeReply
		if err := json.Unmarshal(body, &reply); err != nil {
			ws.observeErrs++
			return
		}
		if terminalStatus(reply.Result.Status) {
			ws.observed++
			ws.observeLatencies = append(ws.observeLatencies, time.Since(accepted))
			return
		}
		if cfg.observe == "poll" {
			time.Sleep(cfg.pollInterval)
		}
	}
	// Ran out of observe budget without seeing a terminal state.
	ws.observeErrs++
}

// listOnce issues one poll-style page request — the read path snapd
// clients hammer — and records its latency separately from submission
// latency so the two paths stay individually comparable across runs.
func (cfg *runConfig) listOnce(client *http.Client, ws *workerStats) {
	begin := time.Now()
	resp, err := client.Get(cfg.url + "?limit=50")
	took := time.Since(begin)
	ws.listRequests++
	if err != nil {
		ws.listErrs++
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		ws.listErrs++
		return
	}
	ws.listLatencies = append(ws.listLatencies, took)
}

// cancelSome draws each accepted ID against the cancel fraction and
// issues DELETE for the selected ones, tallying the outcomes.
func (cfg *runConfig) cancelSome(client *http.Client, ws *workerStats, r *rand.Rand, ids []string) {
	for _, id := range ids {
		if r.Float64() >= cfg.cancelFrac {
			continue
		}
		ws.cancelRequested++
		req, err := http.NewRequest(http.MethodDelete, cfg.url+"/"+id, nil)
		if err != nil {
			ws.cancelErrs++
			continue
		}
		resp, err := client.Do(req)
		if err != nil {
			ws.cancelErrs++
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted:
			ws.cancelled++
		case http.StatusConflict:
			// The operation reached a terminal state before the
			// cancel landed — expected under load, not an error.
			ws.cancelConflicts++
		default:
			ws.cancelErrs++
		}
	}
}

// submitReplyOp is the slice of an operation snapshot loadgen needs.
type submitReplyOp struct {
	ID string `json:"id"`
}

// extractIDs pulls the accepted operation IDs out of a 202 reply body:
// the single envelope's result for object submissions, each per-item
// envelope's result for batch submissions.
func extractIDs(body []byte, batch bool) ([]string, error) {
	if batch {
		var reply struct {
			Result []struct {
				Result submitReplyOp `json:"result"`
			} `json:"result"`
		}
		if err := json.Unmarshal(body, &reply); err != nil {
			return nil, fmt.Errorf("parsing batch reply: %w", err)
		}
		ids := make([]string, 0, len(reply.Result))
		for _, item := range reply.Result {
			if item.Result.ID != "" {
				ids = append(ids, item.Result.ID)
			}
		}
		return ids, nil
	}
	var reply struct {
		Result submitReplyOp `json:"result"`
	}
	if err := json.Unmarshal(body, &reply); err != nil {
		return nil, fmt.Errorf("parsing reply: %w", err)
	}
	if reply.Result.ID == "" {
		return nil, nil
	}
	return []string{reply.Result.ID}, nil
}

// buildBody marshals the next request: a single object at batch size
// 1 (exercising the daemon's object path), a JSON array otherwise.
func (cfg *runConfig) buildBody(r *rand.Rand) ([]byte, error) {
	if cfg.batch == 1 {
		return json.Marshal(submitRequest{Kind: cfg.mix.pick(r), Params: cfg.params})
	}
	reqs := make([]submitRequest, cfg.batch)
	for i := range reqs {
		reqs[i] = submitRequest{Kind: cfg.mix.pick(r), Params: cfg.params}
	}
	return json.Marshal(reqs)
}

// percentile returns the p-th percentile (0 < p <= 100) of sorted
// latencies using nearest-rank, or 0 for an empty sample.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// format renders the human-readable run report.
func (rep *report) format(cfg *runConfig) string {
	var b strings.Builder
	secs := rep.elapsed.Seconds()
	fmt.Fprintf(&b, "loadgen: %s against %s (concurrency=%d batch=%d kinds=%s)\n",
		rep.elapsed.Round(time.Millisecond), cfg.url, cfg.concurrency, cfg.batch, cfg.mix)
	fmt.Fprintf(&b, "requests:   %d (%.1f/s)\n", rep.requests, float64(rep.requests)/secs)
	fmt.Fprintf(&b, "operations: %d accepted (%.1f/s)\n", rep.accepted, float64(rep.accepted)/secs)
	if len(rep.latencies) > 0 {
		fmt.Fprintf(&b, "latency:    p50=%s p90=%s p99=%s max=%s\n",
			percentile(rep.latencies, 50).Round(time.Microsecond),
			percentile(rep.latencies, 90).Round(time.Microsecond),
			percentile(rep.latencies, 99).Round(time.Microsecond),
			rep.latencies[len(rep.latencies)-1].Round(time.Microsecond))
	}
	if rep.listRequests > 0 {
		fmt.Fprintf(&b, "lists:      %d (%.1f/s) p50=%s p90=%s p99=%s\n",
			rep.listRequests, float64(rep.listRequests)/secs,
			percentile(rep.listLatencies, 50).Round(time.Microsecond),
			percentile(rep.listLatencies, 90).Round(time.Microsecond),
			percentile(rep.listLatencies, 99).Round(time.Microsecond))
		if rep.listErrs > 0 {
			fmt.Fprintf(&b, "list errors: %d\n", rep.listErrs)
		}
	}
	codes := make([]int, 0, len(rep.codes))
	for code := range rep.codes {
		codes = append(codes, code)
	}
	sort.Ints(codes)
	for _, code := range codes {
		fmt.Fprintf(&b, "http %d:   %d\n", code, rep.codes[code])
	}
	if rep.cancelRequested > 0 || cfg.cancelFrac > 0 {
		fmt.Fprintf(&b, "cancels:    %d requested, %d cancelled (202), %d conflict (409)\n",
			rep.cancelRequested, rep.cancelled, rep.cancelConflicts)
		if rep.cancelErrs > 0 {
			fmt.Fprintf(&b, "cancel errors: %d\n", rep.cancelErrs)
		}
	}
	if cfg.observe != "" {
		getsPerOp := 0.0
		if rep.observed > 0 {
			getsPerOp = float64(rep.observeGets) / float64(rep.observed)
		}
		fmt.Fprintf(&b, "observe:    mode=%s %d observed, %d gets (%.2f gets/op)\n",
			cfg.observe, rep.observed, rep.observeGets, getsPerOp)
		if len(rep.observeLatencies) > 0 {
			fmt.Fprintf(&b, "to-terminal: p50=%s p90=%s p99=%s max=%s\n",
				percentile(rep.observeLatencies, 50).Round(time.Microsecond),
				percentile(rep.observeLatencies, 90).Round(time.Microsecond),
				percentile(rep.observeLatencies, 99).Round(time.Microsecond),
				rep.observeLatencies[len(rep.observeLatencies)-1].Round(time.Microsecond))
		}
		if rep.observeErrs > 0 {
			fmt.Fprintf(&b, "observe errors: %d\n", rep.observeErrs)
		}
	}
	if rep.transportErrs > 0 {
		fmt.Fprintf(&b, "transport errors: %d\n", rep.transportErrs)
	}
	return b.String()
}

// jsonPercentiles is the latency block of the JSON report, in
// milliseconds for cross-run arithmetic without duration parsing.
type jsonPercentiles struct {
	P50Ms float64 `json:"p50_ms"`
	P90Ms float64 `json:"p90_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
}

func toJSONPercentiles(sorted []time.Duration) jsonPercentiles {
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	var max time.Duration
	if len(sorted) > 0 {
		max = sorted[len(sorted)-1]
	}
	return jsonPercentiles{
		P50Ms: ms(percentile(sorted, 50)),
		P90Ms: ms(percentile(sorted, 90)),
		P99Ms: ms(percentile(sorted, 99)),
		MaxMs: ms(max),
	}
}

// jsonReport is the machine-readable run record written by -json; one
// of these per run is what a BENCH_*.json trajectory entry holds. The
// schema field versions the shape so future fields can be added
// without breaking consumers; see docs/loadgen.md.
type jsonReport struct {
	Schema string `json:"schema"`
	Config struct {
		URL             string  `json:"url"`
		Concurrency     int     `json:"concurrency"`
		DurationSeconds float64 `json:"duration_seconds"`
		Batch           int     `json:"batch"`
		Kinds           string  `json:"kinds"`
		CancelFrac      float64 `json:"cancel_frac"`
		ListEvery       int     `json:"list_every"`
		Observe         string  `json:"observe,omitempty"`
		PollIntervalMs  float64 `json:"poll_interval_ms,omitempty"`
		ObserveTimeoutS float64 `json:"observe_timeout_seconds,omitempty"`
	} `json:"config"`
	ElapsedSeconds      float64          `json:"elapsed_seconds"`
	Requests            int64            `json:"requests"`
	RequestsPerSecond   float64          `json:"requests_per_second"`
	OperationsAccepted  int64            `json:"operations_accepted"`
	OperationsPerSecond float64          `json:"operations_per_second"`
	SubmitLatency       jsonPercentiles  `json:"submit_latency"`
	ListRequests        int64            `json:"list_requests,omitempty"`
	ListLatency         *jsonPercentiles `json:"list_latency,omitempty"`
	ListErrors          int64            `json:"list_errors,omitempty"`
	HTTPCodes           map[string]int64 `json:"http_codes"`
	CancelsRequested    int64            `json:"cancels_requested,omitempty"`
	Cancelled           int64            `json:"cancelled,omitempty"`
	CancelConflicts     int64            `json:"cancel_conflicts,omitempty"`
	CancelErrors        int64            `json:"cancel_errors,omitempty"`
	OpsObserved         int64            `json:"ops_observed,omitempty"`
	ObserveGets         int64            `json:"observe_gets,omitempty"`
	GetsPerOp           float64          `json:"gets_per_op,omitempty"`
	TimeToTerminal      *jsonPercentiles `json:"time_to_terminal,omitempty"`
	ObserveErrors       int64            `json:"observe_errors,omitempty"`
	TransportErrors     int64            `json:"transport_errors"`
}

// writeJSON renders the run as indented JSON at path.
func (rep *report) writeJSON(path string, cfg *runConfig) error {
	var jr jsonReport
	jr.Schema = "opdaemon-loadgen/1"
	jr.Config.URL = cfg.url
	jr.Config.Concurrency = cfg.concurrency
	jr.Config.DurationSeconds = cfg.duration.Seconds()
	jr.Config.Batch = cfg.batch
	jr.Config.Kinds = cfg.mix.String()
	jr.Config.CancelFrac = cfg.cancelFrac
	jr.Config.ListEvery = cfg.listEvery
	if cfg.observe != "" {
		jr.Config.Observe = cfg.observe
		if cfg.observe == "poll" {
			jr.Config.PollIntervalMs = float64(cfg.pollInterval) / float64(time.Millisecond)
		}
		jr.Config.ObserveTimeoutS = cfg.observeTimeout.Seconds()
	}
	secs := rep.elapsed.Seconds()
	jr.ElapsedSeconds = secs
	jr.Requests = rep.requests
	jr.RequestsPerSecond = float64(rep.requests) / secs
	jr.OperationsAccepted = rep.accepted
	jr.OperationsPerSecond = float64(rep.accepted) / secs
	jr.SubmitLatency = toJSONPercentiles(rep.latencies)
	if rep.listRequests > 0 {
		jr.ListRequests = rep.listRequests
		lp := toJSONPercentiles(rep.listLatencies)
		jr.ListLatency = &lp
		jr.ListErrors = rep.listErrs
	}
	jr.HTTPCodes = make(map[string]int64, len(rep.codes))
	for code, n := range rep.codes {
		jr.HTTPCodes[strconv.Itoa(code)] = n
	}
	jr.CancelsRequested = rep.cancelRequested
	jr.Cancelled = rep.cancelled
	jr.CancelConflicts = rep.cancelConflicts
	jr.CancelErrors = rep.cancelErrs
	if cfg.observe != "" {
		jr.OpsObserved = rep.observed
		jr.ObserveGets = rep.observeGets
		if rep.observed > 0 {
			jr.GetsPerOp = float64(rep.observeGets) / float64(rep.observed)
		}
		op := toJSONPercentiles(rep.observeLatencies)
		jr.TimeToTerminal = &op
		jr.ObserveErrors = rep.observeErrs
	}
	jr.TransportErrors = rep.transportErrs
	out, err := json.MarshalIndent(&jr, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
