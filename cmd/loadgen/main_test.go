package main

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestParseKindMix(t *testing.T) {
	for _, tc := range []struct {
		in      string
		want    string
		wantErr bool
	}{
		{in: "noop=1", want: "noop=1"},
		{in: "noop=3,echo=1", want: "noop=3,echo=1"},
		{in: "noop", want: "noop=1"},
		{in: " noop = 3 ", wantErr: true}, // inner spaces make the weight unparsable
		{in: "noop=3, echo", want: "noop=3,echo=1"},
		{in: "", wantErr: true},
		{in: "noop=0", wantErr: true},
		{in: "noop=-2", wantErr: true},
		{in: "=3", wantErr: true},
		{in: "noop=x", wantErr: true},
	} {
		mix, err := parseKindMix(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("parseKindMix(%q) = %v, want error", tc.in, mix)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseKindMix(%q): %v", tc.in, err)
			continue
		}
		if got := mix.String(); got != tc.want {
			t.Errorf("parseKindMix(%q) = %s, want %s", tc.in, got, tc.want)
		}
	}
}

func TestKindMixPickRespectsWeights(t *testing.T) {
	mix, err := parseKindMix("heavy=9,light=1")
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(42))
	counts := map[string]int{}
	const n = 10000
	for i := 0; i < n; i++ {
		counts[mix.pick(r)]++
	}
	if counts["heavy"]+counts["light"] != n {
		t.Fatalf("picks outside the mix: %v", counts)
	}
	// 9:1 mix should land near 90%; allow generous slack for the RNG.
	if frac := float64(counts["heavy"]) / n; frac < 0.85 || frac > 0.95 {
		t.Errorf("heavy fraction = %.3f, want ~0.9", frac)
	}
}

func TestPercentile(t *testing.T) {
	sorted := make([]time.Duration, 100)
	for i := range sorted {
		sorted[i] = time.Duration(i+1) * time.Millisecond
	}
	for _, tc := range []struct {
		p    float64
		want time.Duration
	}{
		{50, 50 * time.Millisecond},
		{90, 90 * time.Millisecond},
		{99, 99 * time.Millisecond},
		{100, 100 * time.Millisecond},
	} {
		if got := percentile(sorted, tc.p); got != tc.want {
			t.Errorf("percentile(%v) = %s, want %s", tc.p, got, tc.want)
		}
	}
	if got := percentile(nil, 50); got != 0 {
		t.Errorf("percentile(empty) = %s, want 0", got)
	}
}

func TestBuildBodyShapes(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	mix, _ := parseKindMix("noop=1")

	single := &runConfig{batch: 1, mix: mix, params: map[string]any{"ms": 5}}
	body, err := single.buildBody(r)
	if err != nil {
		t.Fatal(err)
	}
	var obj map[string]any
	if err := json.Unmarshal(body, &obj); err != nil {
		t.Fatalf("batch=1 body is not a JSON object: %s", body)
	}
	if obj["kind"] != "noop" {
		t.Errorf("kind = %v, want noop", obj["kind"])
	}

	batched := &runConfig{batch: 3, mix: mix}
	body, err = batched.buildBody(r)
	if err != nil {
		t.Fatal(err)
	}
	var arr []map[string]any
	if err := json.Unmarshal(body, &arr); err != nil {
		t.Fatalf("batch=3 body is not a JSON array: %s", body)
	}
	if len(arr) != 3 {
		t.Errorf("batch=3 body has %d items, want 3", len(arr))
	}
}

func TestRunAgainstStubDaemon(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		w.Write([]byte(`{"type":"async","status_code":202,"result":[]}`))
	}))
	defer srv.Close()

	addr := strings.TrimPrefix(srv.URL, "http://")
	cfg, err := newRunConfig(addr, 2, 50*time.Millisecond, 4, "noop=1", "", time.Second, 0, 0, "", 25*time.Millisecond, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	rep := cfg.run(1)
	if rep.requests == 0 {
		t.Fatal("run made no requests")
	}
	if rep.accepted != rep.requests*4 {
		t.Errorf("accepted = %d, want requests*batch = %d", rep.accepted, rep.requests*4)
	}
	if rep.transportErrs != 0 {
		t.Errorf("transport errors = %d, want 0", rep.transportErrs)
	}
	out := rep.format(cfg)
	for _, want := range []string{"requests:", "operations:", "latency:", "http 202:"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestNewRunConfigValidation(t *testing.T) {
	for name, tc := range map[string]struct {
		concurrency    int
		batch          int
		duration       time.Duration
		kinds          string
		params         string
		cancelFrac     float64
		listEvery      int
		observe        string
		pollInterval   time.Duration
		observeTimeout time.Duration
	}{
		"zero concurrency":       {0, 1, time.Second, "noop=1", "", 0, 0, "", time.Millisecond, time.Second},
		"zero batch":             {1, 0, time.Second, "noop=1", "", 0, 0, "", time.Millisecond, time.Second},
		"zero duration":          {1, 1, 0, "noop=1", "", 0, 0, "", time.Millisecond, time.Second},
		"bad mix":                {1, 1, time.Second, "noop=zero", "", 0, 0, "", time.Millisecond, time.Second},
		"bad params":             {1, 1, time.Second, "noop=1", "{not json", 0, 0, "", time.Millisecond, time.Second},
		"negative cancel frac":   {1, 1, time.Second, "noop=1", "", -0.1, 0, "", time.Millisecond, time.Second},
		"cancel frac over one":   {1, 1, time.Second, "noop=1", "", 1.5, 0, "", time.Millisecond, time.Second},
		"negative list every":    {1, 1, time.Second, "noop=1", "", 0, -1, "", time.Millisecond, time.Second},
		"unknown observe mode":   {1, 1, time.Second, "noop=1", "", 0, 0, "longpoll", time.Millisecond, time.Second},
		"zero poll interval":     {1, 1, time.Second, "noop=1", "", 0, 0, "poll", 0, time.Second},
		"zero observe timeout":   {1, 1, time.Second, "noop=1", "", 0, 0, "watch", time.Millisecond, 0},
		"uppercase observe mode": {1, 1, time.Second, "noop=1", "", 0, 0, "Watch", time.Millisecond, time.Second},
	} {
		if _, err := newRunConfig("x", tc.concurrency, tc.duration, tc.batch, tc.kinds, tc.params, time.Second, tc.cancelFrac, tc.listEvery, tc.observe, tc.pollInterval, tc.observeTimeout); err == nil {
			t.Errorf("%s: newRunConfig accepted invalid input", name)
		}
	}
}

func TestExtractIDs(t *testing.T) {
	single := `{"type":"async","status_code":202,"result":{"id":"aaa","kind":"noop","status":"queued"}}`
	ids, err := extractIDs([]byte(single), false)
	if err != nil {
		t.Fatalf("extractIDs(single): %v", err)
	}
	if len(ids) != 1 || ids[0] != "aaa" {
		t.Errorf("single ids = %v, want [aaa]", ids)
	}

	batch := `{"type":"async","status_code":202,"result":[
		{"type":"async","location":"/v1/operations/aaa","result":{"id":"aaa"}},
		{"type":"async","location":"/v1/operations/bbb","result":{"id":"bbb"}}]}`
	ids, err = extractIDs([]byte(batch), true)
	if err != nil {
		t.Fatalf("extractIDs(batch): %v", err)
	}
	if len(ids) != 2 || ids[0] != "aaa" || ids[1] != "bbb" {
		t.Errorf("batch ids = %v, want [aaa bbb]", ids)
	}

	if _, err := extractIDs([]byte(`{truncated`), false); err == nil {
		t.Error("extractIDs accepted malformed JSON")
	}
}

// TestRunWithListEvery drives a stub daemon and checks the interleaved
// page requests are counted and timed separately from submissions.
func TestRunWithListEvery(t *testing.T) {
	var mu sync.Mutex
	gets := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet {
			mu.Lock()
			gets++
			mu.Unlock()
			if r.URL.Query().Get("limit") != "50" {
				w.WriteHeader(http.StatusBadRequest)
				return
			}
			w.Write([]byte(`{"type":"sync","status_code":200,"result":[]}`))
			return
		}
		w.WriteHeader(http.StatusAccepted)
		w.Write([]byte(`{"type":"async","status_code":202,"result":{"id":"x"}}`))
	}))
	defer srv.Close()

	addr := strings.TrimPrefix(srv.URL, "http://")
	cfg, err := newRunConfig(addr, 2, 50*time.Millisecond, 1, "noop=1", "", time.Second, 0, 3, "", 25*time.Millisecond, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	rep := cfg.run(1)
	if rep.requests == 0 {
		t.Fatal("run made no requests")
	}
	if rep.listRequests == 0 {
		t.Fatal("list-every=3 issued no list requests")
	}
	mu.Lock()
	if int64(gets) != rep.listRequests {
		t.Errorf("stub saw %d GETs, report counts %d", gets, rep.listRequests)
	}
	mu.Unlock()
	if rep.listErrs != 0 {
		t.Errorf("list errors = %d, want 0", rep.listErrs)
	}
	if len(rep.listLatencies) != int(rep.listRequests) {
		t.Errorf("recorded %d list latencies for %d list requests", len(rep.listLatencies), rep.listRequests)
	}
	// Submission latency must not absorb the list traffic.
	if int64(len(rep.latencies)) != rep.requests-rep.transportErrs {
		t.Errorf("submit latencies = %d, want one per submission (%d)", len(rep.latencies), rep.requests)
	}
	if out := rep.format(cfg); !strings.Contains(out, "lists:") {
		t.Errorf("report missing lists line:\n%s", out)
	}
}

// TestRunWithObserve drives a stub daemon whose operations take two
// reads to report terminal — first GET says running, second says done —
// and checks both observe modes count gets and record time-to-terminal.
func TestRunWithObserve(t *testing.T) {
	for _, mode := range []string{"poll", "watch"} {
		t.Run(mode, func(t *testing.T) {
			var mu sync.Mutex
			reads := map[string]int{}
			submissions := 0
			sawWait := false
			srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if r.Method == http.MethodGet {
					mu.Lock()
					reads[r.URL.Path]++
					n := reads[r.URL.Path]
					if r.URL.Query().Get("wait") == "true" {
						sawWait = true
					}
					mu.Unlock()
					status := "running"
					if n >= 2 {
						status = "done"
					}
					w.Write([]byte(`{"type":"sync","status_code":200,"result":{"id":"x","status":"` + status + `"}}`))
					return
				}
				w.WriteHeader(http.StatusAccepted)
				// Each submission gets a distinct ID so the stub's
				// per-path read counts don't bleed across operations.
				mu.Lock()
				submissions++
				id := strconv.Itoa(submissions)
				mu.Unlock()
				w.Write([]byte(`{"type":"async","status_code":202,"result":{"id":"` + id + `","kind":"noop","status":"queued"}}`))
			}))
			defer srv.Close()

			addr := strings.TrimPrefix(srv.URL, "http://")
			cfg, err := newRunConfig(addr, 2, 50*time.Millisecond, 1, "noop=1", "", time.Second, 0, 0, mode, time.Millisecond, 5*time.Second)
			if err != nil {
				t.Fatal(err)
			}
			rep := cfg.run(1)
			if rep.requests == 0 {
				t.Fatal("run made no requests")
			}
			if rep.observeErrs != 0 {
				t.Fatalf("observe errors = %d, want 0", rep.observeErrs)
			}
			if rep.observed == 0 {
				t.Fatal("observed no operations")
			}
			if rep.observeGets < 2*rep.observed {
				t.Errorf("two-read stub: observeGets = %d, want >= 2*observed = %d", rep.observeGets, 2*rep.observed)
			}
			if len(rep.observeLatencies) != int(rep.observed) {
				t.Errorf("recorded %d observe latencies for %d observed ops", len(rep.observeLatencies), rep.observed)
			}
			mu.Lock()
			gotWait := sawWait
			mu.Unlock()
			if wantWait := mode == "watch"; gotWait != wantWait {
				t.Errorf("mode %s: stub saw wait=true query = %v, want %v", mode, gotWait, wantWait)
			}
			out := rep.format(cfg)
			if !strings.Contains(out, "observe:") || !strings.Contains(out, "to-terminal:") {
				t.Errorf("report missing observe lines:\n%s", out)
			}
		})
	}
}

// TestWriteJSON checks the -json report round-trips with the schema
// docs/loadgen.md documents.
func TestWriteJSON(t *testing.T) {
	rep := &report{
		elapsed:       2 * time.Second,
		requests:      100,
		accepted:      400,
		latencies:     []time.Duration{time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond},
		listRequests:  10,
		listLatencies: []time.Duration{5 * time.Millisecond},
		codes:         map[int]int64{202: 100},
	}
	mix, _ := parseKindMix("noop=1")
	cfg := &runConfig{
		url:         "http://x/v1/operations",
		concurrency: 4,
		duration:    2 * time.Second,
		batch:       4,
		mix:         mix,
		listEvery:   5,
	}
	path := t.TempDir() + "/run.json"
	if err := rep.writeJSON(path, cfg); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]any
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, raw)
	}
	if got["schema"] != "opdaemon-loadgen/1" {
		t.Errorf("schema = %v, want opdaemon-loadgen/1", got["schema"])
	}
	if ops, _ := got["operations_per_second"].(float64); ops != 200 {
		t.Errorf("operations_per_second = %v, want 200", got["operations_per_second"])
	}
	lat, _ := got["submit_latency"].(map[string]any)
	if p50, _ := lat["p50_ms"].(float64); p50 != 2 {
		t.Errorf("submit_latency.p50_ms = %v, want 2", lat["p50_ms"])
	}
	if _, ok := got["list_latency"].(map[string]any); !ok {
		t.Errorf("list_latency missing from report with list traffic: %s", raw)
	}
	codes, _ := got["http_codes"].(map[string]any)
	if n, _ := codes["202"].(float64); n != 100 {
		t.Errorf("http_codes[202] = %v, want 100", codes["202"])
	}
}

// TestRunWithCancelFrac drives a stub daemon that accepts every
// submission and alternates cancel outcomes, checking the counters
// land in the right buckets.
func TestRunWithCancelFrac(t *testing.T) {
	var mu sync.Mutex
	deletes := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodDelete {
			mu.Lock()
			deletes++
			conflict := deletes%2 == 0
			mu.Unlock()
			if conflict {
				w.WriteHeader(http.StatusConflict)
				w.Write([]byte(`{"type":"error","status_code":409,"result":{"message":"operation already in a terminal state"}}`))
				return
			}
			w.WriteHeader(http.StatusAccepted)
			w.Write([]byte(`{"type":"async","status_code":202,"result":{"id":"x","status":"cancelled"}}`))
			return
		}
		w.WriteHeader(http.StatusAccepted)
		w.Write([]byte(`{"type":"async","status_code":202,"result":{"id":"x","kind":"noop","status":"queued"}}`))
	}))
	defer srv.Close()

	addr := strings.TrimPrefix(srv.URL, "http://")
	cfg, err := newRunConfig(addr, 2, 50*time.Millisecond, 1, "noop=1", "", time.Second, 1.0, 0, "", 25*time.Millisecond, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	rep := cfg.run(1)
	if rep.requests == 0 {
		t.Fatal("run made no requests")
	}
	// cancel-frac=1 cancels every accepted op exactly once.
	if rep.cancelRequested != rep.accepted {
		t.Errorf("cancelRequested = %d, want accepted = %d", rep.cancelRequested, rep.accepted)
	}
	if rep.cancelled+rep.cancelConflicts != rep.cancelRequested {
		t.Errorf("cancelled %d + conflicts %d != requested %d",
			rep.cancelled, rep.cancelConflicts, rep.cancelRequested)
	}
	if rep.cancelled == 0 || rep.cancelConflicts == 0 {
		t.Errorf("alternating stub yielded cancelled=%d conflicts=%d, want both nonzero",
			rep.cancelled, rep.cancelConflicts)
	}
	if rep.cancelErrs != 0 {
		t.Errorf("cancel errors = %d, want 0", rep.cancelErrs)
	}
	out := rep.format(cfg)
	if !strings.Contains(out, "cancels:") {
		t.Errorf("report missing cancels line:\n%s", out)
	}
}
