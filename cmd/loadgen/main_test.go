package main

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestParseKindMix(t *testing.T) {
	for _, tc := range []struct {
		in      string
		want    string
		wantErr bool
	}{
		{in: "noop=1", want: "noop=1"},
		{in: "noop=3,echo=1", want: "noop=3,echo=1"},
		{in: "noop", want: "noop=1"},
		{in: " noop = 3 ", wantErr: true}, // inner spaces make the weight unparsable
		{in: "noop=3, echo", want: "noop=3,echo=1"},
		{in: "", wantErr: true},
		{in: "noop=0", wantErr: true},
		{in: "noop=-2", wantErr: true},
		{in: "=3", wantErr: true},
		{in: "noop=x", wantErr: true},
	} {
		mix, err := parseKindMix(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("parseKindMix(%q) = %v, want error", tc.in, mix)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseKindMix(%q): %v", tc.in, err)
			continue
		}
		if got := mix.String(); got != tc.want {
			t.Errorf("parseKindMix(%q) = %s, want %s", tc.in, got, tc.want)
		}
	}
}

func TestKindMixPickRespectsWeights(t *testing.T) {
	mix, err := parseKindMix("heavy=9,light=1")
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(42))
	counts := map[string]int{}
	const n = 10000
	for i := 0; i < n; i++ {
		counts[mix.pick(r)]++
	}
	if counts["heavy"]+counts["light"] != n {
		t.Fatalf("picks outside the mix: %v", counts)
	}
	// 9:1 mix should land near 90%; allow generous slack for the RNG.
	if frac := float64(counts["heavy"]) / n; frac < 0.85 || frac > 0.95 {
		t.Errorf("heavy fraction = %.3f, want ~0.9", frac)
	}
}

func TestPercentile(t *testing.T) {
	sorted := make([]time.Duration, 100)
	for i := range sorted {
		sorted[i] = time.Duration(i+1) * time.Millisecond
	}
	for _, tc := range []struct {
		p    float64
		want time.Duration
	}{
		{50, 50 * time.Millisecond},
		{90, 90 * time.Millisecond},
		{99, 99 * time.Millisecond},
		{100, 100 * time.Millisecond},
	} {
		if got := percentile(sorted, tc.p); got != tc.want {
			t.Errorf("percentile(%v) = %s, want %s", tc.p, got, tc.want)
		}
	}
	if got := percentile(nil, 50); got != 0 {
		t.Errorf("percentile(empty) = %s, want 0", got)
	}
}

func TestBuildBodyShapes(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	mix, _ := parseKindMix("noop=1")

	single := &runConfig{batch: 1, mix: mix, params: map[string]any{"ms": 5}}
	body, err := single.buildBody(r)
	if err != nil {
		t.Fatal(err)
	}
	var obj map[string]any
	if err := json.Unmarshal(body, &obj); err != nil {
		t.Fatalf("batch=1 body is not a JSON object: %s", body)
	}
	if obj["kind"] != "noop" {
		t.Errorf("kind = %v, want noop", obj["kind"])
	}

	batched := &runConfig{batch: 3, mix: mix}
	body, err = batched.buildBody(r)
	if err != nil {
		t.Fatal(err)
	}
	var arr []map[string]any
	if err := json.Unmarshal(body, &arr); err != nil {
		t.Fatalf("batch=3 body is not a JSON array: %s", body)
	}
	if len(arr) != 3 {
		t.Errorf("batch=3 body has %d items, want 3", len(arr))
	}
}

func TestRunAgainstStubDaemon(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		w.Write([]byte(`{"type":"async","status_code":202,"result":[]}`))
	}))
	defer srv.Close()

	addr := strings.TrimPrefix(srv.URL, "http://")
	cfg, err := newRunConfig(runFlags{addr: addr, concurrency: 2, duration: 50 * time.Millisecond, batch: 4, kinds: "noop=1", timeout: time.Second, pollInterval: 25 * time.Millisecond, observeTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	rep := cfg.run(1)
	if rep.requests == 0 {
		t.Fatal("run made no requests")
	}
	if rep.accepted != rep.requests*4 {
		t.Errorf("accepted = %d, want requests*batch = %d", rep.accepted, rep.requests*4)
	}
	if rep.transportErrs != 0 {
		t.Errorf("transport errors = %d, want 0", rep.transportErrs)
	}
	out := rep.format(cfg)
	for _, want := range []string{"requests:", "operations:", "latency:", "http 202:"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestNewRunConfigValidation(t *testing.T) {
	// valid is a baseline every case below breaks in exactly one way.
	valid := runFlags{
		addr: "x", concurrency: 1, duration: time.Second, batch: 1,
		kinds: "noop=1", timeout: time.Second,
		pollInterval: time.Millisecond, observeTimeout: time.Second,
	}
	for name, mutate := range map[string]func(*runFlags){
		"zero concurrency":       func(f *runFlags) { f.concurrency = 0 },
		"zero batch":             func(f *runFlags) { f.batch = 0 },
		"zero duration":          func(f *runFlags) { f.duration = 0 },
		"bad mix":                func(f *runFlags) { f.kinds = "noop=zero" },
		"bad params":             func(f *runFlags) { f.params = "{not json" },
		"negative cancel frac":   func(f *runFlags) { f.cancelFrac = -0.1 },
		"cancel frac over one":   func(f *runFlags) { f.cancelFrac = 1.5 },
		"negative list every":    func(f *runFlags) { f.listEvery = -1 },
		"unknown observe mode":   func(f *runFlags) { f.observe = "longpoll" },
		"zero poll interval":     func(f *runFlags) { f.observe = "poll"; f.pollInterval = 0 },
		"zero observe timeout":   func(f *runFlags) { f.observe = "watch"; f.observeTimeout = 0 },
		"uppercase observe mode": func(f *runFlags) { f.observe = "Watch" },
		"negative clients":       func(f *runFlags) { f.clients = -1 },
		"greedy frac over one":   func(f *runFlags) { f.clients = 4; f.greedyFrac = 1.5 },
		"greedy without clients": func(f *runFlags) { f.greedyFrac = 0.5 },
		"greedy one client":      func(f *runFlags) { f.clients = 1; f.greedyFrac = 0.5 },
		"greedy eats all workers": func(f *runFlags) {
			f.concurrency = 2
			f.clients = 2
			f.greedyFrac = 1.0
		},
	} {
		f := valid
		mutate(&f)
		if _, err := newRunConfig(f); err == nil {
			t.Errorf("%s: newRunConfig accepted invalid input", name)
		}
	}
	if _, err := newRunConfig(valid); err != nil {
		t.Fatalf("baseline flags rejected: %v", err)
	}
}

// TestClientFor pins the worker→client assignment: greedy workers
// first, victims spread round-robin over the remaining IDs.
func TestClientFor(t *testing.T) {
	cfg, err := newRunConfig(runFlags{
		addr: "x", concurrency: 8, duration: time.Second, batch: 1,
		kinds: "noop=1", timeout: time.Second,
		pollInterval: time.Millisecond, observeTimeout: time.Second,
		clients: 3, greedyFrac: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.greedyWorkers != 4 {
		t.Fatalf("greedyWorkers = %d, want 4 (half of 8)", cfg.greedyWorkers)
	}
	got := make([]string, 8)
	for i := range got {
		got[i] = cfg.clientFor(i)
	}
	want := []string{"greedy", "greedy", "greedy", "greedy", "c1", "c2", "c1", "c2"}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("clientFor(%d) = %q, want %q (full: %v)", i, got[i], want[i], got)
		}
	}

	noClients, err := newRunConfig(runFlags{
		addr: "x", concurrency: 2, duration: time.Second, batch: 1,
		kinds: "noop=1", timeout: time.Second,
		pollInterval: time.Millisecond, observeTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if id := noClients.clientFor(0); id != "" {
		t.Errorf("clientFor with -clients 0 = %q, want empty", id)
	}
}

func TestExtractIDs(t *testing.T) {
	single := `{"type":"async","status_code":202,"result":{"id":"aaa","kind":"noop","status":"queued"}}`
	ids, err := extractIDs([]byte(single), false)
	if err != nil {
		t.Fatalf("extractIDs(single): %v", err)
	}
	if len(ids) != 1 || ids[0] != "aaa" {
		t.Errorf("single ids = %v, want [aaa]", ids)
	}

	batch := `{"type":"async","status_code":202,"result":[
		{"type":"async","location":"/v1/operations/aaa","result":{"id":"aaa"}},
		{"type":"async","location":"/v1/operations/bbb","result":{"id":"bbb"}}]}`
	ids, err = extractIDs([]byte(batch), true)
	if err != nil {
		t.Fatalf("extractIDs(batch): %v", err)
	}
	if len(ids) != 2 || ids[0] != "aaa" || ids[1] != "bbb" {
		t.Errorf("batch ids = %v, want [aaa bbb]", ids)
	}

	if _, err := extractIDs([]byte(`{truncated`), false); err == nil {
		t.Error("extractIDs accepted malformed JSON")
	}
}

// TestRunWithListEvery drives a stub daemon and checks the interleaved
// page requests are counted and timed separately from submissions.
func TestRunWithListEvery(t *testing.T) {
	var mu sync.Mutex
	gets := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet {
			mu.Lock()
			gets++
			mu.Unlock()
			if r.URL.Query().Get("limit") != "50" {
				w.WriteHeader(http.StatusBadRequest)
				return
			}
			w.Write([]byte(`{"type":"sync","status_code":200,"result":[]}`))
			return
		}
		w.WriteHeader(http.StatusAccepted)
		w.Write([]byte(`{"type":"async","status_code":202,"result":{"id":"x"}}`))
	}))
	defer srv.Close()

	addr := strings.TrimPrefix(srv.URL, "http://")
	cfg, err := newRunConfig(runFlags{addr: addr, concurrency: 2, duration: 50 * time.Millisecond, batch: 1, kinds: "noop=1", timeout: time.Second, listEvery: 3, pollInterval: 25 * time.Millisecond, observeTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	rep := cfg.run(1)
	if rep.requests == 0 {
		t.Fatal("run made no requests")
	}
	if rep.listRequests == 0 {
		t.Fatal("list-every=3 issued no list requests")
	}
	mu.Lock()
	if int64(gets) != rep.listRequests {
		t.Errorf("stub saw %d GETs, report counts %d", gets, rep.listRequests)
	}
	mu.Unlock()
	if rep.listErrs != 0 {
		t.Errorf("list errors = %d, want 0", rep.listErrs)
	}
	if len(rep.listLatencies) != int(rep.listRequests) {
		t.Errorf("recorded %d list latencies for %d list requests", len(rep.listLatencies), rep.listRequests)
	}
	// Submission latency must not absorb the list traffic.
	if int64(len(rep.latencies)) != rep.requests-rep.transportErrs {
		t.Errorf("submit latencies = %d, want one per submission (%d)", len(rep.latencies), rep.requests)
	}
	if out := rep.format(cfg); !strings.Contains(out, "lists:") {
		t.Errorf("report missing lists line:\n%s", out)
	}
}

// TestRunWithObserve drives a stub daemon whose operations take two
// reads to report terminal — first GET says running, second says done —
// and checks both observe modes count gets and record time-to-terminal.
func TestRunWithObserve(t *testing.T) {
	for _, mode := range []string{"poll", "watch"} {
		t.Run(mode, func(t *testing.T) {
			var mu sync.Mutex
			reads := map[string]int{}
			submissions := 0
			sawWait := false
			srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if r.Method == http.MethodGet {
					mu.Lock()
					reads[r.URL.Path]++
					n := reads[r.URL.Path]
					if r.URL.Query().Get("wait") == "true" {
						sawWait = true
					}
					mu.Unlock()
					status := "running"
					if n >= 2 {
						status = "done"
					}
					w.Write([]byte(`{"type":"sync","status_code":200,"result":{"id":"x","status":"` + status + `"}}`))
					return
				}
				w.WriteHeader(http.StatusAccepted)
				// Each submission gets a distinct ID so the stub's
				// per-path read counts don't bleed across operations.
				mu.Lock()
				submissions++
				id := strconv.Itoa(submissions)
				mu.Unlock()
				w.Write([]byte(`{"type":"async","status_code":202,"result":{"id":"` + id + `","kind":"noop","status":"queued"}}`))
			}))
			defer srv.Close()

			addr := strings.TrimPrefix(srv.URL, "http://")
			cfg, err := newRunConfig(runFlags{addr: addr, concurrency: 2, duration: 50 * time.Millisecond, batch: 1, kinds: "noop=1", timeout: time.Second, observe: mode, pollInterval: time.Millisecond, observeTimeout: 5 * time.Second})
			if err != nil {
				t.Fatal(err)
			}
			rep := cfg.run(1)
			if rep.requests == 0 {
				t.Fatal("run made no requests")
			}
			if rep.observeErrs != 0 {
				t.Fatalf("observe errors = %d, want 0", rep.observeErrs)
			}
			if rep.observed == 0 {
				t.Fatal("observed no operations")
			}
			if rep.observeGets < 2*rep.observed {
				t.Errorf("two-read stub: observeGets = %d, want >= 2*observed = %d", rep.observeGets, 2*rep.observed)
			}
			if len(rep.observeLatencies) != int(rep.observed) {
				t.Errorf("recorded %d observe latencies for %d observed ops", len(rep.observeLatencies), rep.observed)
			}
			mu.Lock()
			gotWait := sawWait
			mu.Unlock()
			if wantWait := mode == "watch"; gotWait != wantWait {
				t.Errorf("mode %s: stub saw wait=true query = %v, want %v", mode, gotWait, wantWait)
			}
			out := rep.format(cfg)
			if !strings.Contains(out, "observe:") || !strings.Contains(out, "to-terminal:") {
				t.Errorf("report missing observe lines:\n%s", out)
			}
		})
	}
}

// TestRunCountsSheds drives a stub daemon that sheds every other
// submission with 429 + Retry-After and checks sheds land in their own
// counters — with the hint histogrammed — rather than in the error
// tallies.
func TestRunCountsSheds(t *testing.T) {
	var mu sync.Mutex
	posts := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		posts++
		shed := posts%2 == 0
		mu.Unlock()
		if shed {
			w.Header().Set("Retry-After", "2")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"type":"error","status_code":429,"result":{"message":"engine saturated, shedding load"}}`))
			return
		}
		w.WriteHeader(http.StatusAccepted)
		w.Write([]byte(`{"type":"async","status_code":202,"result":{"id":"x"}}`))
	}))
	defer srv.Close()

	addr := strings.TrimPrefix(srv.URL, "http://")
	cfg, err := newRunConfig(runFlags{addr: addr, concurrency: 2, duration: 50 * time.Millisecond, batch: 1, kinds: "noop=1", timeout: time.Second, pollInterval: 25 * time.Millisecond, observeTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	rep := cfg.run(1)
	if rep.requests == 0 {
		t.Fatal("run made no requests")
	}
	if rep.sheds == 0 {
		t.Fatal("alternating-429 stub produced no sheds")
	}
	if rep.sheds+rep.accepted != rep.requests {
		t.Errorf("sheds %d + accepted %d != requests %d", rep.sheds, rep.accepted, rep.requests)
	}
	if rep.transportErrs != 0 {
		t.Errorf("sheds leaked into transport errors: %d", rep.transportErrs)
	}
	if got := rep.retryAfter[2]; got != rep.sheds {
		t.Errorf("retryAfter[2] = %d, want every shed (%d)", got, rep.sheds)
	}
	out := rep.format(cfg)
	if !strings.Contains(out, "sheds:") || !strings.Contains(out, "2s×") {
		t.Errorf("report missing shed line or retry histogram:\n%s", out)
	}
}

// TestRunWithClients drives a stub daemon with an adversarial mix and
// checks (a) every request carries the expected X-Client-Id, (b) the
// greedy client submits but never observes, and (c) the per-client
// breakdown reaches both the text and JSON reports.
func TestRunWithClients(t *testing.T) {
	var mu sync.Mutex
	postClients := map[string]int{}
	getCount := 0
	submissions := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet {
			mu.Lock()
			getCount++
			mu.Unlock()
			w.Write([]byte(`{"type":"sync","status_code":200,"result":{"id":"x","status":"done"}}`))
			return
		}
		mu.Lock()
		postClients[r.Header.Get("X-Client-Id")]++
		submissions++
		id := strconv.Itoa(submissions)
		mu.Unlock()
		w.WriteHeader(http.StatusAccepted)
		w.Write([]byte(`{"type":"async","status_code":202,"result":{"id":"` + id + `","status":"queued"}}`))
	}))
	defer srv.Close()

	addr := strings.TrimPrefix(srv.URL, "http://")
	cfg, err := newRunConfig(runFlags{
		addr: addr, concurrency: 4, duration: 50 * time.Millisecond, batch: 1,
		kinds: "noop=1", timeout: time.Second,
		observe: "poll", pollInterval: time.Millisecond, observeTimeout: 5 * time.Second,
		clients: 3, greedyFrac: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := cfg.run(1)
	if rep.requests == 0 {
		t.Fatal("run made no requests")
	}
	mu.Lock()
	if postClients[""] > 0 {
		t.Errorf("%d submissions carried no X-Client-Id", postClients[""])
	}
	for _, want := range []string{"greedy", "c1", "c2"} {
		if postClients[want] == 0 {
			t.Errorf("no submissions from client %q (saw %v)", want, postClients)
		}
	}
	gets := getCount
	mu.Unlock()
	if gets == 0 {
		t.Fatal("victim workers observed nothing")
	}
	greedy := rep.perClient["greedy"]
	if greedy == nil {
		t.Fatal("report has no greedy client entry")
	}
	if len(greedy.observeLatencies) != 0 {
		t.Errorf("greedy client recorded %d observe latencies, want 0 (fire-and-forget)", len(greedy.observeLatencies))
	}
	if v := rep.perClient["c1"]; v == nil || len(v.observeLatencies) == 0 {
		t.Errorf("victim c1 recorded no to-terminal samples: %+v", v)
	}
	out := rep.format(cfg)
	if !strings.Contains(out, "per-client:") || !strings.Contains(out, "greedy") {
		t.Errorf("report missing per-client block:\n%s", out)
	}

	path := t.TempDir() + "/run.json"
	if err := rep.writeJSON(path, cfg); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		PerClient []jsonClient `json:"per_client"`
	}
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.PerClient) != 3 {
		t.Fatalf("json per_client has %d rows, want 3: %s", len(got.PerClient), raw)
	}
	if got.PerClient[0].Client != "greedy" {
		t.Errorf("json per_client[0] = %q, want greedy first", got.PerClient[0].Client)
	}
	for _, jc := range got.PerClient {
		if jc.Client != "greedy" && jc.TimeToTerminal == nil {
			t.Errorf("victim %q missing time_to_terminal in JSON", jc.Client)
		}
	}
}

// TestWriteJSON checks the -json report round-trips with the schema
// docs/loadgen.md documents.
func TestWriteJSON(t *testing.T) {
	rep := &report{
		elapsed:       2 * time.Second,
		requests:      100,
		accepted:      400,
		latencies:     []time.Duration{time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond},
		listRequests:  10,
		listLatencies: []time.Duration{5 * time.Millisecond},
		codes:         map[int]int64{202: 100},
	}
	mix, _ := parseKindMix("noop=1")
	cfg := &runConfig{
		url:         "http://x/v1/operations",
		concurrency: 4,
		duration:    2 * time.Second,
		batch:       4,
		mix:         mix,
		listEvery:   5,
	}
	path := t.TempDir() + "/run.json"
	if err := rep.writeJSON(path, cfg); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]any
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, raw)
	}
	if got["schema"] != "opdaemon-loadgen/1" {
		t.Errorf("schema = %v, want opdaemon-loadgen/1", got["schema"])
	}
	if ops, _ := got["operations_per_second"].(float64); ops != 200 {
		t.Errorf("operations_per_second = %v, want 200", got["operations_per_second"])
	}
	lat, _ := got["submit_latency"].(map[string]any)
	if p50, _ := lat["p50_ms"].(float64); p50 != 2 {
		t.Errorf("submit_latency.p50_ms = %v, want 2", lat["p50_ms"])
	}
	if _, ok := got["list_latency"].(map[string]any); !ok {
		t.Errorf("list_latency missing from report with list traffic: %s", raw)
	}
	codes, _ := got["http_codes"].(map[string]any)
	if n, _ := codes["202"].(float64); n != 100 {
		t.Errorf("http_codes[202] = %v, want 100", codes["202"])
	}
}

// TestRunWithCancelFrac drives a stub daemon that accepts every
// submission and alternates cancel outcomes, checking the counters
// land in the right buckets.
func TestRunWithCancelFrac(t *testing.T) {
	var mu sync.Mutex
	deletes := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodDelete {
			mu.Lock()
			deletes++
			conflict := deletes%2 == 0
			mu.Unlock()
			if conflict {
				w.WriteHeader(http.StatusConflict)
				w.Write([]byte(`{"type":"error","status_code":409,"result":{"message":"operation already in a terminal state"}}`))
				return
			}
			w.WriteHeader(http.StatusAccepted)
			w.Write([]byte(`{"type":"async","status_code":202,"result":{"id":"x","status":"cancelled"}}`))
			return
		}
		w.WriteHeader(http.StatusAccepted)
		w.Write([]byte(`{"type":"async","status_code":202,"result":{"id":"x","kind":"noop","status":"queued"}}`))
	}))
	defer srv.Close()

	addr := strings.TrimPrefix(srv.URL, "http://")
	cfg, err := newRunConfig(runFlags{addr: addr, concurrency: 2, duration: 50 * time.Millisecond, batch: 1, kinds: "noop=1", timeout: time.Second, cancelFrac: 1.0, pollInterval: 25 * time.Millisecond, observeTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	rep := cfg.run(1)
	if rep.requests == 0 {
		t.Fatal("run made no requests")
	}
	// cancel-frac=1 cancels every accepted op exactly once.
	if rep.cancelRequested != rep.accepted {
		t.Errorf("cancelRequested = %d, want accepted = %d", rep.cancelRequested, rep.accepted)
	}
	if rep.cancelled+rep.cancelConflicts != rep.cancelRequested {
		t.Errorf("cancelled %d + conflicts %d != requested %d",
			rep.cancelled, rep.cancelConflicts, rep.cancelRequested)
	}
	if rep.cancelled == 0 || rep.cancelConflicts == 0 {
		t.Errorf("alternating stub yielded cancelled=%d conflicts=%d, want both nonzero",
			rep.cancelled, rep.cancelConflicts)
	}
	if rep.cancelErrs != 0 {
		t.Errorf("cancel errors = %d, want 0", rep.cancelErrs)
	}
	out := rep.format(cfg)
	if !strings.Contains(out, "cancels:") {
		t.Errorf("report missing cancels line:\n%s", out)
	}
}
