// Command daemon wires the operation engine to the v1 HTTP API and
// runs until interrupted, then drains in-flight operations before
// exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"opdaemon/internal/api"
	"opdaemon/internal/core"
	"opdaemon/internal/engine"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8712", "listen address")
		workers      = flag.Int("workers", 8, "concurrent operation workers")
		queueDepth   = flag.Int("queue-depth", 1024, "max queued operations")
		storeShards  = flag.Int("store-shards", engine.DefaultShardCount, "operation store shard count, rounded up to a power of two (<=1 selects the unsharded single-mutex store)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "max time to drain operations on shutdown")
	)
	flag.Parse()

	if err := run(*addr, *workers, *queueDepth, *storeShards, *drainTimeout); err != nil {
		log.Fatalf("daemon: %v", err)
	}
}

// run wires the engine, store, and HTTP server together and blocks
// until a signal triggers the drain sequence.
func run(addr string, workers, queueDepth, storeShards int, drainTimeout time.Duration) error {
	var store engine.Store
	if storeShards <= 1 {
		store = engine.NewMemStore()
	} else {
		store = engine.NewShardedStore(storeShards)
	}
	eng := engine.New(engine.Config{Workers: workers, QueueDepth: queueDepth, Store: store})
	registerBuiltins(eng)

	srv := &http.Server{
		Addr:              addr,
		Handler:           api.New(eng),
		ReadHeaderTimeout: 5 * time.Second,
		// Bound request reads, response writes, and idle keep-alives
		// so a client trickling bytes in either direction can't hold
		// a goroutine forever.
		ReadTimeout:  30 * time.Second,
		WriteTimeout: 30 * time.Second,
		IdleTimeout:  2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("daemon: listening on http://%s (workers=%d queue=%d shards=%d)", addr, workers, queueDepth, storeShards)
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()

	select {
	case err := <-errc:
		return fmt.Errorf("serving: %w", err)
	case <-ctx.Done():
		// Restore default signal disposition so a second SIGINT or
		// SIGTERM during the drain kills the process immediately.
		stop()
	}

	// HTTP shutdown and engine drain get separate budgets so a
	// stalled client connection cannot starve operation draining.
	log.Printf("daemon: shutting down, draining for up to %s", drainTimeout)
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), drainTimeout)
	defer cancelHTTP()
	if err := srv.Shutdown(httpCtx); err != nil {
		log.Printf("daemon: http shutdown: %v", err)
	}
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), drainTimeout)
	defer cancelDrain()
	if err := eng.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("draining engine: %w", err)
	}
	log.Print("daemon: drained cleanly")
	return nil
}

// registerBuiltins installs the demo operation kinds the daemon ships
// with; real workloads register their own kinds here as the system
// grows.
func registerBuiltins(eng *engine.Engine) {
	eng.Register("noop", func(context.Context, *core.Operation) (any, error) {
		return map[string]any{"ok": true}, nil
	})
	eng.Register("echo", func(_ context.Context, op *core.Operation) (any, error) {
		return op.Params, nil
	})
	eng.Register("sleep", func(ctx context.Context, op *core.Operation) (any, error) {
		ms, ok := op.Params["ms"].(float64)
		if !ok || ms < 0 || ms > 60_000 {
			return nil, &core.InvalidError{Field: "ms", Reason: "must be a number between 0 and 60000"}
		}
		select {
		case <-time.After(time.Duration(ms) * time.Millisecond):
			return map[string]any{"slept_ms": ms}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	eng.Register("fail", func(context.Context, *core.Operation) (any, error) {
		return nil, errors.New("operation failed on request")
	})
}
