// Command daemon wires the operation engine to the v1 HTTP API and
// runs until interrupted, then drains in-flight operations before
// exiting. Past the drain deadline, every still-running operation's
// context is cancelled — the same signal DELETE /v1/operations/{id}
// delivers — and the process exits without waiting for handlers to
// unwind; an operation mid-unwind at that point never records its
// terminal state.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"opdaemon/internal/api"
	"opdaemon/internal/core"
	"opdaemon/internal/engine"
)

// daemonConfig collects every tunable so run stays testable and the
// flag list has one home.
type daemonConfig struct {
	addr            string
	debugAddr       string
	workers         int
	queueDepth      int
	storeShards     int
	drainTimeout    time.Duration
	opTTL           time.Duration
	gcInterval      time.Duration
	defaultDeadline time.Duration
	noticeRing      int
	maxWait         time.Duration
	queuePolicy     string
	bandWeights     string
	drrQuantum      int
	promoteAfter    time.Duration
	shedThreshold   float64
	trustClientHdr  bool
	store           string
	walDir          string
	walSync         string
	walGroupWindow  time.Duration
	walSegmentBytes int64
	walMaxSegments  int
}

// parseBandWeights parses the -band-weights flag value: three comma-
// separated positive integers for the high, normal, and low bands.
func parseBandWeights(raw string) ([3]int, error) {
	var w [3]int
	parts := strings.Split(raw, ",")
	if len(parts) != 3 {
		return w, fmt.Errorf("need 3 comma-separated integers, got %d", len(parts))
	}
	for i, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 1 {
			return w, fmt.Errorf("weight %d must be a positive integer, got %q", i, p)
		}
		w[i] = n
	}
	return w, nil
}

func main() {
	var cfg daemonConfig
	flag.StringVar(&cfg.addr, "addr", "127.0.0.1:8712", "listen address")
	flag.StringVar(&cfg.debugAddr, "debug-addr", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060); empty disables — never expose it publicly")
	flag.IntVar(&cfg.workers, "workers", 8, "concurrent operation workers")
	flag.IntVar(&cfg.queueDepth, "queue-depth", 1024, "max queued operations")
	flag.IntVar(&cfg.storeShards, "store-shards", engine.DefaultShardCount(), "operation store shard count, rounded up to a power of two (default scales with GOMAXPROCS; <=1 selects the unsharded single-mutex store)")
	flag.DurationVar(&cfg.drainTimeout, "drain-timeout", 30*time.Second, "max time to drain operations on shutdown")
	flag.DurationVar(&cfg.opTTL, "op-ttl", 0, "retention for terminal operations; 0 keeps them forever, >0 starts a janitor that evicts older ones")
	flag.DurationVar(&cfg.gcInterval, "gc-interval", 0, "how often the janitor sweeps (default op-ttl/2, min 1s); ignored when -op-ttl is 0")
	flag.DurationVar(&cfg.defaultDeadline, "default-deadline", 0, "execution deadline for kinds registered without their own; 0 means unbounded")
	flag.IntVar(&cfg.noticeRing, "notice-ring", 4096, "state-transition notices retained for /v1/notices; older ones fall off the ring")
	flag.DurationVar(&cfg.maxWait, "max-wait", 60*time.Second, "upper bound on ?wait=true long-poll timeouts; longer client requests are clamped")
	flag.StringVar(&cfg.queuePolicy, "queue-policy", engine.PolicyStrict, "priority band policy: strict (drain high first) or weighted (proportional shares)")
	flag.StringVar(&cfg.bandWeights, "band-weights", "8,4,1", "weighted-policy dispatch shares for the high,normal,low bands")
	flag.IntVar(&cfg.drrQuantum, "drr-quantum", 1, "operations served per client per round-robin turn within a band")
	flag.DurationVar(&cfg.promoteAfter, "promote-after", 5*time.Second, "age at which a starved lower-band operation is promoted; <0 disables aging")
	flag.Float64Var(&cfg.shedThreshold, "shed-threshold", 0, "shed submissions with 429 once queue depth reaches this fraction of capacity (0,1); 0 disables shedding")
	flag.StringVar(&cfg.store, "store", "memory", "operation store backend: memory (state dies with the process) or wal (persistent write-ahead log under -wal-dir with crash recovery)")
	flag.StringVar(&cfg.walDir, "wal-dir", "", "write-ahead log directory, required with -store=wal; created if absent")
	flag.StringVar(&cfg.walSync, "wal-sync", string(engine.WALSyncGroup), "wal fsync policy: always (fsync per mutation), group (one fsync per -wal-group-window batch; submissions wait, transitions are logged asynchronously), or none (never fsync)")
	flag.DurationVar(&cfg.walGroupWindow, "wal-group-window", 2*time.Millisecond, "how long the wal committer accumulates a batch before its single write+fsync under -wal-sync=group")
	flag.Int64Var(&cfg.walSegmentBytes, "wal-segment-bytes", 16<<20, "wal segment rotation size in bytes")
	flag.IntVar(&cfg.walMaxSegments, "wal-max-segments", 8, "closed wal segments tolerated before snapshot compaction folds them")
	flag.BoolVar(&cfg.trustClientHdr, "trust-client-header", true, "honour X-Client-Id for fair-queueing attribution; set false for untrusted clients (the header is unauthenticated, so a greedy client could mint fresh scheduler queues per request) to key on remote address only")
	flag.Parse()

	if err := run(cfg); err != nil {
		log.Fatalf("daemon: %v", err)
	}
}

// run wires the engine, store, and HTTP server together and blocks
// until a signal triggers the drain sequence.
func run(cfg daemonConfig) error {
	if cfg.queuePolicy != engine.PolicyStrict && cfg.queuePolicy != engine.PolicyWeighted {
		return fmt.Errorf("unknown -queue-policy %q (want %s or %s)", cfg.queuePolicy, engine.PolicyStrict, engine.PolicyWeighted)
	}
	weights, err := parseBandWeights(cfg.bandWeights)
	if err != nil {
		return fmt.Errorf("parsing -band-weights: %w", err)
	}
	if cfg.shedThreshold < 0 || cfg.shedThreshold >= 1 {
		if cfg.shedThreshold != 0 {
			return fmt.Errorf("-shed-threshold must be in (0,1) or 0 to disable, got %g", cfg.shedThreshold)
		}
	}
	var store engine.Store
	var walStore *engine.WALStore
	switch cfg.store {
	case "memory":
		if cfg.storeShards <= 1 {
			store = engine.NewMemStore()
		} else {
			store = engine.NewShardedStore(cfg.storeShards)
		}
	case "wal":
		if cfg.walDir == "" {
			return fmt.Errorf("-store=wal requires -wal-dir")
		}
		ws, err := engine.OpenWALStore(engine.WALConfig{
			Dir:          cfg.walDir,
			Sync:         engine.WALSyncMode(cfg.walSync),
			GroupWindow:  cfg.walGroupWindow,
			SegmentBytes: cfg.walSegmentBytes,
			MaxSegments:  cfg.walMaxSegments,
			Shards:       cfg.storeShards,
		})
		if err != nil {
			return fmt.Errorf("opening wal store: %w", err)
		}
		store, walStore = ws, ws
	default:
		return fmt.Errorf("unknown -store %q (want memory or wal)", cfg.store)
	}
	eng := engine.New(engine.Config{
		Workers:         cfg.workers,
		QueueDepth:      cfg.queueDepth,
		Store:           store,
		OpTTL:           cfg.opTTL,
		GCInterval:      cfg.gcInterval,
		DefaultDeadline: cfg.defaultDeadline,
		NoticeRingSize:  cfg.noticeRing,
		QueuePolicy:     cfg.queuePolicy,
		BandWeights:     weights,
		DRRQuantum:      cfg.drrQuantum,
		PromoteAfter:    cfg.promoteAfter,
		ShedThreshold:   cfg.shedThreshold,
	})
	registerBuiltins(eng)

	// With a durable store, the replayed state may hold work from the
	// previous process: requeue what never ran, fail what was running
	// when it died. This must happen after handler registration and
	// before the listener opens.
	if walStore != nil {
		requeued, interrupted, err := eng.Recover(context.Background())
		if err != nil {
			return fmt.Errorf("recovering operations from wal: %w", err)
		}
		if requeued > 0 || interrupted > 0 {
			log.Printf("daemon: wal recovery requeued %d operations, failed %d interrupted ones", requeued, interrupted)
		}
	}

	// The pprof endpoints live on their own listener so profiles can be
	// pulled from a live soak without exposing them on the API address;
	// off by default because they leak internals and cost CPU to serve.
	if cfg.debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dsrv := &http.Server{
			Addr:              cfg.debugAddr,
			Handler:           dmux,
			ReadHeaderTimeout: 5 * time.Second,
		}
		defer dsrv.Close()
		go func() {
			log.Printf("daemon: pprof on http://%s/debug/pprof/ (keep this address private)", cfg.debugAddr)
			if err := dsrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
				// A dead debug listener should not take the daemon down;
				// profiling is just unavailable.
				log.Printf("daemon: debug server: %v", err)
			}
		}()
	}

	// The write timeout must outlast the longest permitted long-poll,
	// or the server would cut ?wait=true connections mid-wait; the
	// margin covers writing the response after the wait resolves.
	writeTimeout := 30 * time.Second
	if cfg.maxWait+15*time.Second > writeTimeout {
		writeTimeout = cfg.maxWait + 15*time.Second
	}
	srv := &http.Server{
		Addr:              cfg.addr,
		Handler:           api.New(eng, api.WithMaxWait(cfg.maxWait), api.WithClientHeaderTrust(cfg.trustClientHdr)),
		ReadHeaderTimeout: 5 * time.Second,
		// Bound request reads, response writes, and idle keep-alives
		// so a client trickling bytes in either direction can't hold
		// a goroutine forever.
		ReadTimeout:  30 * time.Second,
		WriteTimeout: writeTimeout,
		IdleTimeout:  2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("daemon: listening on http://%s (store=%s workers=%d queue=%d shards=%d ttl=%s policy=%s shed=%g)",
			cfg.addr, cfg.store, cfg.workers, cfg.queueDepth, cfg.storeShards, cfg.opTTL, cfg.queuePolicy, cfg.shedThreshold)
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()

	select {
	case err := <-errc:
		return fmt.Errorf("serving: %w", err)
	case <-ctx.Done():
		// Restore default signal disposition so a second SIGINT or
		// SIGTERM during the drain kills the process immediately.
		stop()
	}

	// HTTP shutdown and engine drain get separate budgets so a
	// stalled client connection cannot starve operation draining.
	// When the drain budget expires, engine.Shutdown cancels every
	// in-flight operation's context — the per-operation cancellation
	// path — and returns immediately; the process then exits without
	// waiting for handlers to unwind, so the budget must cover any
	// terminal-state bookkeeping that matters.
	log.Printf("daemon: shutting down, draining for up to %s", cfg.drainTimeout)
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancelHTTP()
	if err := srv.Shutdown(httpCtx); err != nil {
		log.Printf("daemon: http shutdown: %v", err)
	}
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancelDrain()
	drainErr := eng.Shutdown(drainCtx)
	// Close the log even after a failed drain: whatever terminal states
	// the drain did record should survive the restart.
	if walStore != nil {
		if err := walStore.Close(); err != nil {
			log.Printf("daemon: closing wal store: %v", err)
		}
	}
	if drainErr != nil {
		return fmt.Errorf("draining engine: %w", drainErr)
	}
	log.Print("daemon: drained cleanly")
	return nil
}

// registerBuiltins installs the demo operation kinds the daemon ships
// with; real workloads register their own kinds here as the system
// grows.
func registerBuiltins(eng *engine.Engine) {
	eng.Register("noop", func(context.Context, *core.Operation) (any, error) {
		return map[string]any{"ok": true}, nil
	})
	eng.Register("echo", func(_ context.Context, op *core.Operation) (any, error) {
		return op.Params, nil
	})
	// sleep sleeps at most 60s, so its 90s deadline only fires for a
	// wedged handler; it doubles as the reference for WithDeadline.
	eng.Register("sleep", func(ctx context.Context, op *core.Operation) (any, error) {
		ms, ok := op.Params["ms"].(float64)
		if !ok || ms < 0 || ms > 60_000 {
			return nil, &core.InvalidError{Field: "ms", Reason: "must be a number between 0 and 60000"}
		}
		select {
		case <-time.After(time.Duration(ms) * time.Millisecond):
			return map[string]any{"slept_ms": ms}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}, engine.WithDeadline(90*time.Second))
	eng.Register("fail", func(context.Context, *core.Operation) (any, error) {
		return nil, errors.New("operation failed on request")
	})
}
